#!/usr/bin/env python3
"""Compare two trees of ``repro-table/1`` benchmark results.

The regression harness behind the CI ``bench-regression`` job (see
``docs/benchmarks.md``)::

    python tools/bench_compare.py BASELINE_DIR CURRENT_DIR \
        --tolerance 0.25 --report bench-delta.md

Both directories hold the ``*.json`` files the benchmark suite writes
next to its ``.txt`` tables (``benchmarks/results/``).  Files are
matched by relative name, rows by their first column (the label), and
columns by header name — so a baseline from an older checkout still
compares cleanly when a table gained a column or a row.

Every numeric column is classified two ways:

* **direction** — whether bigger is better (throughput, hit ratios,
  dedup), worse (latencies, I/Os, misses, flushes), or neither (sizes,
  input parameters, row labels).  Only directional columns can regress.
* **timing** — whether the number is wall-clock-derived (latency,
  throughput, build time) or deterministic (I/O counts, hit ratios,
  block counts).  Timing numbers are noisy on shared CI runners;
  ``--ratio-only`` gates on deterministic columns only and demotes
  timing regressions to report-only notes.

A change beyond ``--tolerance`` (relative, default 0.25) in the bad
direction is a regression; the exit code is 1 when any gated column
regressed, so the script doubles as a CI gate.  ``--report OUT.md``
writes a markdown delta table (regressions first) for the job artifact.
Unknown column names are compared but never gated — they are listed in
the report so a silently unclassified metric is visible, not skipped.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass

#: Row-label / input-parameter columns: never compared numerically.
_NEUTRAL = {
    "batch", "config", "variant", "phase", "n", "fanout", "height",
    "blocks", "n_blocks", "offered", "requests", "executed", "ops",
    "size", "rate_rps", "budget_pages", "k", "queries", "area", "panel",
    "dataset", "shards", "workers", "updates", "dims", "run",
}

#: Deterministic lower-is-better counters.
_LOWER_COUNTS = {
    "leaf_ios", "internal_reads", "physical_reads", "reads", "write_ios",
    "pages_flushed", "flushes", "misses", "evictions", "rejected",
    "max_queue", "cold_misses", "predicted_misses", "ios", "io",
    "file_mb", "dedup_missed", "score",
}

#: Deterministic higher-is-better counters/ratios.
_HIGHER_COUNTS = {
    "hits", "dedup", "predicted_hits", "seq_frac", "dedup_hits",
}


@dataclass(frozen=True)
class ColumnClass:
    """How one header participates in the comparison."""

    #: +1 bigger is better, -1 smaller is better, 0 informational.
    direction: int
    #: Wall-clock-derived (noisy on shared runners) vs deterministic.
    timing: bool
    #: True when the name matched no rule (reported, never gated).
    unknown: bool = False


def classify(header: str) -> ColumnClass:
    """Direction + timing class for one column header."""
    h = header.strip().lower()
    if h in _NEUTRAL:
        return ColumnClass(0, False)
    if h in _LOWER_COUNTS or h.endswith(("_ios", "_reads", "_misses")):
        return ColumnClass(-1, False)
    if h in _HIGHER_COUNTS or "hit_ratio" in h:
        return ColumnClass(+1, False)
    if h == "ios_per_query" or h.endswith("_per_query"):
        return ColumnClass(-1, False)
    if h.endswith("_vs_fresh"):
        # Deterministic I/O ratios against a fresh bulk-load (e.g.
        # index_health_drift's io_vs_fresh): 1.0 is parity, bigger is
        # more degradation.
        return ColumnClass(-1, False)
    if h == "req_per_s" or h.endswith("_rps") or "throughput" in h:
        return ColumnClass(+1, True)
    if h.startswith("vs_"):
        # Normalized-against-baseline ratios (e.g. obs_overhead's
        # vs_off): 1.0 is parity, smaller is more overhead.
        return ColumnClass(+1, True)
    if h.endswith("_ms") or "latency" in h or "busy" in h:
        return ColumnClass(-1, True)
    if h.endswith("_s"):
        return ColumnClass(-1, True)
    return ColumnClass(0, False, unknown=True)


@dataclass
class Delta:
    """One compared cell."""

    file: str
    row: str
    column: str
    baseline: float
    current: float
    change: float  # relative, signed; +0.30 = grew 30%
    status: str  # "regression" | "improvement" | "ok" | "info"
    gated: bool


def _load_table(path: pathlib.Path) -> dict | None:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_compare: unreadable {path}: {exc}", file=sys.stderr)
        return None
    if doc.get("schema") != "repro-table/1":
        print(
            f"bench_compare: {path} is not repro-table/1, skipping",
            file=sys.stderr,
        )
        return None
    return doc


def _rows_by_label(doc: dict) -> dict[tuple[str, int], list]:
    """Rows keyed by (first-column label, occurrence index).

    The occurrence index disambiguates tables whose label column
    repeats (e.g. one row per batch numbered from a counter column that
    is itself the label).
    """
    seen: dict[str, int] = {}
    rows: dict[tuple[str, int], list] = {}
    for row in doc.get("rows", ()):
        label = str(row[0]) if row else ""
        index = seen.get(label, 0)
        seen[label] = index + 1
        rows[(label, index)] = row
    return rows


def compare_tables(
    name: str, baseline: dict, current: dict, tolerance: float,
    ratio_only: bool,
) -> list[Delta]:
    """Compare two repro-table/1 docs; one :class:`Delta` per cell."""
    base_headers = [str(h) for h in baseline.get("headers", ())]
    cur_headers = [str(h) for h in current.get("headers", ())]
    shared = [h for h in base_headers[1:] if h in cur_headers[1:]]
    base_rows = _rows_by_label(baseline)
    cur_rows = _rows_by_label(current)
    deltas: list[Delta] = []
    for key, base_row in base_rows.items():
        cur_row = cur_rows.get(key)
        if cur_row is None:
            continue
        for header in shared:
            base_value = base_row[base_headers.index(header)]
            cur_value = cur_row[cur_headers.index(header)]
            if not isinstance(base_value, (int, float)) or not isinstance(
                cur_value, (int, float)
            ):
                continue
            if isinstance(base_value, bool) or isinstance(cur_value, bool):
                continue
            if base_value == 0 and cur_value == 0:
                continue
            column = classify(header)
            if base_value == 0:
                change = float("inf") if cur_value > 0 else float("-inf")
            else:
                change = (cur_value - base_value) / abs(base_value)
            gated = (
                column.direction != 0
                and not (ratio_only and column.timing)
            )
            if column.direction == 0:
                status = "info"
            elif column.direction * change < -tolerance:
                status = "regression"
            elif column.direction * change > tolerance:
                status = "improvement"
            else:
                status = "ok"
            deltas.append(
                Delta(
                    file=name,
                    row=key[0] if key[1] == 0 else f"{key[0]}#{key[1]}",
                    column=header,
                    baseline=float(base_value),
                    current=float(cur_value),
                    change=change,
                    status=status,
                    gated=gated,
                )
            )
    return deltas


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def _fmt_change(change: float) -> str:
    if change in (float("inf"), float("-inf")):
        return "new" if change > 0 else "gone"
    return f"{change:+.1%}"


def write_report(
    path: pathlib.Path,
    deltas: list[Delta],
    regressions: list[Delta],
    tolerance: float,
    ratio_only: bool,
    missing: list[str],
) -> None:
    """Markdown delta report: regressions first, then notable moves."""
    lines = ["# Benchmark comparison", ""]
    lines.append(
        f"Tolerance ±{tolerance:.0%}"
        + (", deterministic columns gated (`--ratio-only`)" if ratio_only else "")
        + f"; {len(deltas)} cells compared."
    )
    lines.append("")
    if regressions:
        lines.append(f"## Regressions ({len(regressions)}) ❌")
    else:
        lines.append("## Regressions: none ✅")
    lines.append("")
    notable = [
        d
        for d in deltas
        if d not in regressions
        and d.status != "info"
        and abs(d.change) >= min(0.05, tolerance)
    ]
    unknown_columns = sorted(
        {d.column for d in deltas if classify(d.column).unknown}
    )
    for title, rows in (
        ("", regressions),
        ("## Notable changes", notable),
    ):
        if not rows:
            continue
        if title:
            lines.append(title)
            lines.append("")
        lines.append("| file | row | metric | baseline | current | change | status |")
        lines.append("|---|---|---|---|---|---|---|")
        for d in sorted(rows, key=lambda d: -abs(d.change)):
            lines.append(
                f"| {d.file} | {d.row} | {d.column} | "
                f"{_fmt_value(d.baseline)} | {_fmt_value(d.current)} | "
                f"{_fmt_change(d.change)} | {d.status}"
                + ("" if d.gated else " (report-only)")
                + " |"
            )
        lines.append("")
    if missing:
        lines.append("## Missing from current run")
        lines.append("")
        for name in missing:
            lines.append(f"- {name}")
        lines.append("")
    if unknown_columns:
        lines.append(
            "Unclassified (never gated) columns: "
            + ", ".join(f"`{c}`" for c in unknown_columns)
        )
        lines.append("")
    path.write_text("\n".join(lines))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Compare two directories of repro-table/1 benchmark JSON "
            "and gate on regressions."
        )
    )
    parser.add_argument(
        "baseline", type=pathlib.Path, help="baseline results directory"
    )
    parser.add_argument(
        "current", type=pathlib.Path, help="current results directory"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help=(
            "relative change in the bad direction that counts as a "
            "regression (default 0.25)"
        ),
    )
    parser.add_argument(
        "--ratio-only",
        dest="ratio_only",
        action="store_true",
        help=(
            "gate only deterministic columns (I/O counts, hit ratios); "
            "wall-clock columns are compared but report-only — the CI "
            "mode for shared runners"
        ),
    )
    parser.add_argument(
        "--report",
        type=pathlib.Path,
        metavar="OUT.md",
        help="write a markdown delta report",
    )
    args = parser.parse_args(argv)

    for directory in (args.baseline, args.current):
        if not directory.is_dir():
            print(
                f"bench_compare: not a directory: {directory}",
                file=sys.stderr,
            )
            return 2

    base_files = sorted(p.name for p in args.baseline.glob("*.json"))
    if not base_files:
        print(
            f"bench_compare: no *.json under {args.baseline}",
            file=sys.stderr,
        )
        return 2

    deltas: list[Delta] = []
    missing: list[str] = []
    compared_files = 0
    for name in base_files:
        baseline = _load_table(args.baseline / name)
        if baseline is None:
            continue
        current_path = args.current / name
        if not current_path.exists():
            missing.append(name)
            continue
        current = _load_table(current_path)
        if current is None:
            missing.append(name)
            continue
        compared_files += 1
        deltas.extend(
            compare_tables(
                name, baseline, current, args.tolerance, args.ratio_only
            )
        )

    regressions = [
        d for d in deltas if d.status == "regression" and d.gated
    ]
    reported = [
        d for d in deltas if d.status == "regression" and not d.gated
    ]

    print(
        f"bench_compare: {compared_files} file(s), {len(deltas)} cells, "
        f"tolerance ±{args.tolerance:.0%}"
        + (" (ratio-only gating)" if args.ratio_only else "")
    )
    for d in sorted(regressions, key=lambda d: -abs(d.change)):
        print(
            f"REGRESSION {d.file} [{d.row}] {d.column}: "
            f"{_fmt_value(d.baseline)} -> {_fmt_value(d.current)} "
            f"({_fmt_change(d.change)})"
        )
    for d in sorted(reported, key=lambda d: -abs(d.change))[:10]:
        print(
            f"report-only {d.file} [{d.row}] {d.column}: "
            f"{_fmt_value(d.baseline)} -> {_fmt_value(d.current)} "
            f"({_fmt_change(d.change)})"
        )
    for name in missing:
        print(f"missing from current: {name}")

    if args.report is not None:
        write_report(
            args.report,
            deltas,
            regressions,
            args.tolerance,
            args.ratio_only,
            missing,
        )
        print(f"wrote {args.report}")

    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s)")
        return 1
    print("bench_compare: no gated regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
