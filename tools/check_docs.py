#!/usr/bin/env python3
"""Documentation checks: link integrity and runnable snippets.

Two checks over ``README.md`` and ``docs/*.md`` (stdlib only, used both
by the CI docs job and by ``tests/unit/test_docs.py``):

* **Links** — every intra-repo Markdown link (``[text](relative/path)``)
  must resolve to an existing file or directory, after stripping any
  ``#anchor``.  External (``http(s)://``, ``mailto:``) and pure-anchor
  links are skipped.
* **Snippets** — every fenced code block tagged ``python run`` is
  executed in a subprocess with ``PYTHONPATH=src`` from a temporary
  working directory; a non-zero exit fails the check.  Tag a block
  plain ``python`` to keep it illustrative-only.

Run from the repository root::

    python tools/check_docs.py            # both checks
    python tools/check_docs.py --links    # links only (fast)
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Markdown inline links: [text](target).  Images ![alt](target) match
#: too via the optional bang.  Targets with spaces are not used here.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
#: Fenced blocks whose info string marks them runnable.
_RUNNABLE = re.compile(r"```python run\n(.*?)```", re.DOTALL)
#: Schemes that are not intra-repo files.
_EXTERNAL = ("http://", "https://", "mailto:")


def markdown_files(root: pathlib.Path = REPO_ROOT) -> list[pathlib.Path]:
    """The documentation set under check: README plus the docs tree."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_links(root: pathlib.Path = REPO_ROOT) -> list[str]:
    """Return one error string per broken intra-repo link."""
    errors = []
    for path in markdown_files(root):
        for match in _LINK.finditer(path.read_text()):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                errors.append(
                    f"{path.relative_to(root)}: broken link -> {target}"
                )
    return errors


def runnable_snippets(
    root: pathlib.Path = REPO_ROOT,
) -> list[tuple[pathlib.Path, int, str]]:
    """Every ``python run`` block as (file, index, source)."""
    snippets = []
    for path in markdown_files(root):
        for i, match in enumerate(_RUNNABLE.finditer(path.read_text())):
            snippets.append((path, i, match.group(1)))
    return snippets


def check_snippets(root: pathlib.Path = REPO_ROOT) -> list[str]:
    """Execute every runnable snippet; return one error per failure."""
    errors = []
    env = dict(os.environ)
    src = str(root / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as tmp:
        for path, index, source in runnable_snippets(root):
            proc = subprocess.run(
                [sys.executable, "-c", source],
                cwd=tmp,
                env=env,
                capture_output=True,
                text=True,
                timeout=300,
            )
            if proc.returncode != 0:
                errors.append(
                    f"{path.relative_to(root)} snippet #{index}: "
                    f"exit {proc.returncode}\n{proc.stderr.strip()}"
                )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--links", action="store_true", help="check links only"
    )
    args = parser.parse_args(argv)

    files = markdown_files()
    errors = check_links()
    snippets = 0
    if not args.links:
        snippets = len(runnable_snippets())
        errors += check_snippets()

    for error in errors:
        print(f"FAIL {error}", file=sys.stderr)
    print(
        f"checked {len(files)} markdown files, "
        f"{snippets} runnable snippets: "
        + ("OK" if not errors else f"{len(errors)} error(s)")
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
