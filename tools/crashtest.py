#!/usr/bin/env python
"""Crash-recovery gate: exhaustively kill-and-reopen the storage layer.

Runs the deterministic crash matrix of
:func:`repro.experiments.crashbench.crash_matrix` — a scripted update
workload killed at every physical write offset, in every crash mode,
over single-file, mmap and sharded indexes — and exits non-zero if any
crash point fails to recover to its last committed state.  CI runs
this next to the test suite (`.github/workflows/ci.yml`, job
``crash-recovery``); ``repro crash-bench`` is the same matrix behind
the experiments CLI.

Usage::

    PYTHONPATH=src python tools/crashtest.py              # full matrix
    PYTHONPATH=src python tools/crashtest.py --quick      # CI subset
    PYTHONPATH=src python tools/crashtest.py --variants file,shard
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.crashbench import CRASH_VARIANTS, crash_matrix
from repro.storage.faults import CRASH_MODES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "kill a scripted update workload at every write offset, "
            "reopen, and require the last committed state back"
        )
    )
    parser.add_argument("--n", type=int, default=250, help="packed dataset size")
    parser.add_argument(
        "--updates", type=int, default=30, help="inserts+deletes to replay"
    )
    parser.add_argument(
        "--sync-every", dest="sync_every", type=int, default=10,
        help="updates per sync() commit point",
    )
    parser.add_argument("--fanout", type=int, default=12)
    parser.add_argument(
        "--block-size", dest="block_size", type=int, default=512,
        help="bytes per block (small blocks = more write offsets)",
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="shard count for the family variant"
    )
    parser.add_argument(
        "--modes", default=",".join(CRASH_MODES),
        help=f"comma-separated subset of {CRASH_MODES}",
    )
    parser.add_argument(
        "--variants", default=",".join(CRASH_VARIANTS),
        help=f"comma-separated subset of {CRASH_VARIANTS}",
    )
    parser.add_argument(
        "--stride", type=int, default=1,
        help="test every k-th write offset (1 = exhaustive)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true",
        help="small deterministic matrix for CI (still every offset)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.n, args.updates, args.sync_every = 120, 20, 10
    modes = tuple(m for m in args.modes.split(",") if m)
    variants = tuple(v for v in args.variants.split(",") if v)
    table = crash_matrix(
        n=args.n,
        updates=args.updates,
        fanout=args.fanout,
        block_size=args.block_size,
        shards=args.shards,
        sync_every=args.sync_every,
        modes=modes,
        variants=variants,
        stride=args.stride,
        seed=args.seed,
    )
    print(table.render())
    failures = sum(table.column("failures"))
    if failures:
        print(f"crashtest: {failures} crash point(s) failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
