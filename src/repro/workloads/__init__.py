"""Query workload generators.

Window-query workloads follow paper Section 3.3; the kNN and join
workloads extend the same scheme to the operators in
:mod:`repro.queries`.
"""

from repro.workloads.queries import (
    square_queries,
    skewed_queries,
    cluster_line_queries,
    QueryWorkload,
)
from repro.workloads.knn import (
    KNNWorkload,
    uniform_knn_queries,
    skewed_knn_queries,
    cluster_knn_queries,
)
from repro.workloads.join import (
    JoinWorkload,
    uniform_join,
    shifted_join,
    cluster_uniform_join,
)

__all__ = [
    "square_queries",
    "skewed_queries",
    "cluster_line_queries",
    "QueryWorkload",
    "KNNWorkload",
    "uniform_knn_queries",
    "skewed_knn_queries",
    "cluster_knn_queries",
    "JoinWorkload",
    "uniform_join",
    "shifted_join",
    "cluster_uniform_join",
]
