"""Query workload generators (paper Section 3.3)."""

from repro.workloads.queries import (
    square_queries,
    skewed_queries,
    cluster_line_queries,
    QueryWorkload,
)

__all__ = [
    "square_queries",
    "skewed_queries",
    "cluster_line_queries",
    "QueryWorkload",
]
