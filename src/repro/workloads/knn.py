"""k-nearest-neighbor query workloads.

Mirrors the window-query workload scheme (100 random queries, averaged):
each generator produces a reproducible batch of query points plus the k
to retrieve.  The point distributions match the dataset families of
Section 3.2 so a workload can be paired with the matching data:

* **uniform** points for the TIGER-like and uniform families;
* **skewed** points transformed like SKEWED(c), ``(x, y) -> (x, y^c)``,
  so queries land where the data is dense;
* **cluster** points inside the CLUSTER band along y = 0.5, the
  engineered near-worst case.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.geometry.rect import Rect

__all__ = [
    "KNNWorkload",
    "uniform_knn_queries",
    "skewed_knn_queries",
    "cluster_knn_queries",
]


@dataclass(frozen=True)
class KNNWorkload:
    """A reproducible batch of kNN queries: points and a shared k."""

    name: str
    k: int
    points: list[tuple[float, ...]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)


def uniform_knn_queries(
    count: int = 100,
    k: int = 10,
    seed: int = 0,
    bounds: Rect | None = None,
    dim: int = 2,
) -> KNNWorkload:
    """Uniform query points inside ``bounds`` (unit cube by default)."""
    if k < 0:
        raise ValueError("k must be >= 0")
    rng = random.Random(seed)
    if bounds is None:
        points = [
            tuple(rng.random() for _ in range(dim)) for _ in range(count)
        ]
    else:
        points = [
            tuple(
                lo + rng.random() * (hi - lo)
                for lo, hi in zip(bounds.lo, bounds.hi)
            )
            for _ in range(count)
        ]
    return KNNWorkload(name=f"uniform_knn(k={k})", k=k, points=points)


def skewed_knn_queries(
    c: int, count: int = 100, k: int = 10, seed: int = 0
) -> KNNWorkload:
    """Query points skewed like SKEWED(c): ``(x, y) -> (x, y^c)``.

    Matching the query distribution to the data distribution keeps the
    expected neighborhood radius roughly constant across c (the same
    design as the paper's skew-matched windows).
    """
    if c < 1:
        raise ValueError("c must be >= 1")
    rng = random.Random(seed)
    points = [(rng.random(), rng.random() ** c) for _ in range(count)]
    return KNNWorkload(name=f"skewed_knn(c={c}, k={k})", k=k, points=points)


def cluster_knn_queries(
    count: int = 100,
    k: int = 10,
    cluster_extent: float = 1e-5,
    seed: int = 0,
) -> KNNWorkload:
    """Query points inside the CLUSTER band (y within ``cluster_extent``
    of 0.5, x uniform), so every query lands near some cluster."""
    rng = random.Random(seed)
    points = [
        (rng.random(), 0.5 + (rng.random() - 0.5) * cluster_extent)
        for _ in range(count)
    ]
    return KNNWorkload(name=f"cluster_knn(k={k})", k=k, points=points)
