"""Window-query workloads.

The paper's query experiments all follow the same scheme: "in each of our
experiments we performed 100 randomly generated queries and computed
their average performance."  Three query families appear:

* **square windows** covering a given percentage of the data bounding
  box's area (0.25 %–2 % for TIGER, 1 % for the synthetic families);
* **skew-matched windows** for SKEWED(c): "squares with area 0.01 that
  are skewed in the same way as the dataset (that is, where the corner
  (x, y) is transformed to (x, y^c)) so that the output size remains
  roughly the same";
* **cluster line queries** for CLUSTER: "long skinny horizontal queries
  (of area 1×10⁻⁷) through the 10 000 clusters; the y-coordinate of the
  leftmost bottom corner was chosen randomly such that the query passed
  through all clusters."
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.geometry.rect import Rect, mbr_of


@dataclass(frozen=True)
class QueryWorkload:
    """A reproducible batch of window queries."""

    name: str
    windows: list[Rect] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.windows)

    def __iter__(self):
        return iter(self.windows)


def square_queries(
    bounds: Rect,
    area_percent: float,
    count: int = 100,
    seed: int = 0,
) -> QueryWorkload:
    """Uniform square windows with area = ``area_percent`` % of bounds.

    Window corners are placed so the whole window lies inside the bounds
    (the paper queries inside the data extent).
    """
    if not 0 < area_percent <= 100:
        raise ValueError("area_percent must be in (0, 100]")
    rng = random.Random(seed)
    total_area = bounds.area()
    if total_area <= 0:
        raise ValueError("bounds have zero area")
    side = math.sqrt(total_area * area_percent / 100.0)
    side = min(side, min(bounds.side(0), bounds.side(1)))
    windows = []
    for _ in range(count):
        x = bounds.lo[0] + rng.random() * (bounds.side(0) - side)
        y = bounds.lo[1] + rng.random() * (bounds.side(1) - side)
        windows.append(Rect((x, y), (x + side, y + side)))
    return QueryWorkload(name=f"square({area_percent}%)", windows=windows)


def skewed_queries(
    c: int,
    area_percent: float = 1.0,
    count: int = 100,
    seed: int = 0,
) -> QueryWorkload:
    """Squares transformed like SKEWED(c): corner (x, y) -> (x, y^c).

    Each window starts as a square of the given area in the unit square;
    its two y-corners are then raised to the c-th power, which keeps the
    expected output size constant across c (the paper's design).
    """
    rng = random.Random(seed)
    side = math.sqrt(area_percent / 100.0)
    windows = []
    for _ in range(count):
        x = rng.random() * (1 - side)
        y = rng.random() * (1 - side)
        windows.append(
            Rect((x, y**c), (x + side, (y + side) ** c))
        )
    return QueryWorkload(name=f"skewed_square(c={c})", windows=windows)


def cluster_line_queries(
    clusters: int,
    count: int = 100,
    area: float = 1e-7,
    cluster_extent: float = 1e-5,
    seed: int = 0,
) -> QueryWorkload:
    """Thin horizontal slits through all clusters of the CLUSTER data.

    The CLUSTER generator places clusters along y = 0.5 with extent
    ``cluster_extent``; a query spans x ∈ [0, 1] with height
    ``area / 1`` and a y-position uniform inside the clusters' band, so
    every query "passes through all clusters".
    """
    rng = random.Random(seed)
    height = area / 1.0
    y_lo = 0.5 - cluster_extent / 2
    y_hi = 0.5 + cluster_extent / 2 - height
    windows = []
    for _ in range(count):
        y = y_lo + rng.random() * max(0.0, y_hi - y_lo)
        windows.append(Rect((0.0, y), (1.0, y + height)))
    return QueryWorkload(name="cluster_lines", windows=windows)


def dataset_bounds(data) -> Rect:
    """Bounding box of a dataset (list of (Rect, value) pairs)."""
    return mbr_of(rect for rect, _ in data)
