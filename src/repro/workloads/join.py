"""Spatial-join workloads: reproducible dataset pairs.

A join workload is simply two datasets to index and join.  The
generators control join selectivity through rectangle density and
overlap structure:

* **uniform x uniform** — two independent sets of small uniform
  rectangles; expected output grows with the product of densities.
* **shifted** — a set joined with a translated copy of itself; the
  offset dials selectivity from "everything matches itself" (0) down to
  nearly empty (offset larger than the largest rectangle).
* **cluster x uniform** — the paper's engineered CLUSTER point set
  against uniform rectangles, concentrating all join work in the thin
  band along y = 0.5 (the join analogue of Table 1's line queries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.datasets.synthetic import cluster_dataset, uniform_rects
from repro.geometry.rect import Rect

__all__ = [
    "JoinWorkload",
    "uniform_join",
    "shifted_join",
    "cluster_uniform_join",
]

Dataset = list[tuple[Rect, Any]]


@dataclass(frozen=True)
class JoinWorkload:
    """A named pair of datasets to be indexed and joined."""

    name: str
    left: Dataset
    right: Dataset

    def __len__(self) -> int:
        """Input size |R| + |S|."""
        return len(self.left) + len(self.right)


def uniform_join(
    n_left: int,
    n_right: int | None = None,
    max_side: float = 0.01,
    seed: int = 0,
) -> JoinWorkload:
    """Two independent sets of small uniform rectangles."""
    if n_right is None:
        n_right = n_left
    return JoinWorkload(
        name=f"uniform_join({n_left}x{n_right})",
        left=uniform_rects(n_left, max_side=max_side, seed=seed),
        right=uniform_rects(n_right, max_side=max_side, seed=seed + 1),
    )


def shifted_join(
    n: int,
    offset: float = 0.005,
    max_side: float = 0.01,
    seed: int = 0,
) -> JoinWorkload:
    """A rectangle set joined with a diagonally translated copy.

    With ``offset`` below ``max_side`` most rectangles still meet their
    own copy, so the output is Θ(n); raising the offset past the largest
    side empties the join.  Translated rectangles are clamped to stay
    inside the unit square (clamping preserves intersections with the
    un-shifted originals for positive offsets).
    """
    left = uniform_rects(n, max_side=max_side, seed=seed)
    right = [
        (
            Rect(
                tuple(min(1.0, c + offset) for c in rect.lo),
                tuple(min(1.0, c + offset) for c in rect.hi),
            ),
            value,
        )
        for rect, value in left
    ]
    return JoinWorkload(
        name=f"shifted_join(n={n}, offset={offset})", left=left, right=right
    )


def cluster_uniform_join(
    n_cluster: int,
    n_uniform: int | None = None,
    max_side: float = 0.01,
    seed: int = 0,
) -> JoinWorkload:
    """CLUSTER points joined against uniform rectangles.

    All matching pairs live in the thin horizontal band the clusters
    occupy — a stress test for how well each tree variant isolates that
    band during the synchronized traversal.
    """
    if n_uniform is None:
        n_uniform = n_cluster
    return JoinWorkload(
        name=f"cluster_uniform_join({n_cluster}x{n_uniform})",
        left=cluster_dataset(n_cluster, seed=seed),
        right=uniform_rects(n_uniform, max_side=max_side, seed=seed + 1),
    )
