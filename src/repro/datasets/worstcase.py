"""The Theorem 3 lower-bound dataset.

Section 2.4 constructs a point set on which the packed Hilbert R-tree,
the four-dimensional Hilbert R-tree and the TGS R-tree are all forced to
visit Θ(N/B) leaves to answer a query reporting nothing:

    "We construct S as a grid of N/B columns and B rows, where each
    column is shifted up a little, depending on its horizontal position
    (each row is in fact a Halton–Hammersley point set).  More precisely,
    S has a point p_ij = (x_ij, y_ij) for all i in {0,...,N/B−1} and j in
    {0,...,B−1}, such that x_ij = i + 1/2 and y_ij = j/B + h(i)/N.  Here
    h(i) is the number obtained by reversing the k-bit binary
    representation of i."

The Hilbert curves visit each column completely before the next, so both
Hilbert loaders put each column in its own leaf; TGS always prefers
vertical cuts on this input (the paper's gap-area argument) and does the
same.  A thin horizontal window threading *between* the shifted rows then
intersects every column's bounding box while containing no point.

:func:`worstcase_query` produces exactly such a query; the PR-tree
answers it in O(√(N/B)) I/Os while the heuristics read every leaf
(Table-1-style contrast, reproduced in ``benchmarks/test_theorem3``).
"""

from __future__ import annotations

import random
from typing import Any

from repro.geometry.rect import Rect, point_rect

Dataset = list[tuple[Rect, Any]]


def bit_reversal(i: int, bits: int) -> int:
    """h(i): reverse the ``bits``-bit binary representation of ``i``."""
    if i < 0 or i >= (1 << bits):
        raise ValueError(f"{i} does not fit in {bits} bits")
    out = 0
    for _ in range(bits):
        out = (out << 1) | (i & 1)
        i >>= 1
    return out


def worstcase_dataset(n: int, capacity: int) -> Dataset:
    """The Theorem 3 point set for N points and leaf capacity B.

    Requirements from the proof: ``B >= 4`` and ``N = 2^k · B`` for some
    integer k.  ``n`` is rounded up to the nearest such value, so check
    ``len(...)`` after calling.
    """
    if capacity < 4:
        raise ValueError("the Theorem 3 construction needs B >= 4")
    columns = 1
    bits = 0
    while columns * capacity < n:
        columns *= 2
        bits += 1
    total = columns * capacity
    data: Dataset = []
    for i in range(columns):
        shift = bit_reversal(i, bits) if bits else 0
        for j in range(capacity):
            x = i + 0.5
            y = j / capacity + shift / total
            data.append((point_rect((x, y)), len(data)))
    return data


def worstcase_query(
    n: int, capacity: int, seed: int = 0
) -> Rect:
    """A full-width horizontal slit crossing every column but no point.

    Points in column i sit at heights j/B + h(i)/N; consecutive used
    heights are ≥ 1/N apart, so a horizontal band of thickness < 1/N
    placed strictly between two of them touches nothing while spanning
    all columns (whose bounding boxes cover the full height range).
    """
    columns = 1
    while columns * capacity < n:
        columns *= 2
    total = columns * capacity
    rng = random.Random(seed)
    # Pick a random row gap strictly inside the populated band.
    j = rng.randrange(1, capacity)
    # All shifts lie in [0, columns/total); center the slit just below
    # row j's unshifted height, inside the gap above the most-shifted
    # point of row j-1.
    y_low = (j - 1) / capacity + (columns - 1) / total
    y_high = j / capacity
    assert y_low < y_high, "slit construction is wrong"
    y = (y_low + y_high) / 2
    eps = (y_high - y_low) / 8
    return Rect((0.0, y - eps), (float(columns), y + eps))
