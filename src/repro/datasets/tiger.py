"""TIGER/Line-like road data simulator.

The paper's real-life datasets are road line segments from the 1997
TIGER/Line CDs: Eastern (16 eastern US states, 16.7 M rectangles) and
Western (5 western states, 12 M).  The CDs are not redistributable inputs
for an offline reproduction, so this module *simulates* data with the
statistics the paper attributes to TIGER: "it consists of relatively
small rectangles (long roads are divided into short segments) that are
somewhat (but not too badly) clustered around urban areas" (Section 3.2).

The generator lays down a configurable number of urban centers (2D
Gaussians) plus a sparse rural background; roads are random-walk
polylines seeded at a center or in the countryside; each polyline is cut
into short segments and each segment contributes its bounding box —
exactly how the paper derives rectangles from TIGER ("for each dataset we
used the bounding boxes of the line segments as our input rectangles").
Because segments are near-horizontal/vertical at random orientations,
the boxes are small with mildly varying aspect — the regime where the
paper finds all four R-tree variants behave almost identically, which is
the property the substitution must (and does) preserve.

``Eastern``/``Western`` presets differ in urban density and extent the
way the paper's two datasets differ in size; region subsets reproduce the
five-region scaling series of Figures 10 and 14 ("we divided the Eastern
dataset into five regions of roughly equal size, and then put an
increasing number of regions together").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any

from repro.geometry.rect import Rect

Dataset = list[tuple[Rect, Any]]


@dataclass(frozen=True)
class TigerRegion:
    """Shape parameters of one simulated state collection."""

    name: str
    urban_centers: int
    urban_fraction: float  # fraction of roads seeded at urban centers
    urban_spread: float  # gaussian sigma of an urban area
    segment_length: float  # mean road segment length
    x_range: tuple[float, float] = (0.0, 1.0)


#: Presets loosely shaped like the paper's two datasets: the Eastern US is
#: denser in cities; the Western sparser with wider spacing.
EASTERN = TigerRegion(
    name="eastern",
    urban_centers=40,
    urban_fraction=0.7,
    urban_spread=0.02,
    segment_length=0.002,
)
WESTERN = TigerRegion(
    name="western",
    urban_centers=15,
    urban_fraction=0.55,
    urban_spread=0.035,
    segment_length=0.003,
)

_PRESETS = {"eastern": EASTERN, "western": WESTERN}


def _clamp01(v: float) -> float:
    return 0.0 if v < 0.0 else 1.0 if v > 1.0 else v


def tiger_dataset(
    n: int,
    region: str | TigerRegion = "eastern",
    regions_used: int = 5,
    seed: int = 0,
) -> Dataset:
    """Generate ``n`` road-segment bounding boxes.

    Parameters
    ----------
    n:
        Number of rectangles.
    region:
        ``"eastern"``, ``"western"``, or a custom :class:`TigerRegion`.
    regions_used:
        How many of the five equal vertical slices of the map to cover
        (1..5).  ``tiger_dataset(n, regions_used=k)`` is the paper's
        "first k regions put together" subset with proportional n.
    seed:
        Deterministic generation seed.
    """
    if isinstance(region, str):
        try:
            preset = _PRESETS[region.lower()]
        except KeyError:
            raise ValueError(
                f"unknown region {region!r}; use 'eastern', 'western' or a TigerRegion"
            ) from None
    else:
        preset = region
    if not 1 <= regions_used <= 5:
        raise ValueError("regions_used must be in 1..5")

    rng = random.Random(seed)
    x_hi = regions_used / 5.0
    # Urban centers across the *full* map; only those inside the active
    # slice attract roads, mirroring how the paper's subsets cover
    # geographic sub-areas of the full dataset.
    centers = [
        (rng.random(), rng.random()) for _ in range(preset.urban_centers)
    ]
    active_centers = [c for c in centers if c[0] <= x_hi] or [(x_hi / 2, 0.5)]

    data: Dataset = []
    while len(data) < n:
        # Seed a road.
        if rng.random() < preset.urban_fraction:
            cx, cy = active_centers[rng.randrange(len(active_centers))]
            x = _clamp01(rng.gauss(cx, preset.urban_spread)) * x_hi / max(x_hi, 1e-9)
            x = min(x, x_hi)
            y = _clamp01(rng.gauss(cy, preset.urban_spread))
        else:
            x = rng.random() * x_hi
            y = rng.random()
        # Random-walk polyline: mostly straight with gentle turns, like a
        # road; 5-40 segments per road.
        heading = rng.random() * 2 * math.pi
        segments = rng.randrange(5, 41)
        for _ in range(segments):
            if len(data) >= n:
                break
            length = preset.segment_length * (0.5 + rng.random())
            nx = x + math.cos(heading) * length
            ny = y + math.sin(heading) * length
            nx = min(max(nx, 0.0), x_hi)
            ny = _clamp01(ny)
            lo = (min(x, nx), min(y, ny))
            hi = (max(x, nx), max(y, ny))
            data.append((Rect(lo, hi), len(data)))
            x, y = nx, ny
            heading += rng.gauss(0.0, 0.25)
    return data


def eastern_scaling_series(
    max_n: int, seed: int = 0
) -> list[tuple[int, Dataset]]:
    """The five Eastern subsets of Figures 10 and 14.

    The paper's subsets hold 2.08, 5.67, 9.16, 12.66 and 16.72 million
    rectangles; the same proportions are applied to ``max_n``.
    """
    fractions = [2.08 / 16.72, 5.67 / 16.72, 9.16 / 16.72, 12.66 / 16.72, 1.0]
    series = []
    for k, fraction in enumerate(fractions, start=1):
        n = max(1, round(max_n * fraction))
        series.append((n, tiger_dataset(n, "eastern", regions_used=k, seed=seed)))
    return series
