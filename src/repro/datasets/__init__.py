"""Dataset generators for the paper's experiments (Section 3.2).

* :mod:`repro.datasets.synthetic` — the four synthetic families:
  ``size(max_side)``, ``aspect(a)``, ``skewed(c)``, ``cluster``, plus
  uniform points/rectangles.
* :mod:`repro.datasets.tiger` — a simulator of the TIGER/Line road data
  (the real CDs are proprietary; see DESIGN.md §5 for the substitution
  argument).
* :mod:`repro.datasets.worstcase` — the Theorem 3 lower-bound dataset
  (bit-reversal shifted grid columns) that forces heuristic R-trees to
  visit every leaf.

All generators are deterministic given a seed.
"""

from repro.datasets.synthetic import (
    size_dataset,
    aspect_dataset,
    skewed_dataset,
    cluster_dataset,
    uniform_points,
    uniform_rects,
)
from repro.datasets.tiger import tiger_dataset, TigerRegion
from repro.datasets.worstcase import worstcase_dataset, bit_reversal

__all__ = [
    "size_dataset",
    "aspect_dataset",
    "skewed_dataset",
    "cluster_dataset",
    "uniform_points",
    "uniform_rects",
    "tiger_dataset",
    "TigerRegion",
    "worstcase_dataset",
    "bit_reversal",
]
