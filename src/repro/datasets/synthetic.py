"""Synthetic datasets (paper Section 3.2).

Each family stresses a different weakness of heuristic R-trees:

* ``size(max_side)`` — "rectangle centers were uniformly distributed and
  the lengths of their sides uniformly and independently distributed
  between 0 and max_side", rejecting rectangles leaving the unit square.
  Stresses handling of *large* rectangles.
* ``aspect(a)`` — fixed area 1e-6, aspect ratio fixed to ``a``, "longest
  sides chosen to be vertical or horizontal with equal probability",
  fully inside the unit square.  Stresses *skinny* rectangles.
* ``skewed(c)`` — uniform points with each ``(x, y)`` replaced by
  ``(x, y**c)``.  Stresses non-uniform coordinate distributions.
* ``cluster`` — the engineered near-worst case: "10 000 clusters with
  centers equally spaced on a horizontal line", 1000 uniform points each
  in a 0.00001 × 0.00001 square (scaled to the requested n).

Values attached to the rectangles are their generation indices.
"""

from __future__ import annotations

import math
import random
from typing import Any

from repro.geometry.rect import Rect, point_rect

Dataset = list[tuple[Rect, Any]]


def uniform_points(n: int, seed: int = 0) -> Dataset:
    """n uniform points in the unit square (degenerate rectangles)."""
    rng = random.Random(seed)
    return [
        (point_rect((rng.random(), rng.random())), i) for i in range(n)
    ]


def uniform_rects(n: int, max_side: float = 0.01, seed: int = 0) -> Dataset:
    """Uniform small rectangles, unclipped convenience generator."""
    rng = random.Random(seed)
    data: Dataset = []
    for i in range(n):
        x, y = rng.random(), rng.random()
        w = rng.random() * max_side
        h = rng.random() * max_side
        data.append((Rect((x, y), (min(1.0, x + w), min(1.0, y + h))), i))
    return data


def size_dataset(n: int, max_side: float, seed: int = 0) -> Dataset:
    """The paper's SIZE(max_side) family.

    Centers uniform in the unit square; side lengths uniform in
    [0, max_side], independently per axis; rectangles not completely
    inside the unit square are discarded and regenerated ("we discarded
    rectangles that were not completely inside the unit square (but made
    sure each dataset had 10 million rectangles)").
    """
    if not 0 < max_side <= 1:
        raise ValueError("max_side must be in (0, 1]")
    rng = random.Random(seed)
    data: Dataset = []
    while len(data) < n:
        cx, cy = rng.random(), rng.random()
        w = rng.random() * max_side
        h = rng.random() * max_side
        lo = (cx - w / 2, cy - h / 2)
        hi = (cx + w / 2, cy + h / 2)
        if lo[0] < 0 or lo[1] < 0 or hi[0] > 1 or hi[1] > 1:
            continue
        data.append((Rect(lo, hi), len(data)))
    return data


def aspect_dataset(
    n: int, aspect: float, area: float = 1e-6, seed: int = 0
) -> Dataset:
    """The paper's ASPECT(a) family.

    Fixed area, aspect ratio exactly ``a``, long side axis chosen
    uniformly, centers uniform, rectangles fully inside the unit square.
    """
    if aspect < 1:
        raise ValueError("aspect must be >= 1")
    long_side = math.sqrt(area * aspect)
    short_side = math.sqrt(area / aspect)
    if long_side > 1:
        raise ValueError("aspect too large for the requested area")
    rng = random.Random(seed)
    data: Dataset = []
    while len(data) < n:
        horizontal = rng.random() < 0.5
        w, h = (long_side, short_side) if horizontal else (short_side, long_side)
        cx, cy = rng.random(), rng.random()
        lo = (cx - w / 2, cy - h / 2)
        hi = (cx + w / 2, cy + h / 2)
        if lo[0] < 0 or lo[1] < 0 or hi[0] > 1 or hi[1] > 1:
            continue
        data.append((Rect(lo, hi), len(data)))
    return data


def skewed_dataset(n: int, c: int, seed: int = 0) -> Dataset:
    """The paper's SKEWED(c) family: uniform points squeezed to (x, y^c)."""
    if c < 1:
        raise ValueError("c must be >= 1")
    rng = random.Random(seed)
    return [
        (point_rect((rng.random(), rng.random() ** c)), i) for i in range(n)
    ]


def cluster_dataset(
    n: int,
    clusters: int | None = None,
    cluster_extent: float = 1e-5,
    seed: int = 0,
) -> Dataset:
    """The paper's CLUSTER dataset, scaled to ``n`` points.

    ``clusters`` centers equally spaced on the horizontal line y = 0.5,
    each receiving ``n // clusters`` points uniform in a
    ``cluster_extent``-sized square.  The paper uses 10 000 clusters of
    1000 points; the default keeps the paper's 10:1 cluster:population
    ratio (``clusters = n // 1000`` clamped to at least 10).
    """
    if clusters is None:
        clusters = max(10, n // 1000)
    if clusters < 1:
        raise ValueError("need at least one cluster")
    rng = random.Random(seed)
    per_cluster = n // clusters
    data: Dataset = []
    for k in range(clusters):
        cx = (k + 0.5) / clusters
        cy = 0.5
        count = per_cluster if k < clusters - 1 else n - per_cluster * (clusters - 1)
        for _ in range(count):
            x = cx + (rng.random() - 0.5) * cluster_extent
            y = cy + (rng.random() - 0.5) * cluster_extent
            data.append((point_rect((x, y)), len(data)))
    return data
