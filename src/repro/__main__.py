"""``python -m repro`` — run the paper's experiments from the shell."""

import sys

from repro.experiments.cli import main

sys.exit(main())
