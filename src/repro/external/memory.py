"""The (M, B) main-memory model for external algorithms.

All external bulk loaders take a :class:`MemoryModel` describing how many
records fit in a block (``B``) and in main memory (``M``); the classic
external-memory cost bounds — and the paper's bulk-loading analysis — are
stated in these two parameters.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryModel:
    """Main-memory budget for external-memory algorithms.

    Attributes
    ----------
    memory_records:
        ``M`` — number of records that fit in main memory at once.
    block_records:
        ``B`` — number of records per disk block.

    The model requires ``M >= 4·B`` so that multiway merging (which needs
    at least two input buffers and one output buffer, plus slack) is
    possible; the paper additionally assumes ``M = Ω(B^(4/3))`` for the
    grid-based PR-tree construction, which
    :meth:`repro.prtree.gridbuild` checks for itself.
    """

    memory_records: int
    block_records: int

    def __post_init__(self) -> None:
        if self.block_records < 1:
            raise ValueError("block_records (B) must be >= 1")
        if self.memory_records < 4 * self.block_records:
            raise ValueError(
                f"memory_records (M={self.memory_records}) must be at least "
                f"4*B={4 * self.block_records} for multiway merging"
            )

    @property
    def memory_blocks(self) -> int:
        """``M/B`` — blocks of main memory."""
        return self.memory_records // self.block_records

    @property
    def merge_fanin(self) -> int:
        """Streams merged per pass: ``M/B - 1`` input buffers (≥ 2)."""
        return max(2, self.memory_blocks - 1)

    def blocks_for(self, n_records: int) -> int:
        """``ceil(n/B)`` — blocks occupied by ``n_records`` records."""
        return -(-n_records // self.block_records)

    def fits_in_memory(self, n_records: int) -> bool:
        """True when a working set of ``n_records`` fits in memory."""
        return n_records <= self.memory_records
