"""External-memory primitives under the (M, B) model.

The paper builds on TPIE, "a library that provides support for
implementing I/O-efficient algorithms and data structures" (Section 3.1).
This package is the reproduction's TPIE: record streams stored in disk
blocks, scanning, distribution, and external multiway merge sort — all
moving data through a :class:`~repro.iomodel.blockstore.BlockStore` so
every block touched is counted.

The classic parameters:

* ``B`` — records per block (derived from block size / record size);
* ``M`` — records that fit in main memory (the paper restricts TPIE to
  64 MB of its 128 MB machine).

Sorting N records costs ``O((N/B) log_{M/B} (N/B))`` I/Os — the bound the
paper's bulk-loading costs are expressed in.
"""

from repro.external.memory import MemoryModel
from repro.external.stream import BlockStream, StreamWriter
from repro.external.sort import external_sort

__all__ = ["MemoryModel", "BlockStream", "StreamWriter", "external_sort"]
