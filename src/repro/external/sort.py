"""External multiway merge sort.

Sorting is the workhorse of every bulk loader in the paper: the Hilbert
loaders are "sort, then pack"; the PR-tree construction pre-sorts the input
four ways; and the overall bulk-loading bound ``O((N/B) log_{M/B} (N/B))``
*is* the sorting bound.

The algorithm is the classic two-phase external sort:

1. **Run formation** — read ``M`` records at a time, sort in memory, write
   each run out as a stream.  Runs are ``M`` long, so there are ``ceil(N/M)``
   of them.
2. **Multiway merge** — repeatedly merge ``M/B - 1`` runs at a time (one
   block buffered per input run, one output buffer) until a single run
   remains.  Each pass reads and writes every record once.

Total cost: ``2·(N/B)`` I/Os per pass over ``1 + ceil(log_{M/B-1} (N/M))``
passes — the textbook bound, which the property tests assert.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.external.memory import MemoryModel
from repro.external.stream import BlockStream, StreamWriter


def _form_runs(
    stream: BlockStream, key: Callable[[Any], Any], memory: MemoryModel
) -> list[BlockStream]:
    """Phase 1: produce sorted runs of at most M records each."""
    runs: list[BlockStream] = []
    buffer: list[Any] = []

    def flush() -> None:
        nonlocal buffer
        if buffer:
            buffer.sort(key=key)
            runs.append(
                BlockStream.from_records(stream.store, buffer, stream.block_records)
            )
            buffer = []

    for block in stream.iter_blocks():
        buffer.extend(block)
        if len(buffer) >= memory.memory_records:
            # Keep exactly M records per run: carve full runs off the buffer.
            while len(buffer) >= memory.memory_records:
                run, buffer = (
                    buffer[: memory.memory_records],
                    buffer[memory.memory_records :],
                )
                run.sort(key=key)
                runs.append(
                    BlockStream.from_records(
                        stream.store, run, stream.block_records
                    )
                )
    flush()
    return runs


def _merge_runs(
    runs: list[BlockStream], key: Callable[[Any], Any], memory: MemoryModel
) -> BlockStream:
    """Merge up to ``merge_fanin`` runs into one; frees the inputs."""
    store = runs[0].store
    writer = StreamWriter(store, runs[0].block_records)
    # heap entries: (key, run_index, tiebreak, record); the tiebreak keeps
    # heapq from ever comparing records (which may not be orderable).
    heap: list[tuple[Any, int, int, Any]] = []
    iterators = [iter(run) for run in runs]
    counter = 0
    for i, it in enumerate(iterators):
        for record in it:
            heapq.heappush(heap, (key(record), i, counter, record))
            counter += 1
            break
    while heap:
        _, i, _, record = heapq.heappop(heap)
        writer.append(record)
        for nxt in iterators[i]:
            heapq.heappush(heap, (key(nxt), i, counter, nxt))
            counter += 1
            break
    for run in runs:
        run.free()
    return writer.finish()


def external_sort(
    stream: BlockStream,
    key: Callable[[Any], Any],
    memory: MemoryModel,
    free_input: bool = False,
) -> BlockStream:
    """Sort a stream by ``key`` under the (M, B) memory budget.

    Returns a new stream holding the same multiset of records in
    non-decreasing key order.  The input stream is freed when
    ``free_input`` is true (temporary intermediates always are).
    """
    if len(stream) == 0:
        if free_input:
            stream.free()
        return BlockStream.empty(stream.store, stream.block_records)

    runs = _form_runs(stream, key, memory)
    if free_input:
        stream.free()

    fanin = memory.merge_fanin
    while len(runs) > 1:
        merged: list[BlockStream] = []
        for start in range(0, len(runs), fanin):
            group = runs[start : start + fanin]
            if len(group) == 1:
                merged.append(group[0])
            else:
                merged.append(_merge_runs(group, key, memory))
        runs = merged
    return runs[0]


def sort_pass_bound(n_records: int, memory: MemoryModel) -> int:
    """Upper bound on I/Os used by :func:`external_sort` on ``n`` records.

    ``2 · ceil(n/B) · (1 + ceil(log_fanin(ceil(n/M))))`` plus one block of
    slack per run for partially filled boundary blocks.  The property tests
    assert measured I/O stays under this.
    """
    if n_records == 0:
        return 0
    blocks = memory.blocks_for(n_records)
    runs = -(-n_records // memory.memory_records)
    passes = 1
    fanin = memory.merge_fanin
    while runs > 1:
        runs = -(-runs // fanin)
        passes += 1
    # one read+write of every block per pass, plus per-run partial blocks
    slack = 2 * passes * (-(-n_records // memory.memory_records) + 1)
    return 2 * blocks * passes + slack
