"""Record streams stored in disk blocks.

A :class:`BlockStream` is the reproduction's equivalent of a TPIE stream
(or a flat file): an ordered sequence of records packed ``B`` to a block in
a :class:`~repro.iomodel.blockstore.BlockStore`.  Reading iterates blocks
in order (sequential I/O); writing goes through a :class:`StreamWriter`
that buffers one block's worth of records at a time — so neither direction
ever holds more than a block in "memory", and every block touched is
counted by the store.

Records are arbitrary Python objects; the external bulk loaders stream
``(Rect, object_id)`` pairs and key-augmented variants of them.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.iomodel.blockstore import BlockId, BlockStore


class BlockStream:
    """An immutable-once-written sequence of records in whole blocks.

    Create streams with :meth:`from_records` (buffered write) or by
    accumulating into a :class:`StreamWriter`.
    """

    def __init__(
        self, store: BlockStore, block_records: int, block_ids: list[BlockId], length: int
    ) -> None:
        self.store = store
        self.block_records = block_records
        self.block_ids = block_ids
        self._length = length

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_records(
        cls, store: BlockStore, records: Iterable[Any], block_records: int
    ) -> "BlockStream":
        """Write ``records`` to freshly allocated blocks, B per block."""
        writer = StreamWriter(store, block_records)
        for record in records:
            writer.append(record)
        return writer.finish()

    @classmethod
    def empty(cls, store: BlockStore, block_records: int) -> "BlockStream":
        """A stream with no records and no blocks."""
        return cls(store, block_records, [], 0)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of records (known without I/O)."""
        return self._length

    @property
    def block_count(self) -> int:
        """Number of blocks occupied."""
        return len(self.block_ids)

    def iter_blocks(self) -> Iterator[list[Any]]:
        """Yield each block's record list, counting one read per block."""
        for block_id in self.block_ids:
            yield self.store.read(block_id)

    def __iter__(self) -> Iterator[Any]:
        """Iterate records in order; one counted read per block."""
        for block in self.iter_blocks():
            yield from block

    def read_all(self) -> list[Any]:
        """Materialize every record (costs ``block_count`` reads).

        Callers are responsible for only doing this when the stream fits
        in their :class:`~repro.external.memory.MemoryModel` budget.
        """
        out: list[Any] = []
        for block in self.iter_blocks():
            out.extend(block)
        return out

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def free(self) -> None:
        """Release all blocks (no I/O cost; deallocation is metadata)."""
        for block_id in self.block_ids:
            self.store.free(block_id)
        self.block_ids = []
        self._length = 0

    def __repr__(self) -> str:
        return (
            f"BlockStream(records={self._length}, blocks={self.block_count}, "
            f"B={self.block_records})"
        )


class StreamWriter:
    """Buffered writer producing a :class:`BlockStream`.

    Holds at most one block of records in memory; flushes to a new block
    whenever full.  Call :meth:`finish` exactly once to obtain the stream.
    """

    def __init__(self, store: BlockStore, block_records: int) -> None:
        if block_records < 1:
            raise ValueError("block_records must be >= 1")
        self.store = store
        self.block_records = block_records
        self._buffer: list[Any] = []
        self._block_ids: list[BlockId] = []
        self._length = 0
        self._finished = False

    def append(self, record: Any) -> None:
        """Add one record, flushing a full buffer to disk."""
        if self._finished:
            raise RuntimeError("writer already finished")
        self._buffer.append(record)
        self._length += 1
        if len(self._buffer) >= self.block_records:
            self._flush()

    def extend(self, records: Iterable[Any]) -> None:
        """Append many records."""
        for record in records:
            self.append(record)

    def _flush(self) -> None:
        if self._buffer:
            self._block_ids.append(self.store.allocate(self._buffer))
            self._buffer = []

    def finish(self) -> BlockStream:
        """Flush the tail and return the completed stream."""
        if self._finished:
            raise RuntimeError("writer already finished")
        self._flush()
        self._finished = True
        return BlockStream(
            self.store, self.block_records, self._block_ids, self._length
        )

    def __len__(self) -> int:
        return self._length


def distribute(
    stream: BlockStream,
    classify: Callable[[Any], int],
    n_buckets: int,
    free_input: bool = False,
) -> list[BlockStream]:
    """Partition a stream into ``n_buckets`` streams in one scan.

    ``classify`` maps each record to its bucket index.  This is the
    external "distribution" primitive the bulk loaders use to send records
    to recursive subproblems; it costs one read per input block plus one
    write per output block.
    """
    writers = [StreamWriter(stream.store, stream.block_records) for _ in range(n_buckets)]
    for record in stream:
        bucket = classify(record)
        if not 0 <= bucket < n_buckets:
            raise ValueError(f"classifier returned {bucket}, expected 0..{n_buckets - 1}")
        writers[bucket].append(record)
    if free_input:
        stream.free()
    return [w.finish() for w in writers]
