"""Bulk-loading algorithms for R-trees (the paper's baselines).

The paper compares the PR-tree against three bulk loaders "known to
generate query-efficient R-trees" (Section 3):

* **H** — the packed Hilbert R-tree of Kamel & Faloutsos: sort by Hilbert
  value of the rectangle centers, pack in that order
  (:func:`repro.bulk.hilbert.build_hilbert`).
* **H4** — the four-dimensional Hilbert R-tree: sort by the Hilbert value
  of the corner-mapped points ``(xmin, ymin, xmax, ymax)``
  (:func:`repro.bulk.hilbert.build_hilbert4`).
* **TGS** — Top-down Greedy Split of García, López & Leutenegger
  (:func:`repro.bulk.tgs.build_tgs`).

Plus **STR** (Leutenegger et al. [18]) as an extra baseline for ablations
(:func:`repro.bulk.str_pack.build_str`).

Each loader has two faces: an in-memory ``build_*`` used by the query
experiments, and an external ``build_*_external`` that moves records
through :mod:`repro.external` streams so bulk-loading I/O can be counted
(Figures 9–11).  Both faces produce structurally identical tree families.

The PR-tree's own loaders live in :mod:`repro.prtree`.
"""

from repro.bulk.base import pack_ordered, pack_leaf_level, BuildStats
from repro.bulk.hilbert import (
    build_hilbert,
    build_hilbert4,
    build_hilbert_external,
    build_hilbert4_external,
)
from repro.bulk.tgs import build_tgs, build_tgs_external
from repro.bulk.str_pack import build_str

__all__ = [
    "pack_ordered",
    "pack_leaf_level",
    "BuildStats",
    "build_hilbert",
    "build_hilbert4",
    "build_hilbert_external",
    "build_hilbert4_external",
    "build_tgs",
    "build_tgs_external",
    "build_str",
]
