"""Shared machinery for bottom-up R-tree packing.

The "sort, place in leaves in that order, build the rest of the index
bottom-up level-by-level" family (paper Section 1.1, [10, 15, 18]) shares
one packing step: given data in final leaf order, chunk it into full
leaves, then repeatedly chunk node bounding boxes into full internal
nodes until a single root remains.  Both Hilbert loaders and STR reduce to
:func:`pack_ordered` after their respective sorts; the PR-tree builder
reuses :func:`pack_leaf_level`'s node-materialization conventions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.geometry.rect import Rect, mbr_of
from repro.iomodel.blockstore import BlockStore
from repro.iomodel.counters import IOSnapshot
from repro.rtree.node import Node
from repro.rtree.tree import RTree


@dataclass
class BuildStats:
    """What one bulk load cost.

    ``io`` is meaningful only for the external loaders (the in-memory
    paths count just their node writes); ``cpu_seconds`` is measured
    wall-clock of the build call, reported alongside modelled I/O time in
    the Figure 9/11 reproductions.
    """

    io: IOSnapshot
    cpu_seconds: float
    levels: int


def pack_leaf_level(
    store: BlockStore, entries: Sequence[tuple[Rect, int]], fanout: int, is_leaf: bool
) -> list[tuple[Rect, int]]:
    """Chunk ordered entries into full nodes; return (mbr, block_id) pairs.

    Every node except possibly the last receives exactly ``fanout``
    entries — the near-100 % utilization all the paper's loaders target.
    """
    level: list[tuple[Rect, int]] = []
    for start in range(0, len(entries), fanout):
        chunk = list(entries[start : start + fanout])
        block_id = store.allocate(Node(is_leaf, chunk))
        level.append((mbr_of(r for r, _ in chunk), block_id))
    return level


def pack_ordered(
    store: BlockStore,
    data: Sequence[tuple[Rect, Any]],
    fanout: int,
    dim: int | None = None,
) -> RTree:
    """Build an R-tree whose leaves hold ``data`` in the given order.

    ``data`` pairs rectangles with arbitrary caller values; object ids are
    assigned in order.  An empty dataset yields a tree with one empty leaf.
    """
    if dim is None:
        dim = data[0][0].dim if data else 2
    tree = RTree(
        store,
        root_id=-1,
        dim=dim,
        fanout=fanout,
        height=1,
        size=len(data),
    )
    entries: list[tuple[Rect, int]] = []
    for rect, value in data:
        if rect.dim != dim:
            raise ValueError(f"rect of dim {rect.dim} in a dim-{dim} load")
        entries.append((rect, tree.register_object(value)))

    if not entries:
        tree.root_id = store.allocate(Node(is_leaf=True))
        return tree

    level = pack_leaf_level(store, entries, fanout, is_leaf=True)
    height = 1
    while len(level) > 1:
        level = pack_leaf_level(store, level, fanout, is_leaf=False)
        height += 1
    tree.root_id = level[0][1]
    tree.height = height
    return tree


def timed(fn, *args, **kwargs):
    """Run ``fn`` returning ``(result, seconds)`` of wall-clock time."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
