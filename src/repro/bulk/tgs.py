"""Top-down Greedy Split (TGS) bulk loading.

García, López & Leutenegger's algorithm, as described in the paper's
Section 1.1: "To build the root of (a subtree of) an R-tree on a given set
of rectangles, this algorithm repeatedly partitions the rectangles into
two sets, until they are divided into B subsets of (approximately) equal
size. ... Each of the binary partitions takes a set of rectangles and
splits it into two subsets based on one of several one-dimensional
orderings; in two dimensions, the orderings considered are those by xmin,
ymin, xmax and ymax.  For each such ordering, the algorithm calculates,
for each of O(B) possible partitioning possibilities, the sum of the areas
of the bounding boxes of the two subsets that would result from the
partition. Then it applies the binary partition that minimizes that sum."

Following the paper's footnote 1, subset sizes are rounded up to powers of
the fan-out ("except for one remainder set"), so cuts fall on multiples of
a *unit* — the capacity of one child subtree — which yields near-100 %
space utilization and means "one node on each level, including the root,
may have less than B children."

The in-memory face keeps 2d sorted orderings of the working set and
filters them down through the binary recursion.  The external face keeps
the same orderings as sorted block streams: every binary partition scans
each ordering once to evaluate cuts at unit boundaries and once to
distribute records — the "needs to scan all the rectangles in order to
make a binary partition" cost that makes TGS the most expensive loader in
Figure 9 (effectively O((N/B)·log2 N) I/Os).
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.bulk.base import BuildStats, timed
from repro.external.memory import MemoryModel
from repro.external.sort import external_sort
from repro.external.stream import BlockStream, StreamWriter
from repro.geometry.rect import Rect, mbr_of
from repro.iomodel.blockstore import BlockStore
from repro.rtree.node import Node
from repro.rtree.tree import RTree

#: A working item: (rectangle, pointer).
Item = tuple[Rect, int]


def _tree_height(n: int, fanout: int) -> int:
    """Minimal height h with fanout**h >= n (1 for a single leaf)."""
    height = 1
    capacity = fanout
    while capacity < n:
        capacity *= fanout
        height += 1
    return height


def _order_key(ordering: int):
    """Sort key for one of the 2d one-dimensional orderings.

    The object id tie-break makes orderings total even with duplicate
    coordinates (the paper assumes distinct coordinates; we don't need to).
    """

    def key(item: Item) -> tuple[float, int]:
        return (item[0].corner_coord(ordering), item[1])

    return key


def _sorted_orderings(items: Sequence[Item], dim: int) -> list[list[Item]]:
    """The 2d sorted copies of the working set."""
    return [sorted(items, key=_order_key(o)) for o in range(2 * dim)]


# ----------------------------------------------------------------------
# Split evaluation (shared by both faces)
# ----------------------------------------------------------------------


def _unit_mbrs(ordered: Sequence[Item], unit: int) -> list[Rect]:
    """Bounding box of each consecutive ``unit``-sized chunk."""
    return [
        mbr_of(rect for rect, _ in ordered[start : start + unit])
        for start in range(0, len(ordered), unit)
    ]


def _best_cut(per_ordering_unit_mbrs: list[list[Rect]]) -> tuple[int, int]:
    """Greedy choice: (ordering, cut) minimizing the two boxes' area sum.

    ``cut`` is in units: the left side takes the first ``cut`` chunks.
    """
    best = (math.inf, 0, 1)
    for ordering, chunks in enumerate(per_ordering_unit_mbrs):
        m = len(chunks)
        if m < 2:
            continue
        prefix = [chunks[0]]
        for box in chunks[1:]:
            prefix.append(prefix[-1].union(box))
        suffix = [chunks[-1]]
        for box in reversed(chunks[:-1]):
            suffix.append(suffix[-1].union(box))
        suffix.reverse()
        for cut in range(1, m):
            cost = prefix[cut - 1].area() + suffix[cut].area()
            if cost < best[0]:
                best = (cost, ordering, cut)
    _, ordering, cut = best
    return ordering, cut


# ----------------------------------------------------------------------
# In-memory face
# ----------------------------------------------------------------------


def _binary_split_mem(
    orderings: list[list[Item]], unit: int
) -> tuple[list[list[Item]], list[list[Item]]]:
    """One greedy binary partition of the working set at a unit boundary."""
    ordering, cut = _best_cut([_unit_mbrs(lst, unit) for lst in orderings])
    chosen = orderings[ordering]
    left_ids = {oid for _, oid in chosen[: cut * unit]}
    left = [[item for item in lst if item[1] in left_ids] for lst in orderings]
    right = [[item for item in lst if item[1] not in left_ids] for lst in orderings]
    return left, right


def _partition_mem(
    orderings: list[list[Item]], unit: int
) -> list[list[list[Item]]]:
    """Recursively binary-split until every group fits in one unit."""
    if len(orderings[0]) <= unit:
        return [orderings]
    left, right = _binary_split_mem(orderings, unit)
    return _partition_mem(left, unit) + _partition_mem(right, unit)


def _build_subtree_mem(
    store: BlockStore, orderings: list[list[Item]], height: int, fanout: int
) -> tuple[Rect, int]:
    """Build a subtree of exactly ``height`` levels; returns (mbr, block)."""
    items = orderings[0]
    if height == 1:
        block_id = store.allocate(Node(is_leaf=True, entries=list(items)))
        return mbr_of(rect for rect, _ in items), block_id
    unit = fanout ** (height - 1)
    children = [
        _build_subtree_mem(store, group, height - 1, fanout)
        for group in _partition_mem(orderings, unit)
    ]
    block_id = store.allocate(Node(is_leaf=False, entries=children))
    return mbr_of(rect for rect, _ in children), block_id


def build_tgs(
    store: BlockStore, data: Sequence[tuple[Rect, Any]], fanout: int
) -> RTree:
    """In-memory TGS bulk load."""
    dim = data[0][0].dim if data else 2
    tree = RTree(store, root_id=-1, dim=dim, fanout=fanout, height=1, size=len(data))
    items: list[Item] = [
        (rect, tree.register_object(value)) for rect, value in data
    ]
    if not items:
        tree.root_id = store.allocate(Node(is_leaf=True))
        return tree
    height = _tree_height(len(items), fanout)
    orderings = _sorted_orderings(items, dim)
    _, tree.root_id = _build_subtree_mem(store, orderings, height, fanout)
    tree.height = height
    return tree


# ----------------------------------------------------------------------
# External face
# ----------------------------------------------------------------------


def _scan_units_and_keys(
    stream: BlockStream, unit: int, ordering: int
) -> tuple[list[Rect], list[tuple[float, int]]]:
    """One scan: per-unit MBRs and the ordering key at each unit boundary."""
    key = _order_key(ordering)
    unit_boxes: list[Rect] = []
    boundary_keys: list[tuple[float, int]] = []
    current: Rect | None = None
    count = 0
    last_item: Item | None = None
    for item in stream:
        rect = item[0]
        current = rect if current is None else current.union(rect)
        count += 1
        last_item = item
        if count == unit:
            unit_boxes.append(current)
            boundary_keys.append(key(last_item))
            current = None
            count = 0
    if current is not None:
        unit_boxes.append(current)
        boundary_keys.append(key(last_item))
    return unit_boxes, boundary_keys


def _binary_split_ext(
    streams: list[BlockStream], unit: int
) -> tuple[list[BlockStream], list[BlockStream]]:
    """External greedy binary partition; consumes the input streams."""
    store = streams[0].store
    block_records = streams[0].block_records
    per_ordering: list[list[Rect]] = []
    per_boundaries: list[list[tuple[float, int]]] = []
    for ordering, stream in enumerate(streams):
        boxes, boundaries = _scan_units_and_keys(stream, unit, ordering)
        per_ordering.append(boxes)
        per_boundaries.append(boundaries)
    ordering, cut = _best_cut(per_ordering)
    threshold = per_boundaries[ordering][cut - 1]
    key = _order_key(ordering)

    left_streams: list[BlockStream] = []
    right_streams: list[BlockStream] = []
    for stream in streams:
        left_writer = StreamWriter(store, block_records)
        right_writer = StreamWriter(store, block_records)
        for item in stream:
            if key(item) <= threshold:
                left_writer.append(item)
            else:
                right_writer.append(item)
        stream.free()
        left_streams.append(left_writer.finish())
        right_streams.append(right_writer.finish())
    return left_streams, right_streams


def _partition_ext(
    streams: list[BlockStream], unit: int
) -> list[list[BlockStream]]:
    if len(streams[0]) <= unit:
        return [streams]
    left, right = _binary_split_ext(streams, unit)
    return _partition_ext(left, unit) + _partition_ext(right, unit)


def _build_subtree_ext(
    store: BlockStore,
    streams: list[BlockStream],
    height: int,
    fanout: int,
    memory: MemoryModel,
    dim: int,
) -> tuple[Rect, int]:
    n = len(streams[0])
    if memory.fits_in_memory(n):
        items = streams[0].read_all()
        for stream in streams:
            stream.free()
        return _build_subtree_mem(
            store, _sorted_orderings(items, dim), height, fanout
        )
    unit = fanout ** (height - 1)
    children = [
        _build_subtree_ext(store, group, height - 1, fanout, memory, dim)
        for group in _partition_ext(streams, unit)
    ]
    block_id = store.allocate(Node(is_leaf=False, entries=children))
    return mbr_of(rect for rect, _ in children), block_id


def build_tgs_external(
    store: BlockStore,
    input_stream: BlockStream,
    fanout: int,
    memory: MemoryModel,
) -> tuple[RTree, BuildStats]:
    """External TGS bulk load with I/O accounting.

    The input stream holds ``(Rect, value)`` records.  Cost: one
    registering scan, 2d external sorts to establish the orderings, then
    the greedy binary-partition recursion, each split scanning the working
    set a constant number of times.
    """
    before = store.counters.snapshot()

    def run() -> RTree:
        n = len(input_stream)
        dim: int | None = None
        tree = RTree(store, root_id=-1, dim=2, fanout=fanout, height=1, size=n)
        writer = StreamWriter(store, input_stream.block_records)
        for rect, value in input_stream:
            if dim is None:
                dim = rect.dim
                tree.dim = dim
            writer.append((rect, tree.register_object(value)))
        base = writer.finish()
        if n == 0:
            base.free()
            tree.root_id = store.allocate(Node(is_leaf=True))
            return tree
        assert dim is not None
        streams = [
            external_sort(base, key=_order_key(o), memory=memory)
            for o in range(2 * dim)
        ]
        base.free()
        height = _tree_height(n, fanout)
        _, tree.root_id = _build_subtree_ext(
            store, streams, height, fanout, memory, dim
        )
        tree.height = height
        return tree

    tree, seconds = timed(run)
    io = store.counters.snapshot() - before
    return tree, BuildStats(io=io, cpu_seconds=seconds, levels=tree.height)
