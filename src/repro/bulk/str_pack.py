"""STR (Sort-Tile-Recursive) bulk loading.

Leutenegger, López & Edgington's packing algorithm — reference [18] of the
paper, cited among the sort-based bulk loaders.  It is not one of the
paper's measured baselines, but it is the loader mainstream libraries ship
(the repro calibration notes that real-world systems use R*/STR), so it is
included for the ablation benchmarks.

In two dimensions: sort rectangles by x-center, slice into
``ceil(sqrt(N/B))`` vertical slabs of ``B·ceil(sqrt(N/B))`` rectangles,
sort each slab by y-center, pack runs of ``B``.  In d dimensions the same
tiling recurses one axis at a time with slab sizes ``n^((k-1)/k)``.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.bulk.base import pack_ordered
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.rtree.tree import RTree


def _tile(
    data: list[tuple[Rect, Any]], fanout: int, axis: int, dim: int
) -> list[tuple[Rect, Any]]:
    """Order ``data`` by recursive center-coordinate tiling from ``axis``."""
    if not data:
        return data
    data = sorted(data, key=lambda item: item[0].center()[axis])
    if axis == dim - 1:
        return data
    leaves = math.ceil(len(data) / fanout)
    remaining_axes = dim - axis
    # Classic STR sizing: with P leaves and k axes left, take slabs of
    # ceil(P^((k-1)/k)) * B records so each slab holds a full column of
    # the remaining tiling.
    per_slab_leaves = math.ceil(leaves ** ((remaining_axes - 1) / remaining_axes))
    slab_records = max(fanout, per_slab_leaves * fanout)
    ordered: list[tuple[Rect, Any]] = []
    for start in range(0, len(data), slab_records):
        ordered.extend(
            _tile(data[start : start + slab_records], fanout, axis + 1, dim)
        )
    return ordered


def build_str(
    store: BlockStore, data: Sequence[tuple[Rect, Any]], fanout: int
) -> RTree:
    """STR bulk load: tile by center coordinates, pack bottom-up."""
    dim = data[0][0].dim if data else 2
    ordered = _tile(list(data), fanout, axis=0, dim=dim)
    return pack_ordered(store, ordered, fanout, dim=dim)
