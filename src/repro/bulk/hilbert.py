"""Packed Hilbert (H) and four-dimensional Hilbert (H4) bulk loaders.

H — Kamel & Faloutsos's packed Hilbert R-tree — "sorts the rectangles
according to the Hilbert values of their centers", places them in leaves
in that order, and builds the index bottom-up.  H4 instead maps each
rectangle to the 2d-dimensional point ``(xmin, ymin, xmax, ymax)`` and
sorts by that point's position on the 2d-dimensional Hilbert curve —
"it also takes the extent of the rectangles into account", which the
paper's experiments show makes it far more robust on extreme data
(Section 1.1, Figure 15).

Both have an in-memory face (query experiments) and an external face that
scans, sorts and packs through counted block streams (bulk-load
experiments).  The external pipeline is three sequential passes plus the
sort — the cheapness the paper reports in Figure 9 (H uses ~2.5× fewer
I/Os than PR and ~11× fewer than TGS).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.bulk.base import BuildStats, pack_leaf_level, pack_ordered, timed
from repro.external.memory import MemoryModel
from repro.external.sort import external_sort
from repro.external.stream import BlockStream, StreamWriter
from repro.geometry.hilbert import (
    DEFAULT_ORDER,
    hilbert_key_for_center,
    hilbert_key_for_corners,
)
from repro.geometry.rect import Rect, mbr_of
from repro.iomodel.blockstore import BlockStore
from repro.rtree.node import Node
from repro.rtree.tree import RTree

KeyFunction = Callable[[Rect, Rect], int]


# ----------------------------------------------------------------------
# In-memory loaders
# ----------------------------------------------------------------------


def _build_by_key(
    store: BlockStore,
    data: Sequence[tuple[Rect, Any]],
    fanout: int,
    key: KeyFunction,
    order: int,
) -> RTree:
    if not data:
        return pack_ordered(store, data, fanout)
    bounds = mbr_of(rect for rect, _ in data)
    decorated = sorted(data, key=lambda item: key(item[0], bounds))
    return pack_ordered(store, decorated, fanout)


def build_hilbert(
    store: BlockStore,
    data: Sequence[tuple[Rect, Any]],
    fanout: int,
    order: int = DEFAULT_ORDER,
) -> RTree:
    """Packed Hilbert R-tree (H): sort centers along the Hilbert curve."""
    return _build_by_key(
        store,
        data,
        fanout,
        lambda rect, bounds: hilbert_key_for_center(rect, bounds, order),
        order,
    )


def build_hilbert4(
    store: BlockStore,
    data: Sequence[tuple[Rect, Any]],
    fanout: int,
    order: int = DEFAULT_ORDER,
) -> RTree:
    """Four-dimensional Hilbert R-tree (H4): sort corner points."""
    return _build_by_key(
        store,
        data,
        fanout,
        lambda rect, bounds: hilbert_key_for_corners(rect, bounds, order),
        order,
    )


# ----------------------------------------------------------------------
# External loaders
# ----------------------------------------------------------------------


def _external_bounds(stream: BlockStream) -> Rect:
    """One scan computing the dataset MBR."""
    bounds: Rect | None = None
    for rect, _ in stream:
        bounds = rect if bounds is None else bounds.union(rect)
    if bounds is None:
        raise ValueError("cannot bulk-load an empty stream externally")
    return bounds


def _pack_stream_bottom_up(
    store: BlockStore,
    sorted_stream: BlockStream,
    tree: RTree,
    fanout: int,
    register: bool,
) -> None:
    """Pack a key-sorted stream of records into the tree, level by level.

    The leaf pass reads the sorted data once and writes one node block per
    ``fanout`` records while spooling ``(mbr, block_id)`` records to a
    level stream; upper passes repeat on the level streams.  Memory use is
    one block of records plus one node — honest external packing.
    """
    level_writer = StreamWriter(store, sorted_stream.block_records)
    buffer: list[tuple[Rect, int]] = []

    def flush_leaf() -> None:
        nonlocal buffer
        if buffer:
            block_id = store.allocate(Node(is_leaf=True, entries=buffer))
            level_writer.append((mbr_of(r for r, _ in buffer), block_id))
            buffer = []

    for item in sorted_stream:
        rect, value = item[1], item[2]
        oid = tree.register_object(value) if register else value
        buffer.append((rect, oid))
        if len(buffer) == fanout:
            flush_leaf()
    flush_leaf()
    level = level_writer.finish()
    height = 1

    while len(level) > 1:
        next_writer = StreamWriter(store, level.block_records)
        node_entries: list[tuple[Rect, int]] = []

        def flush_node() -> None:
            nonlocal node_entries
            if node_entries:
                block_id = store.allocate(Node(is_leaf=False, entries=node_entries))
                next_writer.append(
                    (mbr_of(r for r, _ in node_entries), block_id)
                )
                node_entries = []

        for entry in level:
            node_entries.append(entry)
            if len(node_entries) == fanout:
                flush_node()
        flush_node()
        level.free()
        level = next_writer.finish()
        height += 1

    [(root_mbr, root_id)] = level.read_all()
    level.free()
    tree.root_id = root_id
    tree.height = height


def _build_external_by_key(
    store: BlockStore,
    input_stream: BlockStream,
    fanout: int,
    memory: MemoryModel,
    key: KeyFunction,
) -> tuple[RTree, BuildStats]:
    """Scan (compute keys) → external sort → pack: the H/H4 pipeline."""
    before = store.counters.snapshot()

    def run() -> RTree:
        if len(input_stream) == 0:
            tree = RTree(store, root_id=-1, dim=2, fanout=fanout, height=1, size=0)
            tree.root_id = store.allocate(Node(is_leaf=True))
            return tree
        dim = None
        bounds = _external_bounds(input_stream)
        # Decorating scan: attach the Hilbert key so the sort comparator is
        # a plain tuple lookup.
        writer = StreamWriter(store, input_stream.block_records)
        for rect, value in input_stream:
            if dim is None:
                dim = rect.dim
            writer.append((key(rect, bounds), rect, value))
        decorated = writer.finish()
        sorted_stream = external_sort(
            decorated, key=lambda item: item[0], memory=memory, free_input=True
        )
        tree = RTree(
            store,
            root_id=-1,
            dim=dim if dim is not None else 2,
            fanout=fanout,
            height=1,
            size=len(input_stream),
        )
        _pack_stream_bottom_up(store, sorted_stream, tree, fanout, register=True)
        sorted_stream.free()
        return tree

    tree, seconds = timed(run)
    io = store.counters.snapshot() - before
    return tree, BuildStats(io=io, cpu_seconds=seconds, levels=tree.height)


def build_hilbert_external(
    store: BlockStore,
    input_stream: BlockStream,
    fanout: int,
    memory: MemoryModel,
    order: int = DEFAULT_ORDER,
) -> tuple[RTree, BuildStats]:
    """External packed Hilbert load with I/O accounting."""
    return _build_external_by_key(
        store,
        input_stream,
        fanout,
        memory,
        lambda rect, bounds: hilbert_key_for_center(rect, bounds, order),
    )


def build_hilbert4_external(
    store: BlockStore,
    input_stream: BlockStream,
    fanout: int,
    memory: MemoryModel,
    order: int = DEFAULT_ORDER,
) -> tuple[RTree, BuildStats]:
    """External four-dimensional Hilbert load with I/O accounting."""
    return _build_external_by_key(
        store,
        input_stream,
        fanout,
        memory,
        lambda rect, bounds: hilbert_key_for_corners(rect, bounds, order),
    )
