"""A real on-disk block store: one file, fixed-size byte blocks.

Where :class:`~repro.iomodel.blockstore.BlockStore` *simulates* the
paper's disk (payloads stay decoded Python objects), this store **is**
one: every block is ``block_size`` raw bytes at a fixed offset in a
single index file, written through the OS like the paper's 36 GB SCSI
disk held its R-trees.  The API surface and the
:class:`~repro.iomodel.counters.IOCounters` accounting are identical to
the simulated store — one counted I/O per ``read``/``write``/``allocate``,
free of charge for ``peek`` and ``free`` — so any experiment keeps its
reported numbers when moved onto a file.

File layout (little-endian)::

    header:  magic "FBS1" | u16 version | u32 block_size
             | u64 n_blocks (high-water) | u64 freelist_head
             | u64 live_count | u32 meta_len | meta bytes
             (fixed HEADER_REGION bytes; meta is application-owned,
             e.g. the packed-tree descriptor written by repro.storage.paged)
    blocks:  block i at offset HEADER_REGION + i * block_size

Freed blocks form an intrusive freelist: the first 8 bytes of a free
block hold the id of the next free block (``_NIL`` terminates), and the
header stores the head.  ``allocate`` pops the freelist before extending
the file, so a workload that frees and reallocates stays compact on
disk — unlike the simulated store, which never reuses addresses because
address reuse would confuse its sequential-access classification of
freshly written streams.

The store is thread-safe: a single lock serializes file access, which is
what lets a :class:`~repro.server.QueryServer` execute batches over
shared tree handles from several worker threads — and what the async
serving layer's overlapping read batches rely on.

Opening with ``mmap=True`` maps the file and serves every block access
from the mapping instead of ``seek``+``read`` pairs: one slice of the
page cache per block, no buffered-I/O bookkeeping, noticeably less
Python overhead on the hot paged-read path under concurrency.  The
:class:`~repro.iomodel.counters.IOCounters` accounting is unchanged —
logical I/O is what the *caller* did, not how the bytes arrived.  A
writable mapped store routes writes through the mapping too (growing
the file with ``ftruncate`` + ``mmap.resize``), so the mapping and the
file never disagree.
"""

from __future__ import annotations

import io
import mmap as mmaplib
import os
import pathlib
import struct
import threading
from typing import Iterator

from repro.iomodel.blockstore import DEFAULT_BLOCK_SIZE, FreedBlockError
from repro.iomodel.counters import IOCounters
from repro.iomodel.store import BlockId
from repro.obs.tap import active_tap

__all__ = ["FileBlockStore", "StorageError", "HEADER_REGION"]

_MAGIC = b"FBS1"
_VERSION = 1
_HEADER = "<4sHIQQQI"
_HEADER_BYTES = struct.calcsize(_HEADER)
#: Fixed room reserved at the file start for the header + metadata, so
#: block offsets are independent of the block size.
HEADER_REGION = 4096
#: Maximum application metadata bytes the header region can hold.
META_CAPACITY = HEADER_REGION - _HEADER_BYTES
#: Freelist terminator.
_NIL = 2**64 - 1


class StorageError(ValueError):
    """The index file is missing, malformed, or inconsistent."""


class FileBlockStore:
    """Fixed-size byte blocks in a single file, with I/O accounting.

    Construct with :meth:`create` (new file) or :meth:`open` (existing
    file); both return a store that should be :meth:`close`-d — or used
    as a context manager — so the header hits the disk.

    Payloads are ``bytes`` of at most :attr:`block_size` (shorter
    payloads are zero-padded; reads always return exactly one block).
    """

    def __init__(
        self,
        file: io.BufferedRandom | io.BytesIO,
        path: pathlib.Path | None,
        block_size: int,
        n_blocks: int,
        freelist_head: int,
        freed: set[BlockId],
        meta: bytes,
        counters: IOCounters | None,
    ) -> None:
        self._file = file
        self.path = path
        self.block_size = block_size
        self.counters = counters if counters is not None else IOCounters()
        self._n_blocks = n_blocks
        self._freelist_head = freelist_head
        self._freed = freed
        self._meta = meta
        self._lock = threading.Lock()
        self._closed = False
        self._readonly = False
        self._map: mmaplib.mmap | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | os.PathLike | None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        meta: bytes = b"",
        counters: IOCounters | None = None,
    ) -> "FileBlockStore":
        """Create a fresh index file (truncating any existing file).

        ``path=None`` backs the store with an in-memory buffer — handy
        for tests that want the byte-exact format without touching the
        filesystem.
        """
        if block_size < 8:
            # The intrusive freelist stores a u64 in freed blocks.
            raise ValueError("block_size must be at least 8 bytes")
        if len(meta) > META_CAPACITY:
            raise ValueError(
                f"metadata is {len(meta)} bytes, header region holds "
                f"{META_CAPACITY}"
            )
        if path is None:
            file: io.BufferedRandom | io.BytesIO = io.BytesIO()
            resolved = None
        else:
            resolved = pathlib.Path(path)
            file = open(resolved, "w+b")
        store = cls(
            file,
            resolved,
            block_size,
            n_blocks=0,
            freelist_head=_NIL,
            freed=set(),
            meta=bytes(meta),
            counters=counters,
        )
        store._write_header()
        return store

    @classmethod
    def open(
        cls,
        path: str | os.PathLike,
        counters: IOCounters | None = None,
        readonly: bool = False,
        mmap: bool = False,
    ) -> "FileBlockStore":
        """Open an existing index file, rebuilding the freelist.

        ``mmap=True`` maps the file and serves block reads (and, when
        writable, writes) from the mapping — same accounting, less
        per-access Python overhead on hot read paths.
        """
        resolved = pathlib.Path(path)
        if not resolved.exists():
            raise StorageError(f"no index file at {resolved}")
        file = open(resolved, "rb" if readonly else "r+b")
        try:
            header = file.read(_HEADER_BYTES)
            if len(header) < _HEADER_BYTES:
                raise StorageError(f"{resolved} is shorter than the header")
            magic, version, block_size, n_blocks, head, live, meta_len = (
                struct.unpack(_HEADER, header)
            )
            if magic != _MAGIC:
                raise StorageError(f"{resolved}: bad magic {magic!r}")
            if version != _VERSION:
                raise StorageError(
                    f"{resolved}: unsupported version {version}"
                )
            if block_size < 8:
                raise StorageError(
                    f"{resolved}: impossible block size {block_size}"
                )
            if meta_len > META_CAPACITY:
                raise StorageError(f"{resolved}: metadata length {meta_len}")
            meta = file.read(meta_len)
            if len(meta) < meta_len:
                raise StorageError(f"{resolved}: truncated metadata")
            expected = HEADER_REGION + n_blocks * block_size
            file.seek(0, os.SEEK_END)
            if file.tell() < expected:
                raise StorageError(
                    f"{resolved} is {file.tell()} bytes, header promises "
                    f"{expected}"
                )
            # Walk the freelist chain to learn which blocks are free.
            freed: set[BlockId] = set()
            cursor = head
            while cursor != _NIL:
                if cursor >= n_blocks or cursor in freed:
                    raise StorageError(
                        f"{resolved}: corrupt freelist at block {cursor}"
                    )
                freed.add(cursor)
                file.seek(HEADER_REGION + cursor * block_size)
                (cursor,) = struct.unpack("<Q", file.read(8))
            if len(freed) != n_blocks - live:
                raise StorageError(
                    f"{resolved}: freelist has {len(freed)} blocks, header "
                    f"promises {n_blocks - live}"
                )
        except Exception:
            file.close()
            raise
        store = cls(
            file,
            resolved,
            block_size,
            n_blocks=n_blocks,
            freelist_head=head,
            freed=freed,
            meta=meta,
            counters=counters,
        )
        store._readonly = readonly
        if mmap:
            store._map = mmaplib.mmap(
                file.fileno(),
                0,
                access=(
                    mmaplib.ACCESS_READ if readonly else mmaplib.ACCESS_WRITE
                ),
            )
        return store

    # ------------------------------------------------------------------
    # Header and metadata
    # ------------------------------------------------------------------

    def _write_header(self) -> None:
        header = struct.pack(
            _HEADER,
            _MAGIC,
            _VERSION,
            self.block_size,
            self._n_blocks,
            self._freelist_head,
            self._n_blocks - len(self._freed),
            len(self._meta),
        )
        # Pad the whole region so block 0 always starts at HEADER_REGION.
        self._pwrite(0, (header + self._meta).ljust(HEADER_REGION, b"\x00"))

    @property
    def metadata(self) -> bytes:
        """Application-owned metadata stored in the header region."""
        return self._meta

    @property
    def readonly(self) -> bool:
        """True when the file was opened without write access."""
        return self._readonly

    @property
    def mmapped(self) -> bool:
        """True when block access is served from a memory mapping."""
        return self._map is not None

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def set_metadata(self, meta: bytes, persist: bool = True) -> None:
        """Replace the metadata (persisted immediately by default).

        ``persist=False`` only stages the bytes; the next
        :meth:`flush`/:meth:`close` writes them — callers that flush
        right after (e.g. a paged tree's ``sync``) avoid writing the
        header region twice.
        """
        if len(meta) > META_CAPACITY:
            raise ValueError(
                f"metadata is {len(meta)} bytes, header region holds "
                f"{META_CAPACITY}"
            )
        with self._lock:
            self._check_writable()
            self._meta = bytes(meta)
            if persist:
                self._write_header()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def _offset(self, block_id: BlockId) -> int:
        return HEADER_REGION + block_id * self.block_size

    # -- physical access (file or mapping) -----------------------------

    def _file_size(self) -> int:
        if self._map is not None:
            return len(self._map)
        self._file.seek(0, os.SEEK_END)
        return self._file.tell()

    def _ensure_capacity(self, end: int) -> None:
        """Grow the mapped file so offsets below ``end`` are addressable.

        Only needed under mmap: a plain file extends implicitly when
        written past EOF, a mapping must be resized explicitly.  Grows
        straight to ``end`` — allocation is block-at-a-time and mostly
        sequential, so remaps are one per appended block either way.
        """
        if self._map is not None and end > len(self._map):
            os.ftruncate(self._file.fileno(), end)
            self._map.resize(end)

    def _pread(self, offset: int, n: int) -> bytes:
        """Read ``n`` bytes at ``offset`` (may return short at EOF)."""
        if self._map is not None:
            return bytes(self._map[offset : offset + n])
        self._file.seek(offset)
        return self._file.read(n)

    def _pwrite(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, extending the file if needed."""
        if self._map is not None:
            self._ensure_capacity(offset + len(data))
            self._map[offset : offset + len(data)] = data
            return
        self._file.seek(offset)
        self._file.write(data)

    def _pad(self, payload: bytes | None) -> bytes:
        if payload is None:
            payload = b""
        if len(payload) > self.block_size:
            raise ValueError(
                f"payload is {len(payload)} bytes, blocks hold "
                f"{self.block_size}"
            )
        return payload.ljust(self.block_size, b"\x00")

    def _check_writable(self) -> None:
        if self._readonly:
            raise StorageError(f"{self.path} was opened read-only")

    def _claim_locked(self) -> BlockId:
        """Claim the next block address: freelist pop before file growth."""
        if self._freelist_head != _NIL:
            block_id = self._freelist_head
            (self._freelist_head,) = struct.unpack(
                "<Q", self._pread(self._offset(block_id), 8)
            )
            self._freed.discard(block_id)
        else:
            block_id = self._n_blocks
            self._n_blocks += 1
        return block_id

    def allocate(self, payload: bytes | None = None) -> BlockId:
        """Allocate a block and write ``payload``, counting one write.

        Freed blocks are reused (freelist pop) before the file grows.
        """
        data = self._pad(payload)
        tap = active_tap()
        with self._lock:
            self._check_writable()
            block_id = self._claim_locked()
            self._pwrite(self._offset(block_id), data)
            self.counters.record_write(block_id)
            if tap is not None:
                tap.writes += 1
        return block_id

    def reserve(self) -> BlockId:
        """Claim a block address without writing any payload bytes.

        Pops the freelist (reusing freed space) before extending the
        file, exactly like :meth:`allocate`, but performs **no counted
        I/O**: the caller owns the block's bytes and writes them later —
        the write-back page layer reserves on ``allocate`` and only
        materializes the block when the dirty page is flushed.
        """
        with self._lock:
            self._check_writable()
            return self._claim_locked()

    def free(self, block_id: BlockId) -> None:
        """Release a block onto the freelist (metadata only, no I/O)."""
        with self._lock:
            self._check_writable()
            if block_id in self._freed:
                raise FreedBlockError(f"double free of block {block_id}")
            if not self._is_allocated(block_id):
                raise KeyError(f"block {block_id} is not allocated")
            self._pwrite(
                self._offset(block_id),
                struct.pack("<Q", self._freelist_head),
            )
            self._freelist_head = block_id
            self._freed.add(block_id)

    def _is_allocated(self, block_id: BlockId) -> bool:
        return 0 <= block_id < self._n_blocks and block_id not in self._freed

    def _check_live(self, block_id: BlockId) -> None:
        if block_id in self._freed:
            raise FreedBlockError(
                f"block {block_id} was freed (read-after-free)"
            )
        if not 0 <= block_id < self._n_blocks:
            raise KeyError(f"block {block_id} is not allocated")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def _read_bytes(self, block_id: BlockId) -> bytes:
        data = self._pread(self._offset(block_id), self.block_size)
        if len(data) < self.block_size:
            raise StorageError(
                f"short read at block {block_id}: file is truncated"
            )
        return data

    def read(self, block_id: BlockId) -> bytes:
        """Read one block of bytes, counting one I/O."""
        tap = active_tap()
        with self._lock:
            self._check_live(block_id)
            data = self._read_bytes(block_id)
            self.counters.record_read(block_id)
            if tap is not None:
                tap.reads += 1
        return data

    def write(self, block_id: BlockId, payload: bytes) -> None:
        """Overwrite a block in place, counting one I/O."""
        data = self._pad(payload)
        tap = active_tap()
        with self._lock:
            self._check_writable()
            self._check_live(block_id)
            self._pwrite(self._offset(block_id), data)
            self.counters.record_write(block_id)
            if tap is not None:
                tap.writes += 1

    def write_back(self, block_id: BlockId, payload: bytes) -> None:
        """Physically write a block *without* counting I/O.

        The flush half of the dirty-page write-back protocol: the
        logical write was already counted when the page was dirtied, so
        materializing it here must not count again.  Physical write
        traffic is reported by the page layer
        (:class:`~repro.storage.paged.PageCacheStats`).
        """
        data = self._pad(payload)
        with self._lock:
            self._check_writable()
            self._check_live(block_id)
            self._pwrite(self._offset(block_id), data)

    def peek(self, block_id: BlockId) -> bytes:
        """Read a block *without* counting I/O (validation/debugging)."""
        with self._lock:
            self._check_live(block_id)
            return self._read_bytes(block_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of live (allocated, not freed) blocks."""
        return self._n_blocks - len(self._freed)

    def __contains__(self, block_id: BlockId) -> bool:
        return self._is_allocated(block_id)

    def block_ids(self) -> Iterator[BlockId]:
        """Iterate live block addresses in address order."""
        return (
            bid for bid in range(self._n_blocks) if bid not in self._freed
        )

    @property
    def allocated_ever(self) -> int:
        """Total blocks ever allocated (high-water address)."""
        return self._n_blocks

    def bytes_used(self) -> int:
        """Live blocks times block size — the on-disk data footprint."""
        return len(self) * self.block_size

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Persist the header and push buffered writes to the OS."""
        with self._lock:
            if not self._readonly:
                self._write_header()
                # A reserved-then-freed block may never have been
                # written; pad the file to the length the header
                # promises so reopening always validates.
                expected = HEADER_REGION + self._n_blocks * self.block_size
                if self._file_size() < expected:
                    self._pwrite(expected - 1, b"\x00")
                if self._map is not None:
                    self._map.flush()
                self._file.flush()

    def close(self) -> None:
        """Flush and close the backing file (idempotent)."""
        if self._closed:
            return
        self.flush()
        if self._map is not None:
            self._map.close()
            self._map = None
        self._file.close()
        self._closed = True

    def __enter__(self) -> "FileBlockStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        where = self.path if self.path is not None else "<memory>"
        return (
            f"FileBlockStore({where}, block_size={self.block_size}, "
            f"live={len(self)}, {self.counters!r})"
        )
