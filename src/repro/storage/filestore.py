"""A real on-disk block store: one file, fixed-size byte blocks.

Where :class:`~repro.iomodel.blockstore.BlockStore` *simulates* the
paper's disk (payloads stay decoded Python objects), this store **is**
one: every block is ``block_size`` raw bytes at a fixed offset in a
single index file, written through the OS like the paper's 36 GB SCSI
disk held its R-trees.  The API surface and the
:class:`~repro.iomodel.counters.IOCounters` accounting are identical to
the simulated store — one counted I/O per ``read``/``write``/``allocate``,
free of charge for ``peek`` and ``free`` — so any experiment keeps its
reported numbers when moved onto a file.

Crash safety: shadow paging + a shadow header
---------------------------------------------

The store separates the **logical** block addresses the tree layer
holds (stable for the life of a block) from the **physical** slots the
bytes live in.  A logical write never overwrites the physical slot a
committed epoch depends on: it lands in a freshly claimed slot, and the
logical → physical map is updated in memory.  :meth:`flush` is the
atomic commit point — it writes the new map to fresh slots, forces the
data down, then publishes everything with a *single* checksummed
header-slot write (see below).  Superseded physical slots are
reclaimed only **after** that flip, so a crash anywhere — including a
torn header write — leaves the previous committed state fully intact
and reachable.

File layout (little-endian)::

    header region (HEADER_REGION = 4096 bytes):
        slot 0 at offset    0   (HEADER_SLOT = 2048 bytes)
        slot 1 at offset 2048   (HEADER_SLOT bytes)
    blocks: physical slot p at offset HEADER_REGION + p * block_size

    each header slot:
        magic "FBS2" | u16 version | u32 block_size | u64 epoch
        | u64 n_logical | u64 freelist_head | u64 live_count
        | u64 phys_high | u64 map_index | u32 meta_len | meta bytes
        | zero padding | u32 crc32 of the preceding 2044 bytes

A commit with epoch E writes slot ``E % 2``, so the two slots always
hold the two most recent commits; open validates both checksums and
loads the highest valid epoch (ties break to the higher slot index,
which cannot happen for well-formed files but keeps open total).  The
logical → physical map is stored in ordinary blocks, rewritten to
*fresh* slots each commit and chained from the header's ``map_index``:
index blocks hold ``block_size/8 - 1`` pointers to map-data blocks plus
a trailing next-pointer (``2^64-1`` terminates); map-data blocks hold
``block_size/8`` entries, one ``u64`` per logical id.  A live entry is
the physical slot (with ``2^63-1`` meaning *reserved but never
written*: reads return zeros); an entry with bit 63 set is freed, and
its low 63 bits chain the logical freelist (all-ones terminates), so
``allocate`` still pops freed addresses before extending — the
simulated store's compactness property survives the indirection.

Files written by the pre-shadow ``FBS1`` format (single header, blocks
addressed directly, intrusive on-disk freelist) still open: the legacy
header and freelist are parsed into an identity map, and the first
commit migrates the file to ``FBS2`` (the legacy header bytes are only
overwritten by the *second* commit, so a crash mid-migration still
recovers through the legacy path).

The store is thread-safe: a single lock serializes file access, which is
what lets a :class:`~repro.server.QueryServer` execute batches over
shared tree handles from several worker threads — and what the async
serving layer's overlapping read batches rely on.

Opening with ``mmap=True`` maps the file and serves every block access
from the mapping instead of ``seek``+``read`` pairs: one slice of the
page cache per block, no buffered-I/O bookkeeping, noticeably less
Python overhead on the hot paged-read path under concurrency.  The
:class:`~repro.iomodel.counters.IOCounters` accounting is unchanged —
logical I/O is what the *caller* did, not how the bytes arrived.  A
writable mapped store routes writes through the mapping too (growing
the file with ``ftruncate`` + ``mmap.resize``), so the mapping and the
file never disagree.

For crash testing, a :class:`~repro.storage.faults.FaultInjector` can
be attached at :meth:`create`/:meth:`open`: every physical write is
then filtered through it, and a scripted
:class:`~repro.storage.faults.SimulatedCrash` freezes the store (no
further writes, including on ``close``) exactly like a killed process.
"""

from __future__ import annotations

import io
import mmap as mmaplib
import os
import pathlib
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.iomodel.blockstore import DEFAULT_BLOCK_SIZE, FreedBlockError
from repro.iomodel.counters import IOCounters
from repro.iomodel.store import BlockId
from repro.obs.tap import active_tap
from repro.storage.faults import FaultInjector, SimulatedCrash

__all__ = [
    "FileBlockStore",
    "StorageError",
    "RecoveryInfo",
    "HEADER_REGION",
    "HEADER_SLOT",
]

_MAGIC = b"FBS2"
_VERSION = 2
#: Per-slot header prefix: magic, version, block_size, epoch, n_logical,
#: freelist_head, live_count, phys_high, map_index, meta_len.
_SLOT_STRUCT = "<4sHIQQQQQQI"
_SLOT_BYTES = struct.calcsize(_SLOT_STRUCT)

_LEGACY_MAGIC = b"FBS1"
_LEGACY_VERSION = 1
_LEGACY_HEADER = "<4sHIQQQI"
_LEGACY_HEADER_BYTES = struct.calcsize(_LEGACY_HEADER)
_LEGACY_META_CAPACITY = 4096 - _LEGACY_HEADER_BYTES

#: Fixed room reserved at the file start for the two header slots, so
#: block offsets are independent of the block size (and unchanged from
#: the legacy format).
HEADER_REGION = 4096
#: Each of the two alternating header slots, checksummed independently.
HEADER_SLOT = HEADER_REGION // 2
#: Maximum application metadata bytes one header slot can hold.
META_CAPACITY = HEADER_SLOT - _SLOT_BYTES - 4

#: Freelist / map-chain terminator.
_NIL = 2**64 - 1
#: Map entry bit marking a freed logical block (low 63 bits chain the
#: logical freelist; all-ones low bits terminate the chain).
_FREE_BIT = 1 << 63
_FREE_MASK = _FREE_BIT - 1
#: Live map entry meaning "address reserved, no bytes ever written".
_UNWRITTEN = _FREE_MASK


class StorageError(ValueError):
    """The index file is missing, malformed, or inconsistent."""


class _SlotError(ValueError):
    """One header slot failed validation (the other may still be good)."""


@dataclass(frozen=True)
class RecoveryInfo:
    """What :meth:`FileBlockStore.open` recovered, for observability.

    ``header_slot`` is the slot index the committed state was loaded
    from (``-1`` for a legacy ``FBS1`` file).  ``rolled_back_blocks``
    counts physical blocks found in the file beyond the committed
    extent — the debris of an uncommitted epoch a crash abandoned.
    ``discarded_epoch`` is set when ``at_epoch`` deliberately skipped a
    newer valid commit (sharded-family rollback).
    """

    epoch: int
    header_slot: int
    rolled_back_blocks: int
    legacy: bool = False
    discarded_epoch: int | None = None


class FileBlockStore:
    """Fixed-size byte blocks in a single file, with I/O accounting.

    Construct with :meth:`create` (new file) or :meth:`open` (existing
    file); both return a store that should be :meth:`close`-d — or used
    as a context manager — so the final commit hits the disk.

    Payloads are ``bytes`` of at most :attr:`block_size` (shorter
    payloads are zero-padded; reads always return exactly one block).
    Block ids handed out are **logical** addresses: stable across
    commits even though the bytes migrate between physical slots.
    """

    def __init__(
        self,
        file: io.BufferedRandom | io.BytesIO,
        path: pathlib.Path | None,
        block_size: int,
        meta: bytes,
        counters: IOCounters | None,
        injector: FaultInjector | None = None,
    ) -> None:
        self._file = file
        self.path = path
        self.block_size = block_size
        self.counters = counters if counters is not None else IOCounters()
        self._meta = meta
        self._injector = injector
        self._lock = threading.Lock()
        self._closed = False
        self._readonly = False
        self._crashed = False
        self._map: mmaplib.mmap | None = None
        # Committed state (create/open overwrite for non-empty files).
        self._l2p: list[int] = []
        self._freelist_head = _NIL
        self._freed_count = 0
        self._phys_high = 0
        self._map_chain: list[int] = []
        self._epoch = 0
        self._legacy = False
        # Uncommitted-epoch bookkeeping.
        self._phys_free: list[int] = []
        self._phys_pending: list[int] = []
        self._fresh_phys: set[int] = set()
        self._dirty = False
        self.recovery = RecoveryInfo(epoch=0, header_slot=0, rolled_back_blocks=0)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | os.PathLike | None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        meta: bytes = b"",
        counters: IOCounters | None = None,
        injector: FaultInjector | None = None,
    ) -> "FileBlockStore":
        """Create a fresh index file (truncating any existing file).

        ``path=None`` backs the store with an in-memory buffer — handy
        for tests that want the byte-exact format without touching the
        filesystem.
        """
        if block_size < 16:
            # A map block must hold at least one u64 entry plus the
            # chain's u64 next-pointer.
            raise ValueError("block_size must be at least 16 bytes")
        if len(meta) > META_CAPACITY:
            raise ValueError(
                f"metadata is {len(meta)} bytes, header slot holds "
                f"{META_CAPACITY}"
            )
        if path is None:
            file: io.BufferedRandom | io.BytesIO = io.BytesIO()
            resolved = None
        else:
            resolved = pathlib.Path(path)
            file = open(resolved, "w+b")
        store = cls(file, resolved, block_size, bytes(meta), counters, injector)
        # Epoch 0 is the empty store: commit it to slot 0 so the file is
        # openable from the moment it exists.
        store._write_slot_locked(0, _NIL)
        store._raw_pwrite(HEADER_REGION - 1, b"\x00")
        return store

    @classmethod
    def open(
        cls,
        path: str | os.PathLike,
        counters: IOCounters | None = None,
        readonly: bool = False,
        mmap: bool = False,
        injector: FaultInjector | None = None,
        at_epoch: int | None = None,
    ) -> "FileBlockStore":
        """Open an existing index file at its last committed state.

        Both header slots are checksum-validated and the highest valid
        epoch wins — a crash mid-commit (even a torn header write)
        rolls back to the previous commit.  ``at_epoch`` pins the open
        to a specific committed epoch instead (the slots retain the two
        most recent); the sharded layer uses it to roll a whole family
        back to the epochs its manifest named.  ``mmap=True`` maps the
        file and serves block reads (and, when writable, writes) from
        the mapping — same accounting, less per-access Python overhead
        on hot read paths.
        """
        resolved = pathlib.Path(path)
        if not resolved.exists():
            raise StorageError(f"no index file at {resolved}")
        file = open(resolved, "rb" if readonly else "r+b")
        try:
            region = file.read(HEADER_REGION)
            if len(region) < HEADER_REGION:
                raise StorageError(f"{resolved} is shorter than the header")
            slots: dict[int, dict] = {}
            reasons: dict[int, str] = {}
            for idx in (0, 1):
                try:
                    slots[idx] = cls._parse_slot(region, idx)
                except _SlotError as exc:
                    reasons[idx] = str(exc)
            if slots:
                store = cls._open_v2(
                    file, resolved, slots, at_epoch, counters, injector
                )
            elif region[:4] == _LEGACY_MAGIC:
                if at_epoch is not None:
                    raise StorageError(
                        f"{resolved}: no committed epoch {at_epoch} "
                        f"(legacy pre-shadow file)"
                    )
                store = cls._open_legacy(
                    file, resolved, region, readonly, counters, injector
                )
            elif _MAGIC in (region[:4], region[HEADER_SLOT : HEADER_SLOT + 4]):
                raise StorageError(
                    f"{resolved}: no valid header slot "
                    f"(slot 0: {reasons[0]}; slot 1: {reasons[1]})"
                )
            else:
                raise StorageError(f"{resolved}: bad magic {region[:4]!r}")
        except Exception:
            file.close()
            raise
        store._readonly = readonly
        if mmap:
            store._map = mmaplib.mmap(
                file.fileno(),
                0,
                access=(
                    mmaplib.ACCESS_READ if readonly else mmaplib.ACCESS_WRITE
                ),
            )
        return store

    # -- header-slot parsing -------------------------------------------

    @staticmethod
    def _parse_slot(region: bytes, idx: int) -> dict:
        """Validate one header slot, returning its fields or raising
        :class:`_SlotError` with the reason it cannot be trusted."""
        slot = region[idx * HEADER_SLOT : (idx + 1) * HEADER_SLOT]
        if slot[:4] != _MAGIC:
            raise _SlotError(f"no {_MAGIC.decode()} magic")
        (stored_crc,) = struct.unpack_from("<I", slot, HEADER_SLOT - 4)
        if zlib.crc32(slot[: HEADER_SLOT - 4]) != stored_crc:
            raise _SlotError("bad checksum (torn or corrupt header write)")
        (
            _magic,
            version,
            block_size,
            epoch,
            n_logical,
            freelist_head,
            live_count,
            phys_high,
            map_index,
            meta_len,
        ) = struct.unpack_from(_SLOT_STRUCT, slot)
        if version != _VERSION:
            raise _SlotError(f"unsupported version {version}")
        if block_size < 16:
            raise _SlotError(f"impossible block size {block_size}")
        if meta_len > META_CAPACITY:
            raise _SlotError(f"metadata length {meta_len}")
        if epoch % 2 != idx:
            raise _SlotError(f"epoch {epoch} in wrong slot")
        if live_count > n_logical:
            raise _SlotError(
                f"live count {live_count} exceeds {n_logical} blocks"
            )
        return {
            "slot": idx,
            "block_size": block_size,
            "epoch": epoch,
            "n_logical": n_logical,
            "freelist_head": freelist_head,
            "live_count": live_count,
            "phys_high": phys_high,
            "map_index": map_index,
            "meta": slot[_SLOT_BYTES : _SLOT_BYTES + meta_len],
        }

    @classmethod
    def _open_v2(
        cls,
        file,
        resolved: pathlib.Path,
        slots: dict[int, dict],
        at_epoch: int | None,
        counters: IOCounters | None,
        injector: FaultInjector | None,
    ) -> "FileBlockStore":
        if at_epoch is not None:
            matching = [s for s in slots.values() if s["epoch"] == at_epoch]
            if not matching:
                have = sorted(s["epoch"] for s in slots.values())
                raise StorageError(
                    f"{resolved}: no committed epoch {at_epoch} in header "
                    f"slots (have {have})"
                )
            chosen = matching[0]
        else:
            chosen = max(
                slots.values(), key=lambda s: (s["epoch"], s["slot"])
            )
        discarded = max(
            (
                s["epoch"]
                for s in slots.values()
                if s["epoch"] > chosen["epoch"]
            ),
            default=None,
        )
        block_size = chosen["block_size"]
        phys_high = chosen["phys_high"]
        expected = HEADER_REGION + phys_high * block_size
        file.seek(0, os.SEEK_END)
        actual = file.tell()
        if actual < expected:
            raise StorageError(
                f"{resolved} is {actual} bytes, header promises {expected}"
            )
        l2p, chain, used_phys = cls._load_map(
            file, resolved, chosen, block_size
        )
        # Cross-check the logical freelist chained through the map.
        live = sum(1 for e in l2p if not (e & _FREE_BIT))
        if live != chosen["live_count"]:
            raise StorageError(
                f"{resolved}: block map has {live} live blocks, header "
                f"promises {chosen['live_count']}"
            )
        walked = 0
        cursor = chosen["freelist_head"]
        seen_free: set[int] = set()
        while cursor != _NIL:
            if (
                cursor >= len(l2p)
                or cursor in seen_free
                or not (l2p[cursor] & _FREE_BIT)
            ):
                raise StorageError(
                    f"{resolved}: corrupt freelist at block {cursor}"
                )
            seen_free.add(cursor)
            walked += 1
            nxt = l2p[cursor] & _FREE_MASK
            cursor = _NIL if nxt == _FREE_MASK else nxt
        if walked != len(l2p) - live:
            raise StorageError(
                f"{resolved}: freelist has {walked} blocks, header "
                f"promises {len(l2p) - live}"
            )
        store = cls(
            file, resolved, block_size, chosen["meta"], counters, injector
        )
        store._l2p = l2p
        store._freelist_head = chosen["freelist_head"]
        store._freed_count = len(l2p) - live
        store._phys_high = phys_high
        store._map_chain = chain
        store._epoch = chosen["epoch"]
        store._phys_free = sorted(
            set(range(phys_high)) - used_phys - set(chain), reverse=True
        )
        store.recovery = RecoveryInfo(
            epoch=chosen["epoch"],
            header_slot=chosen["slot"],
            rolled_back_blocks=max(
                0, (actual - HEADER_REGION) // block_size - phys_high
            ),
            discarded_epoch=discarded,
        )
        return store

    @staticmethod
    def _load_map(
        file, resolved: pathlib.Path, chosen: dict, block_size: int
    ) -> tuple[list[int], list[int], set[int]]:
        """Read the committed logical → physical map off disk.

        Returns the map entries, the physical chain that stores them,
        and the set of physical slots live map entries point at.
        """
        epb = block_size // 8  # u64 entries per block
        n_logical = chosen["n_logical"]
        phys_high = chosen["phys_high"]
        n_data = (n_logical + epb - 1) // epb
        chain: list[int] = []
        seen: set[int] = set()
        data_ptrs: list[int] = []
        cursor = chosen["map_index"]
        while cursor != _NIL and len(data_ptrs) < n_data:
            if cursor >= phys_high or cursor in seen:
                raise StorageError(
                    f"{resolved}: corrupt map chain at block {cursor}"
                )
            seen.add(cursor)
            chain.append(cursor)
            file.seek(HEADER_REGION + cursor * block_size)
            raw = file.read(block_size)
            if len(raw) < block_size:
                raise StorageError(
                    f"{resolved}: truncated map block {cursor}"
                )
            ptrs = struct.unpack_from(f"<{epb}Q", raw)
            take = min(epb - 1, n_data - len(data_ptrs))
            data_ptrs.extend(ptrs[:take])
            cursor = ptrs[epb - 1]
        if len(data_ptrs) != n_data:
            raise StorageError(
                f"{resolved}: map chain holds {len(data_ptrs)} of "
                f"{n_data} map blocks"
            )
        l2p: list[int] = []
        used_phys: set[int] = set()
        for k, ptr in enumerate(data_ptrs):
            if ptr >= phys_high or ptr in seen:
                raise StorageError(
                    f"{resolved}: corrupt map chain at block {ptr}"
                )
            seen.add(ptr)
            chain.append(ptr)
            file.seek(HEADER_REGION + ptr * block_size)
            raw = file.read(block_size)
            if len(raw) < block_size:
                raise StorageError(f"{resolved}: truncated map block {ptr}")
            count = min(epb, n_logical - k * epb)
            l2p.extend(struct.unpack_from(f"<{count}Q", raw))
        for logical, entry in enumerate(l2p):
            if entry & _FREE_BIT or entry == _UNWRITTEN:
                continue
            if entry >= phys_high or entry in used_phys:
                raise StorageError(
                    f"{resolved}: corrupt block map at block {logical}"
                )
            used_phys.add(entry)
        return l2p, chain, used_phys

    @classmethod
    def _open_legacy(
        cls,
        file,
        resolved: pathlib.Path,
        region: bytes,
        readonly: bool,
        counters: IOCounters | None,
        injector: FaultInjector | None,
    ) -> "FileBlockStore":
        """Open a pre-shadow ``FBS1`` file (single header, identity
        placement, intrusive on-disk freelist).

        The parsed state becomes an identity logical → physical map;
        the first commit migrates the file to ``FBS2``.  Physical slots
        the legacy freelist owns go to the *pending* pool, not the free
        pool: their first 8 bytes still chain the on-disk freelist, and
        a crash before the first v2 commit must leave that chain intact
        for the legacy reopen path.
        """
        (
            _magic,
            version,
            block_size,
            n_blocks,
            head,
            live,
            meta_len,
        ) = struct.unpack_from(_LEGACY_HEADER, region)
        if version != _LEGACY_VERSION:
            raise StorageError(f"{resolved}: unsupported version {version}")
        if block_size < 8:
            raise StorageError(
                f"{resolved}: impossible block size {block_size}"
            )
        if meta_len > _LEGACY_META_CAPACITY:
            raise StorageError(f"{resolved}: metadata length {meta_len}")
        meta = region[_LEGACY_HEADER_BYTES : _LEGACY_HEADER_BYTES + meta_len]
        if len(meta) < meta_len:
            raise StorageError(f"{resolved}: truncated metadata")
        if meta_len > META_CAPACITY and not readonly:
            raise StorageError(
                f"{resolved}: legacy metadata is {meta_len} bytes, a "
                f"shadow header slot holds {META_CAPACITY}; open read-only"
            )
        expected = HEADER_REGION + n_blocks * block_size
        file.seek(0, os.SEEK_END)
        actual = file.tell()
        if actual < expected:
            raise StorageError(
                f"{resolved} is {actual} bytes, header promises {expected}"
            )
        # Walk the legacy intrusive freelist in chain order.
        freed_order: list[int] = []
        seen: set[int] = set()
        cursor = head
        while cursor != _NIL:
            if cursor >= n_blocks or cursor in seen:
                raise StorageError(
                    f"{resolved}: corrupt freelist at block {cursor}"
                )
            seen.add(cursor)
            freed_order.append(cursor)
            file.seek(HEADER_REGION + cursor * block_size)
            (cursor,) = struct.unpack("<Q", file.read(8))
        if len(freed_order) != n_blocks - live:
            raise StorageError(
                f"{resolved}: freelist has {len(freed_order)} blocks, "
                f"header promises {n_blocks - live}"
            )
        l2p: list[int] = list(range(n_blocks))
        for pos, block_id in enumerate(freed_order):
            nxt = (
                freed_order[pos + 1]
                if pos + 1 < len(freed_order)
                else _FREE_MASK
            )
            l2p[block_id] = _FREE_BIT | nxt
        store = cls(file, resolved, block_size, meta, counters, injector)
        store._l2p = l2p
        store._freelist_head = head
        store._freed_count = len(freed_order)
        store._phys_high = n_blocks
        store._map_chain = []
        store._epoch = 0
        store._legacy = True
        store._phys_pending = list(freed_order)
        store.recovery = RecoveryInfo(
            epoch=0, header_slot=-1, rolled_back_blocks=0, legacy=True
        )
        return store

    # ------------------------------------------------------------------
    # Header and metadata
    # ------------------------------------------------------------------

    def _write_slot_locked(self, epoch: int, map_index: int) -> None:
        """Publish the current state as commit ``epoch`` — one write to
        the slot the epoch's parity selects, checksummed last 4 bytes."""
        body = struct.pack(
            _SLOT_STRUCT,
            _MAGIC,
            _VERSION,
            self.block_size,
            epoch,
            len(self._l2p),
            self._freelist_head,
            len(self._l2p) - self._freed_count,
            self._phys_high,
            map_index,
            len(self._meta),
        )
        slot = (body + self._meta).ljust(HEADER_SLOT - 4, b"\x00")
        slot += struct.pack("<I", zlib.crc32(slot))
        self._pwrite((epoch % 2) * HEADER_SLOT, slot)

    @property
    def metadata(self) -> bytes:
        """Application-owned metadata stored in the header slot."""
        return self._meta

    @property
    def readonly(self) -> bool:
        """True when the file was opened without write access."""
        return self._readonly

    @property
    def mmapped(self) -> bool:
        """True when block access is served from a memory mapping."""
        return self._map is not None

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    @property
    def crashed(self) -> bool:
        """True once an injected crash froze the store."""
        return self._crashed

    @property
    def commit_epoch(self) -> int:
        """The last committed epoch (0 for a fresh or legacy store)."""
        return self._epoch

    @property
    def dirty(self) -> bool:
        """True when uncommitted changes would be lost by a crash."""
        return self._dirty

    @property
    def pending_reclaim(self) -> tuple[int, ...]:
        """Physical slots superseded this epoch, reusable only after
        the next commit flips (the double-free/reuse-before-commit
        guard the crash tests pin down)."""
        return tuple(self._phys_pending)

    def set_metadata(self, meta: bytes, persist: bool = True) -> None:
        """Replace the metadata (committed immediately by default).

        ``persist=False`` only stages the bytes; the next
        :meth:`flush`/:meth:`close` commits them — callers that flush
        right after (e.g. a paged tree's ``sync``) get the metadata and
        the data into the *same* atomic commit.
        """
        if len(meta) > META_CAPACITY:
            raise ValueError(
                f"metadata is {len(meta)} bytes, header slot holds "
                f"{META_CAPACITY}"
            )
        with self._lock:
            self._check_writable()
            staged = bytes(meta)
            if staged != self._meta:
                self._meta = staged
                self._dirty = True
            if persist and self._dirty:
                self._commit_locked()

    # ------------------------------------------------------------------
    # Physical access (file or mapping)
    # ------------------------------------------------------------------

    def _phys_offset(self, phys: int) -> int:
        return HEADER_REGION + phys * self.block_size

    def _file_size(self) -> int:
        if self._map is not None:
            return len(self._map)
        self._file.seek(0, os.SEEK_END)
        return self._file.tell()

    def _ensure_capacity(self, end: int) -> None:
        """Grow the mapped file so offsets below ``end`` are addressable.

        Only needed under mmap: a plain file extends implicitly when
        written past EOF, a mapping must be resized explicitly.  Grows
        straight to ``end`` — allocation is block-at-a-time and mostly
        sequential, so remaps are one per appended block either way.
        """
        if self._map is not None and end > len(self._map):
            os.ftruncate(self._file.fileno(), end)
            self._map.resize(end)

    def _pread(self, offset: int, n: int) -> bytes:
        """Read ``n`` bytes at ``offset`` (may return short at EOF)."""
        if self._map is not None:
            return bytes(self._map[offset : offset + n])
        self._file.seek(offset)
        return self._file.read(n)

    def _raw_pwrite(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, extending the file if needed."""
        if self._map is not None:
            self._ensure_capacity(offset + len(data))
            self._map[offset : offset + len(data)] = data
            return
        self._file.seek(offset)
        self._file.write(data)

    def _pwrite(self, offset: int, data: bytes) -> None:
        """One physical write, routed through the fault injector.

        On a scripted crash the injector's partial bytes (a torn
        prefix, or everything for a crash-after-write) are persisted,
        the store freezes, and :class:`SimulatedCrash` propagates.
        """
        if self._injector is not None:
            try:
                data = self._injector.filter(offset, data)
            except SimulatedCrash as crash:
                self._crashed = True
                if crash.partial_data:
                    self._raw_pwrite(offset, crash.partial_data)
                raise
        self._raw_pwrite(offset, data)

    def _os_flush(self) -> None:
        """Push written bytes to stable storage (fsync for real files)."""
        if self._map is not None:
            self._map.flush()
        self._file.flush()
        if self.path is not None:
            os.fsync(self._file.fileno())

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def _pad(self, payload: bytes | None) -> bytes:
        if payload is None:
            payload = b""
        if len(payload) > self.block_size:
            raise ValueError(
                f"payload is {len(payload)} bytes, blocks hold "
                f"{self.block_size}"
            )
        return payload.ljust(self.block_size, b"\x00")

    def _check_writable(self) -> None:
        if self._readonly:
            raise StorageError(f"{self.path} was opened read-only")

    def _phys_alloc_locked(self) -> int:
        """Claim a physical slot no committed epoch depends on."""
        if self._phys_free:
            phys = self._phys_free.pop()
        else:
            phys = self._phys_high
            self._phys_high += 1
        self._fresh_phys.add(phys)
        self._dirty = True
        return phys

    def _place_locked(self, block_id: BlockId) -> int:
        """Pick the physical slot a (live) logical write lands in.

        A slot claimed earlier *this* epoch is overwritten in place —
        no committed state points at it.  A slot the last commit
        published is shadowed: the write goes to a fresh slot and the
        old one joins the pending pool, reclaimable only after the next
        header flip.
        """
        current = self._l2p[block_id]
        if current != _UNWRITTEN and current in self._fresh_phys:
            return current
        phys = self._phys_alloc_locked()
        if current != _UNWRITTEN:
            self._phys_pending.append(current)
        self._l2p[block_id] = phys
        return phys

    def _claim_locked(self) -> BlockId:
        """Claim the next logical address: freelist pop before growth."""
        if self._freelist_head != _NIL:
            block_id = self._freelist_head
            nxt = self._l2p[block_id] & _FREE_MASK
            self._freelist_head = _NIL if nxt == _FREE_MASK else nxt
            self._l2p[block_id] = _UNWRITTEN
            self._freed_count -= 1
        else:
            block_id = len(self._l2p)
            self._l2p.append(_UNWRITTEN)
        self._dirty = True
        return block_id

    def allocate(self, payload: bytes | None = None) -> BlockId:
        """Allocate a block and write ``payload``, counting one write.

        Freed logical addresses are reused (freelist pop) before the
        address space grows.
        """
        data = self._pad(payload)
        tap = active_tap()
        with self._lock:
            self._check_writable()
            block_id = self._claim_locked()
            phys = self._place_locked(block_id)
            self._pwrite(self._phys_offset(phys), data)
            self.counters.record_write(block_id)
            if tap is not None:
                tap.writes += 1
        return block_id

    def reserve(self) -> BlockId:
        """Claim a block address without writing any payload bytes.

        Pops the freelist (reusing freed addresses) before growing,
        exactly like :meth:`allocate`, but performs **no counted I/O**
        and claims no physical slot: the caller owns the block's bytes
        and writes them later — the write-back page layer reserves on
        ``allocate`` and only materializes the block when the dirty
        page is flushed.  Until then reads return zeros.
        """
        with self._lock:
            self._check_writable()
            return self._claim_locked()

    def free(self, block_id: BlockId) -> None:
        """Release a block onto the freelist (metadata only, no I/O).

        The physical slot is *not* immediately reusable if the last
        commit published it: overwriting it before the next header flip
        would corrupt the state a crash rolls back to, so it parks in
        the pending pool until the flip.
        """
        with self._lock:
            self._check_writable()
            if not 0 <= block_id < len(self._l2p):
                raise KeyError(f"block {block_id} is not allocated")
            current = self._l2p[block_id]
            if current & _FREE_BIT:
                raise FreedBlockError(f"double free of block {block_id}")
            if current != _UNWRITTEN:
                if current in self._fresh_phys:
                    # Claimed this epoch: no commit depends on it.
                    self._fresh_phys.discard(current)
                    self._phys_free.append(current)
                else:
                    self._phys_pending.append(current)
            self._l2p[block_id] = _FREE_BIT | (
                self._freelist_head & _FREE_MASK
            )
            self._freelist_head = block_id
            self._freed_count += 1
            self._dirty = True

    def _is_allocated(self, block_id: BlockId) -> bool:
        return 0 <= block_id < len(self._l2p) and not (
            self._l2p[block_id] & _FREE_BIT
        )

    def _check_live(self, block_id: BlockId) -> None:
        if 0 <= block_id < len(self._l2p):
            if self._l2p[block_id] & _FREE_BIT:
                raise FreedBlockError(
                    f"block {block_id} was freed (read-after-free)"
                )
            return
        raise KeyError(f"block {block_id} is not allocated")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def _read_bytes_locked(self, block_id: BlockId) -> bytes:
        phys = self._l2p[block_id]
        if phys == _UNWRITTEN:
            return b"\x00" * self.block_size
        data = self._pread(self._phys_offset(phys), self.block_size)
        if len(data) < self.block_size:
            raise StorageError(
                f"short read at block {block_id}: file is truncated"
            )
        return data

    def read(self, block_id: BlockId) -> bytes:
        """Read one block of bytes, counting one I/O."""
        tap = active_tap()
        with self._lock:
            self._check_live(block_id)
            data = self._read_bytes_locked(block_id)
            self.counters.record_read(block_id)
            if tap is not None:
                tap.reads += 1
        return data

    def write(self, block_id: BlockId, payload: bytes) -> None:
        """Overwrite a block (logically) in place, counting one I/O."""
        data = self._pad(payload)
        tap = active_tap()
        with self._lock:
            self._check_writable()
            self._check_live(block_id)
            phys = self._place_locked(block_id)
            self._pwrite(self._phys_offset(phys), data)
            self.counters.record_write(block_id)
            if tap is not None:
                tap.writes += 1

    def write_back(self, block_id: BlockId, payload: bytes) -> None:
        """Physically write a block *without* counting I/O.

        The flush half of the dirty-page write-back protocol: the
        logical write was already counted when the page was dirtied, so
        materializing it here must not count again.  Physical write
        traffic is reported by the page layer
        (:class:`~repro.storage.paged.PageCacheStats`).
        """
        data = self._pad(payload)
        with self._lock:
            self._check_writable()
            self._check_live(block_id)
            phys = self._place_locked(block_id)
            self._pwrite(self._phys_offset(phys), data)

    def peek(self, block_id: BlockId) -> bytes:
        """Read a block *without* counting I/O (validation/debugging)."""
        with self._lock:
            self._check_live(block_id)
            return self._read_bytes_locked(block_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of live (allocated, not freed) blocks."""
        return len(self._l2p) - self._freed_count

    def __contains__(self, block_id: BlockId) -> bool:
        return self._is_allocated(block_id)

    def block_ids(self) -> Iterator[BlockId]:
        """Iterate live block addresses in address order."""
        return (
            bid
            for bid in range(len(self._l2p))
            if not (self._l2p[bid] & _FREE_BIT)
        )

    @property
    def allocated_ever(self) -> int:
        """Total blocks ever allocated (high-water logical address)."""
        return len(self._l2p)

    def bytes_used(self) -> int:
        """Live blocks times block size — the on-disk data footprint."""
        return len(self) * self.block_size

    def file_bytes(self) -> int:
        """Committed file footprint: header region plus every physical
        slot the store has claimed (data + shadow map)."""
        return HEADER_REGION + self._phys_high * self.block_size

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _commit_locked(self) -> None:
        """The atomic commit: shadow map out, fsync, one header flip,
        fsync, then — and only then — reclaim superseded slots."""
        old_chain = self._map_chain
        epb = self.block_size // 8
        new_chain: list[int] = []
        data_ptrs: list[int] = []
        for start in range(0, len(self._l2p), epb):
            chunk = self._l2p[start : start + epb]
            phys = self._phys_alloc_locked()
            self._pwrite(
                self._phys_offset(phys),
                struct.pack(f"<{len(chunk)}Q", *chunk).ljust(
                    self.block_size, b"\x00"
                ),
            )
            data_ptrs.append(phys)
            new_chain.append(phys)
        map_index = _NIL
        if data_ptrs:
            idx_cap = epb - 1
            groups = [
                data_ptrs[k : k + idx_cap]
                for k in range(0, len(data_ptrs), idx_cap)
            ]
            for group in reversed(groups):
                phys = self._phys_alloc_locked()
                body = struct.pack(f"<{len(group)}Q", *group).ljust(
                    idx_cap * 8, b"\x00"
                )
                self._pwrite(
                    self._phys_offset(phys),
                    (body + struct.pack("<Q", map_index)).ljust(
                        self.block_size, b"\x00"
                    ),
                )
                map_index = phys
                new_chain.append(phys)
        # Everything the new epoch needs is on disk before the flip.
        self._os_flush()
        epoch = self._epoch + 1
        self._write_slot_locked(epoch, map_index)
        if self._injector is not None:
            self._injector.mark_commit("store")
        self._os_flush()
        # The flip happened: the old epoch's exclusive slots (its map
        # chain and every superseded data slot) are now reclaimable.
        self._epoch = epoch
        self._legacy = False
        self._map_chain = new_chain
        self._phys_free.extend(self._phys_pending)
        self._phys_free.extend(old_chain)
        self._phys_free.sort(reverse=True)
        self._phys_pending = []
        self._fresh_phys.clear()
        self._dirty = False

    def flush(self) -> None:
        """Commit all uncommitted changes atomically.

        Writes the shadow map to fresh physical slots, forces data
        down, publishes with a single checksummed header-slot write,
        and only then recycles superseded slots.  A store with nothing
        uncommitted just pushes OS buffers.  After an injected crash
        this is a no-op: a dead process writes nothing.
        """
        with self._lock:
            if self._readonly or self._crashed:
                return
            if self._dirty:
                self._commit_locked()
            else:
                self._file.flush()

    def close(self) -> None:
        """Flush (commit) and close the backing file (idempotent)."""
        if self._closed:
            return
        if not self._crashed:
            self.flush()
        if self._map is not None:
            self._map.close()
            self._map = None
        self._file.close()
        self._closed = True

    def __enter__(self) -> "FileBlockStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        where = self.path if self.path is not None else "<memory>"
        return (
            f"FileBlockStore({where}, block_size={self.block_size}, "
            f"live={len(self)}, epoch={self._epoch}, {self.counters!r})"
        )
