"""Lazily paged R-trees over an on-disk index file.

:func:`pack_tree` flattens any bulk-loaded tree into a
:class:`~repro.storage.filestore.FileBlockStore` — one codec-encoded
block per node, children first remapped to dense file addresses, the
tree descriptor in the file's metadata region.  :class:`PagedTree`
reopens such a file as a live, queryable tree **without reading it**:
nodes are fetched and decoded on first touch through
:class:`PagedNodeStore`, a bounded LRU page cache, so an index far
larger than RAM costs only ``cache_pages`` decoded nodes of memory
while every query engine — window, kNN, join, point — runs on it
unchanged.

The index is **mutable**: the page layer is a dirty-page write-back
cache.  ``write``/``allocate`` mutate the decoded page in memory, mark
it dirty, and defer encoding until the page is evicted, explicitly
:meth:`PagedNodeStore.sync`-ed, or the tree is closed — so a Guttman
insert that adjusts the same root-to-leaf path a hundred times costs a
hundred *logical* write I/Os but one *physical* page write per distinct
dirty page.  Freed blocks return to the
:class:`~repro.storage.filestore.FileBlockStore` freelist and are
reused by later allocations; :meth:`PagedTree.sync` flushes the dirty
set (in block order) and rewrites the header — tree descriptor
(``root_id``/``height``/``size``), freelist head and live count — in
one header-region write, making every sync a consistency point the
file can be cold-reopened from.

Accounting is the contract that keeps figures comparable: a *logical*
read (``store.read``) or write (``store.write``) counts one I/O on the
shared :class:`~repro.iomodel.counters.IOCounters` exactly like the
simulated store, whether or not the page was cached — the page cache
models RAM reuse of decoded nodes, not the paper's I/O semantics.  The
*physical* file traffic the cache saves or defers is reported
separately in :class:`PageCacheStats`: ``misses`` (reads + decodes,
the cold/warm story of the storage benchmarks) and ``flushes`` (dirty
pages encoded and written back, the update benchmarks' write-back
story).  ``docs/io-accounting.md`` lays the whole logical-vs-physical
vocabulary out in one place.

The read path is thread-safe (one lock over the page table, the file
store has its own), which is what lets the batched
:class:`~repro.server.QueryServer` share one handle across workers;
writes are serialized by the server before a batch's reads run.
"""

from __future__ import annotations

import os
import struct
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

from repro.iomodel.blockstore import DEFAULT_BLOCK_SIZE
from repro.iomodel.codec import NodeCodec
from repro.iomodel.counters import IOCounters
from repro.iomodel.store import BlockId
from repro.obs.cachestats import ReuseDistanceTracker
from repro.obs.tap import IOTap, active_tap
from repro.obs.trace import current_trace
from repro.rtree.node import Node, NodeFrame
from repro.rtree.persist import PersistError
from repro.rtree.tree import RTree
from repro.storage.faults import FaultInjector
from repro.storage.filestore import (
    FileBlockStore,
    HEADER_REGION,
    RecoveryInfo,
    StorageError,
)

__all__ = [
    "PageCacheStats",
    "PagedNodeStore",
    "PagedTree",
    "PackStats",
    "pack_tree",
    "DEFAULT_CACHE_PAGES",
]

#: Default decoded-page budget: ~4 MB of nodes at the paper's 4 KB blocks.
DEFAULT_CACHE_PAGES = 1024

#: Tree descriptor stored in the file's metadata region (little-endian):
#: magic "PGT2" | u16 dim | u32 fanout | u32 height | u64 size | u64 root
#: | u64 next_oid.  next_oid is the lowest object id never handed out —
#: after deletes shrink ``size`` below the high-water id, a reopened
#: handle must not re-issue an id a live leaf entry still points at.
_TREE_META = "<4sHIIQQQ"
_TREE_META_BYTES = struct.calcsize(_TREE_META)
_TREE_MAGIC = b"PGT2"


@dataclass
class PageCacheStats:
    """Physical-access statistics of one :class:`PagedNodeStore`.

    ``hits`` are page-table lookups served without touching the file;
    ``misses`` each cost one physical block read *and* one node decode;
    ``evictions`` count pages dropped to stay within the budget;
    ``flushes`` count dirty pages encoded and physically written back
    (on eviction, :meth:`PagedNodeStore.sync`, or close).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0

    @property
    def physical_reads(self) -> int:
        """Blocks actually read from the file (= decode count)."""
        return self.misses

    @property
    def physical_writes(self) -> int:
        """Blocks actually written to the file (= encode count)."""
        return self.flushes

    def snapshot(self) -> "PageCacheStats":
        return PageCacheStats(
            self.hits, self.misses, self.evictions, self.flushes
        )

    def __sub__(self, other: "PageCacheStats") -> "PageCacheStats":
        return PageCacheStats(
            self.hits - other.hits,
            self.misses - other.misses,
            self.evictions - other.evictions,
            self.flushes - other.flushes,
        )


class PagedNodeStore:
    """Node-decoding LRU page layer over a byte block store.

    Implements :class:`~repro.iomodel.store.BlockStoreProtocol` with
    decoded :class:`~repro.rtree.node.Node` payloads, so an
    :class:`~repro.rtree.tree.RTree` handle (and every engine built on
    one) runs over it exactly as over the simulated disk.

    Parameters
    ----------
    file_store:
        The byte store holding codec-encoded nodes.
    dim:
        Spatial dimension (fixes the entry layout).
    capacity:
        Maximum decoded pages held in memory; 0 disables caching so
        every access decodes from the file (the fully-cold setup).
    tracker:
        Optional :class:`~repro.obs.cachestats.ReuseDistanceTracker`
        observing every page-table lookup — counted reads *and* peeks,
        each tagged with the real hit/miss outcome, so the tracker's
        observed ratio equals the :class:`PageCacheStats` ratio by
        construction (what-if cache modelling).  It records under the
        store lock, so it sees exactly the sequence the real cache
        serves; ``None`` (the default) costs one ``is None`` check per
        lookup.
    """

    def __init__(
        self,
        file_store: FileBlockStore,
        dim: int,
        capacity: int = DEFAULT_CACHE_PAGES,
        tracker: ReuseDistanceTracker | None = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.file_store = file_store
        self.codec = NodeCodec(dim=dim, block_size=file_store.block_size)
        self.capacity = capacity
        self.tracker = tracker
        self.stats = PageCacheStats()
        self._pages: OrderedDict[BlockId, Node] = OrderedDict()
        self._dirty: set[BlockId] = set()
        # The current page stays pinned outside the LRU budget: engines
        # peek a node's kind and immediately read the same block, and
        # that pair must cost one physical read even with capacity 0.
        self._mru: tuple[BlockId, Node] | None = None
        self._lock = threading.Lock()

    # -- protocol attributes ------------------------------------------

    @property
    def block_size(self) -> int:
        return self.file_store.block_size

    @property
    def counters(self) -> IOCounters:
        return self.file_store.counters

    @property
    def readonly(self) -> bool:
        """True when the backing file forbids writes."""
        return self.file_store.readonly

    # -- page table ----------------------------------------------------

    def _get_locked(self, block_id: BlockId, tap: IOTap | None) -> Node:
        """Counted-read lookup: hits bump recency, misses fill the cache.

        Every ``stats`` increment here (and in the helpers below) has a
        matching tap increment so the active context's
        :class:`~repro.obs.tap.IOTap` holds exactly its slice of the
        shared :class:`PageCacheStats` — attribution, not re-counting.
        """
        node = self._pages.get(block_id)
        if node is not None:
            self.stats.hits += 1
            if tap is not None:
                tap.hits += 1
            if self.tracker is not None:
                self.tracker.record(block_id, node.is_leaf, hit=True)
            self._pages.move_to_end(block_id)
            self._mru = (block_id, node)
            return node
        if self._mru is not None and self._mru[0] == block_id:
            # Peeked but not yet cached: promote without a second decode.
            self.stats.hits += 1
            if tap is not None:
                tap.hits += 1
            node = self._mru[1]
            if self.tracker is not None:
                self.tracker.record(block_id, node.is_leaf, hit=True)
            self._cache_locked(block_id, node, tap=tap)
            return node
        self.stats.misses += 1
        if tap is not None:
            tap.misses += 1
        node = self._decode_locked(block_id)
        if self.tracker is not None:
            self.tracker.record(block_id, node.is_leaf, hit=False)
        self._cache_locked(block_id, node, tap=tap)
        return node

    def _peek_locked(self, block_id: BlockId, tap: IOTap | None) -> Node:
        """Uncounted lookup that reads *around* the cache.

        Serves cached (including dirty) pages but never reorders the
        LRU, never inserts, and never evicts — a validation walk over
        the whole tree leaves the cache exactly as it found it.  The
        decoded node is still pinned in the MRU slot so the engines'
        peek-then-read pattern costs one physical read.
        """
        node = self._pages.get(block_id)
        if node is not None:
            self.stats.hits += 1
            if tap is not None:
                tap.hits += 1
            if self.tracker is not None:
                self.tracker.record(block_id, node.is_leaf, hit=True)
            self._mru = (block_id, node)
            return node
        if self._mru is not None and self._mru[0] == block_id:
            self.stats.hits += 1
            if tap is not None:
                tap.hits += 1
            if self.tracker is not None:
                self.tracker.record(block_id, self._mru[1].is_leaf, hit=True)
            return self._mru[1]
        self.stats.misses += 1
        if tap is not None:
            tap.misses += 1
        node = self._decode_locked(block_id)
        if self.tracker is not None:
            self.tracker.record(block_id, node.is_leaf, hit=False)
        self._mru = (block_id, node)
        return node

    def _decode_locked(self, block_id: BlockId) -> Node:
        """Decode one block straight into a frame-backed node.

        The decoded page is the structure-of-arrays representation the
        vectorized kernels consume; ``Rect`` entry tuples only ever
        materialize if the write path touches the page.  Physical read
        and decode accounting stays with the caller.
        """
        is_leaf, lo, hi, ptrs = self.codec.decode_arrays(
            self.file_store.peek(block_id)
        )
        return Node.from_frame(NodeFrame(is_leaf, lo, hi, ptrs))

    def _cache_locked(
        self,
        block_id: BlockId,
        node: Node,
        dirty: bool = False,
        tap: IOTap | None = None,
    ) -> None:
        self._mru = (block_id, node)
        if self.capacity == 0:
            if dirty:
                # No room to defer: degenerate to write-through.
                self._flush_locked(block_id, node, tap)
            return
        self._pages[block_id] = node
        self._pages.move_to_end(block_id)
        if dirty:
            self._dirty.add(block_id)
        while len(self._pages) > self.capacity:
            victim, victim_node = self._pages.popitem(last=False)
            if victim in self._dirty:
                self._flush_locked(victim, victim_node, tap)
                self._dirty.discard(victim)
            self.stats.evictions += 1
            if tap is not None:
                tap.evictions += 1

    def _flush_locked(
        self, block_id: BlockId, node: Node, tap: IOTap | None = None
    ) -> None:
        """Encode one dirty page and physically write it (uncounted)."""
        encoded = self.codec.encode(node.is_leaf, node.entries)
        self.file_store.write_back(block_id, encoded)
        self.stats.flushes += 1
        if tap is not None:
            tap.flushes += 1

    def cached_pages(self) -> int:
        """Decoded pages currently held (≤ capacity)."""
        return len(self._pages)

    def dirty_pages(self) -> int:
        """Cached pages whose encoding on disk is stale."""
        return len(self._dirty)

    def sync(self) -> int:
        """Flush every dirty page to the file; returns pages written.

        Flushes in block-id order so write-back I/O is as sequential as
        the dirtied working set allows.
        """
        tap = active_tap()
        with self._lock:
            return self._sync_locked(tap)

    def _sync_locked(self, tap: IOTap | None = None) -> int:
        flushed = 0
        for block_id in sorted(self._dirty):
            self._flush_locked(block_id, self._pages[block_id], tap)
            flushed += 1
        self._dirty.clear()
        return flushed

    def clear_cache(self) -> None:
        """Drop every decoded page (go fully cold); stats are kept.

        Dirty pages are flushed first — clearing the cache must never
        lose writes.
        """
        with self._lock:
            self._sync_locked(active_tap())
            self._pages.clear()
            self._mru = None

    def _check_writable_locked(self) -> None:
        # Writes are deferred, so the readonly error must fire at the
        # write call, not at some later flush.
        if self.file_store.readonly:
            raise StorageError(
                f"{self.file_store.path} was opened read-only"
            )

    # -- counted access (the store protocol) ---------------------------

    def read(self, block_id: BlockId) -> Node:
        """Read a node, counting one logical I/O (cached page or not)."""
        tap = active_tap()
        with self._lock:
            node = self._get_locked(block_id, tap)
            self.counters.record_read(block_id)
            if tap is not None:
                tap.reads += 1
            return node

    def peek(self, block_id: BlockId) -> Node:
        """Read a node without counting I/O (validation/debugging).

        Reads around the cache: cached pages (dirty ones included) are
        served, but a miss neither inserts nor evicts, so peeking never
        perturbs what the counted read path has warmed.
        """
        with self._lock:
            return self._peek_locked(block_id, active_tap())

    def quiet_peek(self, block_id: BlockId) -> Node:
        """Read a node with **zero** observable side effects.

        Unlike :meth:`peek`, this touches neither :class:`PageCacheStats`
        nor the ghost-LRU tracker, never pins the MRU slot and never
        inserts into the page table — the observation path the health
        walk and :func:`~repro.rtree.validate.validate_rtree` use, so
        observing an index cannot perturb what is being observed.
        Cached pages (dirty ones included) are still served so the walk
        sees the in-memory truth.
        """
        with self._lock:
            node = self._pages.get(block_id)
            if node is not None:
                return node
            if self._mru is not None and self._mru[0] == block_id:
                return self._mru[1]
            return self._decode_locked(block_id)

    def write(self, block_id: BlockId, node: Node) -> None:
        """Write a node back: one logical I/O, deferred physical write.

        The decoded page is updated (or installed) in the cache and
        marked dirty; encoding and the physical block write happen on
        eviction, :meth:`sync`, or close.  With ``capacity == 0`` there
        is nowhere to defer to and the write falls back to
        write-through.
        """
        if len(node) > self.codec.fanout:
            raise ValueError(
                f"{len(node)} entries exceed block fan-out "
                f"{self.codec.fanout}"
            )
        tap = active_tap()
        with self._lock:
            self._check_writable_locked()
            # Same KeyError/FreedBlockError contract as a direct write.
            self.file_store._check_live(block_id)
            self.counters.record_write(block_id)
            if tap is not None:
                tap.writes += 1
            self._cache_locked(block_id, node, dirty=True, tap=tap)

    def allocate(self, node: Node | None = None) -> BlockId:
        """Allocate a block for a node, counting the materializing write.

        The block address is reserved immediately (freelist reuse
        included) but the node's bytes stay in the cache as a dirty
        page until flushed.
        """
        if node is not None and len(node) > self.codec.fanout:
            raise ValueError(
                f"{len(node)} entries exceed block fan-out "
                f"{self.codec.fanout}"
            )
        tap = active_tap()
        with self._lock:
            self._check_writable_locked()
            if node is None:
                # Delegates to the file store, whose own hook attributes
                # the counted write — no increment here (no double count).
                return self.file_store.allocate(None)
            block_id = self.file_store.reserve()
            self.counters.record_write(block_id)
            if tap is not None:
                tap.writes += 1
            self._cache_locked(block_id, node, dirty=True, tap=tap)
            return block_id

    def free(self, block_id: BlockId) -> None:
        """Release a block (metadata only, no counted I/O).

        A dirty cached page is simply discarded — freed blocks need no
        flush.
        """
        with self._lock:
            self.file_store.free(block_id)
            self._pages.pop(block_id, None)
            self._dirty.discard(block_id)
            if self._mru is not None and self._mru[0] == block_id:
                self._mru = None

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self.file_store)

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self.file_store

    def block_ids(self) -> Iterator[BlockId]:
        return self.file_store.block_ids()

    @property
    def allocated_ever(self) -> int:
        return self.file_store.allocated_ever

    def bytes_used(self) -> int:
        return self.file_store.bytes_used()

    def __repr__(self) -> str:
        return (
            f"PagedNodeStore(pages={len(self._pages)}/{self.capacity}, "
            f"dirty={len(self._dirty)}, {self.file_store!r})"
        )


class _CallableValues(Mapping):
    """Adapts an oid → value callable to the mapping the engines expect."""

    def __init__(self, fn: Callable[[int], Any]) -> None:
        self._fn = fn

    def get(self, oid, default=None):
        value = self._fn(oid)
        return default if value is None else value

    def __getitem__(self, oid):
        return self._fn(oid)

    def __iter__(self):  # pragma: no cover - unused by the engines
        return iter(())

    def __len__(self) -> int:  # pragma: no cover - unused by the engines
        return 0


@dataclass(frozen=True)
class PackStats:
    """What :func:`pack_tree` wrote.

    ``file_bytes`` counts the header region plus every physical block —
    node data *and* the committed shadow map — i.e. the exact on-disk
    size of the index file.  ``write_ios`` / ``seq_writes`` are the
    pack-time accounting: packing emits one block write per node, all
    but the first sequential.  ``commit_epoch`` is the store epoch the
    pack committed at (the sharded manifest records it per shard so a
    family can be rolled back to a consistent cut).
    """

    n_blocks: int
    block_size: int
    file_bytes: int
    height: int
    size: int
    write_ios: int
    seq_writes: int
    commit_epoch: int = 0


def pack_tree(
    tree: RTree,
    path: str | os.PathLike | None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    baseline: bool = True,
) -> PackStats:
    """Write a tree to an index file in dense preorder.

    Children are remapped to the dense file addresses (a fresh store
    allocates 0, 1, 2, …), so the file is independent of the allocation
    history of the store the tree was built on, and packing is one
    sequential sweep of writes — the access pattern the paper's bulk
    loaders end with.

    ``baseline=True`` (the default) records the pack-time tree-quality
    baseline (:mod:`repro.obs.health`) in the descriptor's trailing
    bytes, the reference :func:`~repro.obs.health.degradation_score`
    judges later updates against.

    Raises :class:`~repro.rtree.persist.PersistError` when the tree's
    fan-out physically cannot fit the requested block size.
    """
    codec = NodeCodec(dim=tree.dim, block_size=block_size)
    if tree.fanout > codec.fanout:
        raise PersistError(
            f"tree fan-out {tree.fanout} exceeds what a {block_size}-byte "
            f"block holds in {tree.dim}D ({codec.fanout})"
        )

    order: list[tuple[int, Node]] = [
        (bid, node) for bid, node, _ in tree.iter_nodes()
    ]
    index_of = {bid: i for i, (bid, _) in enumerate(order)}

    baseline_blob = b""
    if baseline:
        # The packed file holds the same geometry as the source tree, so
        # the baseline can be computed from the in-memory nodes before a
        # single block is written.  Lazy import: obs.health must stay
        # importable without the storage layer (no cycle).
        from repro.obs.health import encode_baseline, quality_baseline, tree_quality

        baseline_blob = encode_baseline(quality_baseline(tree_quality(tree)))

    meta = struct.pack(
        _TREE_META,
        _TREE_MAGIC,
        tree.dim,
        tree.fanout,
        tree.height,
        tree.size,
        index_of[tree.root_id],
        max(tree._next_oid, tree.size),
    ) + baseline_blob
    with FileBlockStore.create(path, block_size, meta=meta) as file_store:
        for _, node in order:
            if node.is_leaf:
                entries = node.entries
            else:
                entries = [
                    (rect, index_of[child]) for rect, child in node.entries
                ]
            file_store.allocate(codec.encode(node.is_leaf, entries))
        n_blocks = file_store.allocated_ever
        file_store.flush()  # commit, so the file size below is final
        file_bytes = file_store.file_bytes()
        commit_epoch = file_store.commit_epoch
        write_ios = file_store.counters.writes
        seq_writes = file_store.counters.seq_writes
    return PackStats(
        n_blocks=n_blocks,
        block_size=block_size,
        file_bytes=file_bytes,
        height=tree.height,
        size=tree.size,
        write_ios=write_ios,
        seq_writes=seq_writes,
        commit_epoch=commit_epoch,
    )


class PagedTree(RTree):
    """An R-tree whose nodes live in an index file and page in lazily.

    Construct with :meth:`open`; close (or use as a context manager)
    when done.  The handle is a plain :class:`~repro.rtree.tree.RTree`
    to every engine — only the store behind it differs — and it is
    *mutable*: :meth:`insert` / :meth:`delete` run the standard dynamic
    algorithms over the dirty-page write-back store, and :meth:`sync`
    (or :meth:`close`) persists the result.  Handles opened with
    ``readonly=True`` reject updates up front.
    """

    def __init__(
        self,
        store: PagedNodeStore,
        root_id: BlockId,
        dim: int,
        fanout: int,
        height: int,
        size: int,
        values: dict[int, Any] | Callable[[int], Any] | None = None,
        next_oid: int = 0,
    ) -> None:
        super().__init__(
            store, root_id, dim=dim, fanout=fanout, height=height, size=size
        )
        if values is None:
            pass  # engines report None values, structure is intact
        elif callable(values):
            self.objects = _CallableValues(values)
        else:
            self.objects = dict(values)
            if self.objects:
                self._next_oid = max(self.objects) + 1
        # Fresh inserts must never reuse an object id a stored leaf
        # entry still points at: honour the descriptor's high-water id
        # (size alone is not a safe floor once deletes have shrunk it).
        self._next_oid = max(self._next_oid, next_oid, size)
        # Pack-time tree-quality baseline (repro.obs.health), carried in
        # the descriptor's trailing bytes; sync() must re-append it or a
        # single update would erase the degradation reference.
        self._baseline_blob: bytes = b""

    @classmethod
    def open(
        cls,
        path: str | os.PathLike,
        values: dict[int, Any] | Callable[[int], Any] | None = None,
        cache_pages: int = DEFAULT_CACHE_PAGES,
        counters: IOCounters | None = None,
        readonly: bool = False,
        mmap: bool = False,
        cache_analytics: bool = False,
        injector: "FaultInjector | None" = None,
        at_epoch: int | None = None,
    ) -> "PagedTree":
        """Open a :func:`pack_tree` index file without reading the tree.

        Parameters
        ----------
        path:
            The index file.
        values:
            Optional object-id → value mapping (dict or callable); the
            file stores object *ids* only, exactly like
            :func:`~repro.rtree.persist.serialize_tree` images.
        cache_pages:
            Decoded-page budget of the LRU page cache.
        counters:
            Shared I/O counters; a fresh set is created when omitted.
        readonly:
            Open the file without write access (safe for concurrent
            readers of the same file).
        mmap:
            Serve physical block access from a memory mapping of the
            index file (see
            :meth:`~repro.storage.filestore.FileBlockStore.open`) —
            cheaper page-miss reads on hot concurrent read paths, same
            logical and physical accounting.
        cache_analytics:
            Attach a
            :class:`~repro.obs.cachestats.ReuseDistanceTracker` to the
            page store (budgets bracketing ``cache_pages``): miss-ratio
            curves, frequency histograms and working-set estimates at
            the cost of a few dict operations per counted read.
        injector:
            Optional :class:`~repro.storage.faults.FaultInjector` wired
            onto the store's physical write path (crash testing).
        at_epoch:
            Pin the open to a specific committed store epoch instead of
            the newest valid one (sharded-family rollback; see
            :meth:`~repro.storage.filestore.FileBlockStore.open`).
        """
        opened_at = time.perf_counter()
        file_store = FileBlockStore.open(
            path,
            counters=counters,
            readonly=readonly,
            mmap=mmap,
            injector=injector,
            at_epoch=at_epoch,
        )
        try:
            meta = file_store.metadata
            if len(meta) < _TREE_META_BYTES:
                raise StorageError(
                    f"{path} holds no packed tree (metadata too short)"
                )
            (
                magic, dim, fanout, height, size, root_id, next_oid
            ) = struct.unpack_from(_TREE_META, meta, 0)
            if magic != _TREE_MAGIC:
                raise StorageError(
                    f"{path} holds no packed tree (bad metadata magic "
                    f"{magic!r})"
                )
            if root_id not in file_store:
                raise StorageError(f"{path}: root block {root_id} missing")
        except Exception:
            file_store.close()
            raise
        trace = current_trace()
        if trace is not None:
            info = file_store.recovery
            trace.add_span(
                "recovery",
                opened_at,
                time.perf_counter(),
                cat="storage",
                file=str(path),
                epoch=info.epoch,
                header_slot=info.header_slot,
                rolled_back_blocks=info.rolled_back_blocks,
                legacy=info.legacy,
            )
        tracker = (
            ReuseDistanceTracker(capacity=max(1, cache_pages))
            if cache_analytics
            else None
        )
        store = PagedNodeStore(
            file_store, dim=dim, capacity=cache_pages, tracker=tracker
        )
        tree = cls(
            store,
            root_id,
            dim=dim,
            fanout=fanout,
            height=height,
            size=size,
            values=values,
            next_oid=next_oid,
        )
        tree._baseline_blob = bytes(meta[_TREE_META_BYTES:])
        return tree

    # ------------------------------------------------------------------

    @property
    def page_store(self) -> PagedNodeStore:
        """The node-decoding page layer (for cache statistics)."""
        return self.store  # type: ignore[return-value]

    @property
    def page_stats(self) -> PageCacheStats:
        """Physical page-cache statistics (hits/misses/evictions)."""
        return self.page_store.stats

    @property
    def readonly(self) -> bool:
        """True when the index file was opened without write access."""
        return self.page_store.readonly

    @property
    def health_baseline(self) -> dict | None:
        """The pack-time tree-quality baseline, or None if not recorded.

        Written by :func:`pack_tree` into the descriptor's trailing
        bytes and preserved across :meth:`sync`;
        :func:`~repro.obs.health.degradation_score` compares the live
        tree against it.
        """
        from repro.obs.health import decode_baseline

        return decode_baseline(self._baseline_blob)

    @property
    def recovery(self) -> RecoveryInfo:
        """What opening the store recovered (epoch, header slot chosen,
        rolled-back physical blocks) — exported as ``repro_recovery_*``
        metrics by the serving layer."""
        return self.page_store.file_store.recovery

    # -- write path ----------------------------------------------------

    def _require_writable(self) -> None:
        if self.readonly:
            raise StorageError(
                f"{self.page_store.file_store.path} was opened read-only; "
                "reopen with readonly=False to insert or delete"
            )
        if not isinstance(self.objects, dict):
            raise StorageError(
                "this tree's values were supplied as a callable; updates "
                "need a mutable object table (open with a dict or None)"
            )

    def insert(self, rect, value) -> int:
        """Insert a data rectangle (Guttman); returns the object id.

        The touched pages go dirty in the cache; call :meth:`sync` (or
        :meth:`close`) to persist them and the updated tree descriptor.
        Raises :class:`~repro.storage.filestore.StorageError` up front
        on a read-only handle.
        """
        self._require_writable()
        return super().insert(rect, value)

    def delete(self, rect, value) -> bool:
        """Delete one matching data rectangle (Guttman CondenseTree).

        Freed blocks return to the file's freelist and are reused by
        later inserts.  Raises
        :class:`~repro.storage.filestore.StorageError` up front on a
        read-only handle.
        """
        self._require_writable()
        return super().delete(rect, value)

    def sync(self) -> int:
        """Flush dirty pages and commit the file atomically.

        Every dirty page is encoded and written back (in block order)
        to *fresh* physical slots, then the store's :meth:`flush`
        publishes pages, freelist and the
        ``root_id``/``height``/``size`` descriptor together with a
        single checksummed header-slot write — every sync is an atomic
        commit point a crash rolls back to (see ``docs/durability.md``).
        Returns the number of pages flushed.  A read-only handle has
        nothing to flush and returns 0.
        """
        if self.readonly:
            return 0
        flushed = self.page_store.sync()
        meta = struct.pack(
            _TREE_META,
            _TREE_MAGIC,
            self.dim,
            self.fanout,
            self.height,
            self.size,
            self.root_id,
            self._next_oid,
        ) + self._baseline_blob
        file_store = self.page_store.file_store
        file_store.set_metadata(meta, persist=False)
        file_store.flush()  # one header-region write covers it
        return flushed

    def close(self) -> None:
        """Sync pending writes and close the index file (idempotent)."""
        file_store = self.page_store.file_store
        if not file_store.closed and not self.readonly and not file_store.crashed:
            self.sync()
        file_store.close()

    def __enter__(self) -> "PagedTree":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"PagedTree(dim={self.dim}, fanout={self.fanout}, "
            f"height={self.height}, size={self.size}, "
            f"pages={self.page_store.cached_pages()})"
        )
