"""Deterministic fault injection for the durable write path.

The crash-safety claim of the shadow-header commit protocol
(``docs/durability.md``) is only as good as the failures it has been
tested against, so this module makes failure a first-class, *scripted*
event:

* :class:`FaultInjector` sits on a store's **physical write** path
  (every ``pwrite`` of header slots, data blocks, map blocks — and, for
  a sharded family, every manifest temp-file write and rename).  It
  counts writes globally across every store that shares it (one
  injector models one process) and, at a scripted write index, either
  lets the write complete and then *crashes* (``clean``), persists only
  a seeded-random prefix of it and crashes (``torn``), drops it
  entirely and crashes (``omit``), or silently flips one seeded-random
  bit and carries on (``bitflip_at`` — the corruption the header
  checksum must catch).
* :class:`SimulatedCrash` is the "process died here" signal.  Once
  raised, the injector stays dead: every later write through it raises
  again without touching the file, exactly like a killed process stops
  issuing I/O.  Recovery is then exercised by *reopening the files*,
  never by resuming the poisoned in-memory state.
* :class:`FaultInjectingStore` wraps any
  :class:`~repro.iomodel.store.BlockStoreProtocol` store and routes its
  payload-carrying operations through an injector — the unit-test-level
  counterpart of wiring an injector into
  :class:`~repro.storage.filestore.FileBlockStore` itself.

Determinism contract: with the same seed and the same workload, the
global write sequence, the torn-write cut points and the flipped bits
are identical run to run — the crash matrix in ``tools/crashtest.py``
relies on replaying *every* write index of a golden run.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Iterator

from repro.iomodel.store import BlockId

__all__ = ["SimulatedCrash", "FaultInjector", "FaultInjectingStore"]

#: Crash modes a scripted crash can use.
CRASH_MODES = ("clean", "torn", "omit")


class SimulatedCrash(RuntimeError):
    """The injected process death: raised at the scripted write.

    ``partial_data`` carries the bytes that still made it to the device
    (the whole write for a ``clean`` crash, a prefix for ``torn``,
    ``None`` for ``omit``); the store persists exactly those bytes
    before propagating, so the file is left precisely as a real kill
    would leave it.
    """

    def __init__(self, message: str, partial_data: bytes | None = None) -> None:
        super().__init__(message)
        self.partial_data = partial_data


class FaultInjector:
    """Scripted, seeded faults on a global physical-write sequence.

    Parameters
    ----------
    crash_after:
        Crash at the Nth physical write seen through this injector
        (1-based); ``None`` never crashes.
    mode:
        What happens to that Nth write: ``"clean"`` (it completes, then
        the process dies), ``"torn"`` (a seeded-random strict prefix is
        persisted), ``"omit"`` (nothing is persisted).
    bitflip_at:
        Silently flip one seeded-random bit of the Nth write and keep
        going — no crash, just corruption in flight.
    seed:
        Seeds the cut points and bit choices; same seed, same faults.
    """

    def __init__(
        self,
        crash_after: int | None = None,
        mode: str = "clean",
        bitflip_at: int | None = None,
        seed: int = 0,
    ) -> None:
        if mode not in CRASH_MODES:
            raise ValueError(f"mode must be one of {CRASH_MODES}, not {mode!r}")
        if crash_after is not None and crash_after < 1:
            raise ValueError("crash_after is 1-based: must be >= 1")
        if bitflip_at is not None and bitflip_at < 1:
            raise ValueError("bitflip_at is 1-based: must be >= 1")
        self.crash_after = crash_after
        self.mode = mode
        self.bitflip_at = bitflip_at
        self.seed = seed
        self._rng = random.Random(seed)
        #: Physical writes seen so far (across every store sharing this
        #: injector).
        self.writes = 0
        #: ``(write_index, tag)`` commit points, in order — a store
        #: records ``"store"`` right after its header-slot flip, a
        #: sharded family records ``"manifest"`` after the manifest
        #: rename.  The crash harness reads these off a golden
        #: (crash-free) run to learn where the durable states lie.
        self.commits: list[tuple[int, str]] = []
        self.crashed = False

    # ------------------------------------------------------------------

    def _die(self, partial: bytes | None, what: str) -> SimulatedCrash:
        self.crashed = True
        return SimulatedCrash(
            f"simulated crash at physical write {self.writes} ({what})",
            partial_data=partial,
        )

    def filter(self, offset: int | BlockId | None, data: bytes) -> bytes:
        """Pass one physical write through the fault script.

        Returns the (possibly corrupted) bytes to persist, or raises
        :class:`SimulatedCrash` — whose ``partial_data`` the caller must
        persist before propagating.  After a crash, every call raises
        immediately with nothing to persist.
        """
        if self.crashed:
            raise SimulatedCrash(
                "simulated crash: the process is already dead",
                partial_data=None,
            )
        self.writes += 1
        if self.bitflip_at is not None and self.writes == self.bitflip_at and data:
            bit = self._rng.randrange(len(data) * 8)
            corrupted = bytearray(data)
            corrupted[bit // 8] ^= 1 << (bit % 8)
            data = bytes(corrupted)
        if self.crash_after is not None and self.writes >= self.crash_after:
            if self.mode == "torn" and len(data) > 1:
                cut = self._rng.randrange(1, len(data))
                raise self._die(data[:cut], f"torn after {cut} bytes")
            if self.mode == "omit":
                raise self._die(None, "write dropped")
            raise self._die(data, "write completed, then died")
        return data

    def mark_commit(self, tag: str = "store") -> None:
        """Record that a commit point just became durable.

        Called by the store right after its header-slot write (and by
        the sharded layer after the manifest rename); a crashed process
        never reaches it.
        """
        if not self.crashed:
            self.commits.append((self.writes, tag))

    @contextmanager
    def commit_event(self, tag: str) -> Iterator[None]:
        """Guard an *atomic* commit action (e.g. ``os.replace``).

        The action occupies one write index of its own: a ``clean``
        crash scripted at that index runs the action first and dies
        after it (the rename made it to disk); ``torn``/``omit`` crash
        *before* it (an atomic rename is never half-done).  Otherwise
        the action runs and is recorded as a ``tag`` commit point.
        """
        if self.crashed:
            raise SimulatedCrash(
                "simulated crash: the process is already dead",
                partial_data=None,
            )
        self.writes += 1
        crash = self.crash_after is not None and self.writes >= self.crash_after
        if crash and self.mode != "clean":
            raise self._die(None, f"before {tag} commit")
        yield
        if crash:
            raise self._die(None, f"after {tag} commit")
        self.commits.append((self.writes, tag))

    def commit_points(self, tag: str) -> list[int]:
        """The write indexes at which ``tag`` commits became durable."""
        return [w for w, t in self.commits if t == tag]

    def __repr__(self) -> str:
        return (
            f"FaultInjector(writes={self.writes}, crash_after="
            f"{self.crash_after}, mode={self.mode!r}, crashed={self.crashed})"
        )


class FaultInjectingStore:
    """A :class:`~repro.iomodel.store.BlockStoreProtocol` wrapper that
    routes every payload-carrying operation through a
    :class:`FaultInjector`.

    Reads and frees pass straight through (a crash stops *writes*);
    ``allocate``/``write``/``write_back`` filter their payload first, so
    a scripted crash surfaces exactly at the operation that would have
    issued the doomed write.  Wraps the in-memory simulated store as
    readily as a file-backed one — unit tests can script crashes
    without ever touching a file.
    """

    def __init__(self, inner, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    # -- protocol attributes ------------------------------------------

    @property
    def block_size(self) -> int:
        return self.inner.block_size

    @property
    def counters(self):
        return self.inner.counters

    # -- payload-carrying operations (fault-filtered) ------------------

    def allocate(self, payload=None) -> BlockId:
        filtered = self.injector.filter(None, payload or b"")
        return self.inner.allocate(filtered if payload is not None else None)

    def write(self, block_id: BlockId, payload) -> None:
        self.inner.write(block_id, self.injector.filter(block_id, payload))

    def write_back(self, block_id: BlockId, payload) -> None:
        self.inner.write_back(
            block_id, self.injector.filter(block_id, payload)
        )

    # -- pass-through --------------------------------------------------

    def read(self, block_id: BlockId):
        return self.inner.read(block_id)

    def peek(self, block_id: BlockId):
        return self.inner.peek(block_id)

    def free(self, block_id: BlockId) -> None:
        self.inner.free(block_id)

    def __len__(self) -> int:
        return len(self.inner)

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self.inner

    def block_ids(self):
        return self.inner.block_ids()

    @property
    def allocated_ever(self) -> int:
        return self.inner.allocated_ever

    def bytes_used(self) -> int:
        return self.inner.bytes_used()

    def __repr__(self) -> str:
        return f"FaultInjectingStore({self.inner!r}, {self.injector!r})"
