"""Disk-backed storage engine: real files behind the simulated API.

The I/O model package measures access patterns over an in-memory
simulated disk; this package provides the matching *real* disk so the
byte-exact node layout (36-byte entries in 4 KB blocks, paper Section
3.1) is not just validated but actually served from a file:

* :class:`repro.storage.filestore.FileBlockStore` — fixed-size byte
  blocks in a single index file (superblock + intrusive freelist), with
  the same API surface and :class:`~repro.iomodel.counters.IOCounters`
  accounting as the simulated store.
* :class:`repro.storage.paged.PagedNodeStore` — a bounded LRU page
  cache that decodes nodes lazily through the codec, presenting the
  block-store protocol with :class:`~repro.rtree.node.Node` payloads.
* :class:`repro.storage.paged.PagedTree` /
  :func:`repro.storage.paged.pack_tree` — flatten any bulk-loaded tree
  into an index file and reopen it as a live tree that pages nodes in
  on demand, so indexes larger than RAM stay queryable by every engine
  unchanged.

The batched query server in :mod:`repro.server` runs on these handles.
"""

from repro.storage.filestore import FileBlockStore, StorageError
from repro.storage.paged import (
    DEFAULT_CACHE_PAGES,
    PackStats,
    PageCacheStats,
    PagedNodeStore,
    PagedTree,
    pack_tree,
)

__all__ = [
    "FileBlockStore",
    "StorageError",
    "PagedNodeStore",
    "PagedTree",
    "PageCacheStats",
    "PackStats",
    "pack_tree",
    "DEFAULT_CACHE_PAGES",
]
