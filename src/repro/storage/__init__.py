"""Disk-backed storage engine: real files behind the simulated API.

The I/O model package measures access patterns over an in-memory
simulated disk; this package provides the matching *real* disk so the
byte-exact node layout (36-byte entries in 4 KB blocks, paper Section
3.1) is not just validated but actually served from a file:

* :class:`repro.storage.filestore.FileBlockStore` — fixed-size byte
  blocks in a single index file (shadow-paged behind two checksummed,
  alternating header slots, so every ``sync`` is an atomic commit),
  with the same API surface and
  :class:`~repro.iomodel.counters.IOCounters` accounting as the
  simulated store.
* :class:`repro.storage.faults.FaultInjector` /
  :class:`repro.storage.faults.FaultInjectingStore` — deterministic
  crash/torn-write/bit-flip injection on the physical write path, the
  machinery behind the crash-recovery matrix (``tools/crashtest.py``).
* :class:`repro.storage.paged.PagedNodeStore` — a bounded LRU page
  cache that decodes nodes lazily through the codec, presenting the
  block-store protocol with :class:`~repro.rtree.node.Node` payloads.
* :class:`repro.storage.paged.PagedTree` /
  :func:`repro.storage.paged.pack_tree` — flatten any bulk-loaded tree
  into an index file and reopen it as a live tree that pages nodes in
  on demand, so indexes larger than RAM stay queryable by every engine
  unchanged.
* :func:`repro.storage.shard.shard_pack` /
  :class:`repro.storage.shard.ShardedTree` — split one logical index
  into K Hilbert-range shard files behind a manifest, fanning queries
  out to only the shards that can contribute;
  :func:`repro.storage.shard.open_index` opens either shape.

The batched query server in :mod:`repro.server` runs on these handles.
The on-disk formats are specified byte-for-byte in
``docs/storage-format.md``; the I/O vocabulary shared by every layer is
pinned down in ``docs/io-accounting.md``.
"""

from repro.storage.faults import (
    FaultInjectingStore,
    FaultInjector,
    SimulatedCrash,
)
from repro.storage.filestore import FileBlockStore, RecoveryInfo, StorageError
from repro.storage.paged import (
    DEFAULT_CACHE_PAGES,
    PackStats,
    PageCacheStats,
    PagedNodeStore,
    PagedTree,
    pack_tree,
)
from repro.storage.shard import (
    ShardError,
    ShardInfo,
    ShardLoad,
    ShardPackStats,
    ShardedJoinEngine,
    ShardedKNNEngine,
    ShardedPointEngine,
    ShardedQueryEngine,
    ShardedTree,
    open_index,
    shard_pack,
)

__all__ = [
    "FileBlockStore",
    "StorageError",
    "RecoveryInfo",
    "FaultInjector",
    "FaultInjectingStore",
    "SimulatedCrash",
    "PagedNodeStore",
    "PagedTree",
    "PageCacheStats",
    "PackStats",
    "pack_tree",
    "DEFAULT_CACHE_PAGES",
    "ShardError",
    "ShardInfo",
    "ShardLoad",
    "ShardPackStats",
    "ShardedTree",
    "ShardedQueryEngine",
    "ShardedPointEngine",
    "ShardedKNNEngine",
    "ShardedJoinEngine",
    "shard_pack",
    "open_index",
]
