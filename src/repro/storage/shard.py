"""Sharded packed indexes: one logical tree across several index files.

A single :func:`~repro.storage.paged.pack_tree` file serializes every
query behind one page cache and one disk arm; the production-scale
answer (ROADMAP "sharding", and the partitioned-worker shape of the
SIGMOD 2014 contest systems) is to split one logical index into K
independent index files and fan requests out to only the shards that
can contribute.

:func:`shard_pack` partitions a bulk-loaded tree's *leaf entries* by the
Hilbert rank of their centers into K contiguous ranges — the same
locality order the packed Hilbert loader and the server's batch
reordering already use — packs each range as an independent index file
(reusing :func:`~repro.storage.paged.pack_tree`), and writes a JSON
*shard manifest* describing the family: per-shard file, entry count,
MBR, Hilbert key range and block count (byte-for-byte layout in
``docs/storage-format.md``).

:class:`ShardedTree` opens every shard as a
:class:`~repro.storage.paged.PagedTree` behind one facade:

* **window-family queries** (window / point / count / containment) fan
  out only to shards whose *current* MBR can contribute and merge the
  per-shard answers;
* **kNN** runs a best-first merge over per-shard incremental
  ``nearest()`` streams, so a shard is only opened (and only pays I/O)
  once the global result genuinely needs it;
* **joins** decompose into per-component joins over MBR-intersecting
  pairs;
* **inserts** route to the shard owning the rectangle's Hilbert rank,
  **deletes** broadcast to the shards whose MBR intersects the victim,
  and :meth:`ShardedTree.sync` flushes every dirty shard then rewrites
  the manifest atomically (temp file + ``os.replace``).

Accounting follows the single-file contract exactly (see
``docs/io-accounting.md``): each shard has its own
:class:`~repro.iomodel.counters.IOCounters` and
:class:`~repro.storage.paged.PageCacheStats`, the facade aggregates
them, and :meth:`ShardedTree.shard_loads` exposes the per-shard
logical/physical split that the server's
:class:`~repro.server.server.BatchReport` per-shard breakdown and the
``benchmarks/test_storage_sharding.py`` I/O-balance tables are built
from.
"""

from __future__ import annotations

import contextvars
import heapq
import json
import math
import os
import pathlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator, Sequence

from repro.bulk.base import pack_leaf_level
from repro.geometry.hilbert import DEFAULT_ORDER, hilbert_key_for_center
from repro.geometry.rect import Rect, mbr_of
from repro.iomodel.blockstore import BlockStore, DEFAULT_BLOCK_SIZE
from repro.iomodel.counters import IOSnapshot
from repro.obs import health
from repro.obs.profiler import phase as profile_phase
from repro.obs.tap import active_tap, scoped_tap
from repro.obs.trace import current_trace
from repro.queries.join import JoinStats, SpatialJoinEngine
from repro.queries.knn import KNNEngine, Neighbor
from repro.queries.point import PointQueryEngine
from repro.rtree.node import Node
from repro.rtree.query import QueryEngine, QueryStats
from repro.rtree.tree import RTree
from repro.storage.faults import FaultInjector, SimulatedCrash
from repro.storage.filestore import StorageError
from repro.storage.paged import (
    DEFAULT_CACHE_PAGES,
    PackStats,
    PageCacheStats,
    PagedTree,
    pack_tree,
)

__all__ = [
    "ShardError",
    "ShardInfo",
    "ShardLoad",
    "ShardPackStats",
    "ShardedTree",
    "ShardedQueryEngine",
    "ShardedPointEngine",
    "ShardedKNNEngine",
    "ShardedJoinEngine",
    "shard_pack",
    "open_index",
]

#: The manifest's ``format`` field; rejects arbitrary JSON files early.
MANIFEST_FORMAT = "repro-shards"
#: Manifest schema version this module writes.  Version 2 adds a
#: family ``generation`` stamp and a per-shard committed store
#: ``epoch``, so a crash between shard syncs and the manifest rewrite
#: recovers to the consistent family cut the manifest names.
MANIFEST_VERSION = 2
#: Versions this module still reads (1 predates the shadow-header
#: store; its shards open at their newest valid epoch).
MANIFEST_VERSIONS_READ = (1, 2)


class ShardError(StorageError):
    """The shard manifest is missing, malformed, or inconsistent."""


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardInfo:
    """One shard's entry in the manifest.

    ``hilbert_lo``/``hilbert_hi`` are the inclusive Hilbert-key range
    the shard owns for insert routing; ranges are contiguous across the
    family in shard order.  ``mbr`` is the shard's root MBR at the last
    sync (``None`` for an empty shard) — query fan-out uses the *live*
    root MBR, the manifest copy exists so opening can cross-check the
    file against the manifest.  ``epoch`` is the store commit epoch the
    shard held when the manifest was written; opening pins each shard to
    it, rolling back any shard commit the manifest never acknowledged
    (0 for legacy version-1 manifests: open the newest valid epoch).
    """

    file: str
    size: int
    height: int
    mbr: Rect | None
    hilbert_lo: int
    hilbert_hi: int
    n_blocks: int
    epoch: int = 0


@dataclass(frozen=True)
class ShardPackStats:
    """What :func:`shard_pack` wrote.

    ``per_shard`` holds one :class:`~repro.storage.paged.PackStats` per
    shard file, in shard order; ``file_bytes`` / ``write_ios`` are their
    sums (the manifest itself is metadata, not counted I/O).
    """

    manifest: str
    shards: int
    size: int
    per_shard: tuple[PackStats, ...]

    @property
    def file_bytes(self) -> int:
        return sum(s.file_bytes for s in self.per_shard)

    @property
    def write_ios(self) -> int:
        return sum(s.write_ios for s in self.per_shard)

    @property
    def seq_writes(self) -> int:
        return sum(s.seq_writes for s in self.per_shard)


def _rect_to_json(rect: Rect | None) -> dict | None:
    if rect is None:
        return None
    return {"lo": list(rect.lo), "hi": list(rect.hi)}


def _rect_from_json(obj: Any, where: str) -> Rect | None:
    if obj is None:
        return None
    try:
        return Rect(tuple(obj["lo"]), tuple(obj["hi"]))
    except (TypeError, KeyError, ValueError) as exc:
        raise ShardError(f"{where}: bad rectangle {obj!r}") from None


def _atomic_write_text(
    path: pathlib.Path, text: str, injector: "FaultInjector | None" = None
) -> None:
    """Write ``text`` so readers see either the old or the new file.

    With a fault injector attached, the temp-file write is one
    injectable physical write (it can be torn or dropped) and the
    ``os.replace`` is one injectable *atomic commit event* — a scripted
    crash lands either before the rename (old file survives) or after
    it (new file is durable), never in between.
    """
    tmp = path.with_name(path.name + ".tmp")
    data = text.encode("utf-8")
    if injector is None:
        tmp.write_bytes(data)
        os.replace(tmp, path)
        return
    try:
        data = injector.filter(str(tmp), data)
    except SimulatedCrash as crash:
        if crash.partial_data:
            tmp.write_bytes(crash.partial_data)
        raise
    tmp.write_bytes(data)
    with injector.commit_event("manifest"):
        os.replace(tmp, path)


def _shard_file_name(manifest: pathlib.Path, index: int, total: int) -> str:
    """Per-shard file name derived from the manifest name: two-digit
    suffixes keep directory listings in shard order for any K ≤ 100."""
    width = max(2, len(str(total - 1)))
    return f"{manifest.name}.shard{index:0{width}d}"


def shard_pack(
    tree: RTree,
    path: str | os.PathLike,
    shards: int,
    block_size: int = DEFAULT_BLOCK_SIZE,
    order: int = DEFAULT_ORDER,
) -> ShardPackStats:
    """Split a bulk-loaded tree into K Hilbert-range shard files.

    The tree's leaf entries are sorted by the Hilbert key of their
    centers (over the tree's bounding box, quantized at ``order`` bits
    per axis), split into ``shards`` contiguous ranges of near-equal
    cardinality, and each range is rebuilt bottom-up — *preserving the
    original object ids* — and written as its own index file next to
    the manifest with :func:`~repro.storage.paged.pack_tree`.  The
    manifest at ``path`` records the family (see
    ``docs/storage-format.md``); shard files are named
    ``<manifest>.shardNN``.

    ``shards`` is clamped to the number of data entries (an empty tree
    packs a single empty shard), so every shard is non-empty.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    manifest_path = pathlib.Path(path)
    bounds = tree.root().mbr() if tree.root().entries else None

    entries: list[tuple[int, Rect, int]] = []
    for _, leaf in tree.iter_leaves():
        for rect, oid in leaf.entries:
            entries.append(
                (hilbert_key_for_center(rect, bounds, order), rect, oid)
            )
    # Hilbert order with (key, oid) ties broken deterministically.
    entries.sort(key=lambda item: (item[0], item[2]))

    k = max(1, min(shards, len(entries)))
    next_oid = max(tree._next_oid, tree.size)

    infos: list[ShardInfo] = []
    per_shard: list[PackStats] = []
    shard_qualities = []
    base, extra = divmod(len(entries), k)
    start = 0
    for i in range(k):
        stop = start + base + (1 if i < extra else 0)
        chunk = entries[start:stop]
        start = stop
        file_name = _shard_file_name(manifest_path, i, k)
        shard_tree = _pack_preserving_oids(
            [(rect, oid) for _, rect, oid in chunk],
            tree,
            next_oid,
        )
        # Each shard file also carries its own single-tree baseline (via
        # pack_tree); the manifest records the family-level aggregate.
        shard_qualities.append(health.tree_quality(shard_tree))
        stats = pack_tree(
            shard_tree, manifest_path.with_name(file_name), block_size
        )
        per_shard.append(stats)
        infos.append(
            ShardInfo(
                file=file_name,
                size=len(chunk),
                height=shard_tree.height,
                mbr=mbr_of(rect for _, rect, _ in chunk) if chunk else None,
                hilbert_lo=chunk[0][0] if chunk else 0,
                hilbert_hi=chunk[-1][0] if chunk else 0,
                n_blocks=stats.n_blocks,
                epoch=stats.commit_epoch,
            )
        )

    _write_manifest(
        manifest_path,
        dim=tree.dim,
        fanout=tree.fanout,
        block_size=block_size,
        order=order,
        size=len(entries),
        next_oid=next_oid,
        bounds=bounds,
        infos=infos,
        health_baseline=health.quality_baseline(
            health.family_quality(shard_qualities)
        ),
    )
    return ShardPackStats(
        manifest=str(manifest_path),
        shards=k,
        size=len(entries),
        per_shard=tuple(per_shard),
    )


def _pack_preserving_oids(
    entries: list[tuple[Rect, int]], source: RTree, next_oid: int
) -> RTree:
    """Bottom-up pack of ordered ``(rect, oid)`` entries, keeping oids.

    Unlike :func:`~repro.bulk.base.pack_ordered`, leaf pointers are the
    *source tree's* object ids, so one global oid → value mapping serves
    every shard of the family.  ``next_oid`` (the family-wide high-water
    id) is recorded in each shard's descriptor so no reopened shard can
    re-issue an id a sibling's live entry still points at.
    """
    store = BlockStore()
    shard = RTree(
        store,
        root_id=-1,
        dim=source.dim,
        fanout=source.fanout,
        height=1,
        size=len(entries),
    )
    if not entries:
        shard.root_id = store.allocate(Node(is_leaf=True))
    else:
        level = pack_leaf_level(store, entries, source.fanout, is_leaf=True)
        height = 1
        while len(level) > 1:
            level = pack_leaf_level(store, level, source.fanout, is_leaf=False)
            height += 1
        shard.root_id = level[0][1]
        shard.height = height
    shard.objects = {oid: source.objects.get(oid) for _, oid in entries}
    shard._next_oid = next_oid
    return shard


def _write_manifest(
    path: pathlib.Path,
    dim: int,
    fanout: int,
    block_size: int,
    order: int,
    size: int,
    next_oid: int,
    bounds: Rect | None,
    infos: Sequence[ShardInfo],
    generation: int = 0,
    injector: "FaultInjector | None" = None,
    health_baseline: dict | None = None,
) -> None:
    doc = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "generation": generation,
        "dim": dim,
        "fanout": fanout,
        "block_size": block_size,
        "order": order,
        "size": size,
        "next_oid": next_oid,
        "shards": len(infos),
        "bounds": _rect_to_json(bounds),
        "shard_files": [
            {
                "file": info.file,
                "size": info.size,
                "height": info.height,
                "mbr": _rect_to_json(info.mbr),
                "hilbert_lo": info.hilbert_lo,
                "hilbert_hi": info.hilbert_hi,
                "n_blocks": info.n_blocks,
                "epoch": info.epoch,
            }
            for info in infos
        ],
    }
    if health_baseline is not None:
        # The family's pack-time tree-quality baseline (repro.obs.health):
        # the reference the degradation score judges later updates
        # against.  Optional — pre-PR-10 manifests simply lack it.
        doc["health_baseline"] = health_baseline
    _atomic_write_text(
        path, json.dumps(doc, indent=2) + "\n", injector=injector
    )


def _load_manifest(path: pathlib.Path) -> dict:
    """Parse and structurally validate a manifest, with clear errors."""
    if not path.exists():
        raise ShardError(f"no shard manifest at {path}")
    try:
        doc = json.loads(path.read_text())
    except (ValueError, UnicodeDecodeError) as exc:
        raise ShardError(
            f"{path} is not a shard manifest (invalid JSON: {exc})"
        ) from None
    if not isinstance(doc, dict) or doc.get("format") != MANIFEST_FORMAT:
        raise ShardError(
            f"{path} is not a shard manifest (missing format "
            f"{MANIFEST_FORMAT!r})"
        )
    if doc.get("version") not in MANIFEST_VERSIONS_READ:
        raise ShardError(
            f"{path}: unsupported manifest version {doc.get('version')!r}"
        )
    required = (
        "dim", "fanout", "block_size", "order", "size", "next_oid",
        "shards", "shard_files",
    )
    for key in required:
        if key not in doc:
            raise ShardError(f"{path}: manifest is missing {key!r}")
    files = doc["shard_files"]
    if not isinstance(files, list) or not files:
        raise ShardError(f"{path}: manifest lists no shard files")
    if len(files) != doc["shards"]:
        raise ShardError(
            f"{path}: shard file count mismatch — manifest promises "
            f"{doc['shards']} shards but lists {len(files)}"
        )
    return doc


# ----------------------------------------------------------------------
# Per-shard load accounting
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardLoad:
    """Cumulative load of one shard, in the shared I/O vocabulary.

    ``reads``/``writes`` are the shard's *logical* block I/Os
    (:class:`~repro.iomodel.counters.IOCounters`), ``physical_reads`` /
    ``pages_flushed`` the physical page traffic
    (:class:`~repro.storage.paged.PageCacheStats` misses / flushes), and
    ``busy_s`` the wall-clock seconds the sharded engines spent
    executing on this shard.  Snapshots subtract, so a batch's per-shard
    cost is ``after[i] - before[i]``.
    """

    reads: int = 0
    writes: int = 0
    physical_reads: int = 0
    pages_flushed: int = 0
    busy_s: float = 0.0

    def __sub__(self, other: "ShardLoad") -> "ShardLoad":
        return ShardLoad(
            self.reads - other.reads,
            self.writes - other.writes,
            self.physical_reads - other.physical_reads,
            self.pages_flushed - other.pages_flushed,
            self.busy_s - other.busy_s,
        )


class _AggregateCounters:
    """Summed :class:`IOCounters` view over every shard (snapshot-only)."""

    def __init__(self, sharded: "ShardedTree") -> None:
        self._sharded = sharded

    def snapshot(self) -> IOSnapshot:
        total = IOSnapshot()
        for shard in self._sharded.shards:
            total = total + shard.store.counters.snapshot()
        return total

    @property
    def reads(self) -> int:
        return self.snapshot().reads

    @property
    def writes(self) -> int:
        return self.snapshot().writes


class _ShardedStoreView:
    """The facade's ``.store``: just enough surface for the server.

    The :class:`~repro.server.QueryServer` discovers paged indexes by
    ``hasattr(store, "stats")`` and meters batches through
    ``store.stats`` / ``store.counters``; this view aggregates the
    family so a sharded index meters exactly like a single-file one.
    """

    def __init__(self, sharded: "ShardedTree") -> None:
        self._sharded = sharded
        self.counters = _AggregateCounters(sharded)

    @property
    def stats(self) -> PageCacheStats:
        total = PageCacheStats()
        for shard in self._sharded.shards:
            stats = shard.page_stats
            total.hits += stats.hits
            total.misses += stats.misses
            total.evictions += stats.evictions
            total.flushes += stats.flushes
        return total


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------


class ShardedTree:
    """One logical index served from K Hilbert-range shard files.

    Construct with :meth:`open` on a :func:`shard_pack` manifest; close
    (or use as a context manager) when done.  The facade exposes the
    same query surface as a single tree — :meth:`query`,
    :meth:`point_query`, :meth:`count_query`, :meth:`containment_query`,
    :meth:`knn`, :meth:`nearest` — by fanning out to the shards that can
    contribute (measured experiments should construct the sharded
    engines directly, exactly like the single-tree convenience
    methods recommend).  Updates go through :meth:`insert` /
    :meth:`delete`; :meth:`sync` makes the family a consistency point.
    """

    def __init__(
        self,
        path: pathlib.Path,
        shards: list[PagedTree],
        infos: list[ShardInfo],
        dim: int,
        fanout: int,
        block_size: int,
        order: int,
        size: int,
        next_oid: int,
        bounds: Rect | None,
        readonly: bool,
        generation: int = 0,
        injector: FaultInjector | None = None,
        health_baseline: dict | None = None,
    ) -> None:
        self.path = path
        self.shards = shards
        self.infos = infos
        self.dim = dim
        self.fanout = fanout
        self.block_size = block_size
        self.order = order
        self.size = size
        self.bounds = bounds
        self.generation = generation
        #: The family's pack-time tree-quality baseline (or None on a
        #: pre-baseline manifest); preserved verbatim across syncs.
        self.health_baseline = health.decode_baseline(health_baseline)
        self._injector = injector
        self._next_oid = max(next_oid, size)
        self._readonly = readonly
        self._route_his = [info.hilbert_hi for info in infos]
        self.store = _ShardedStoreView(self)
        self.shard_busy_s = [0.0] * len(shards)
        self._busy_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._pool_workers = 0
        self._pool_lock = threading.Lock()
        self._closed = False

    # -- construction --------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str | os.PathLike,
        values: dict[int, Any] | Callable[[int], Any] | None = None,
        cache_pages: int = DEFAULT_CACHE_PAGES,
        readonly: bool = False,
        mmap: bool = False,
        cache_analytics: bool = False,
        injector: FaultInjector | None = None,
    ) -> "ShardedTree":
        """Open a :func:`shard_pack` manifest and every shard it names.

        Parameters
        ----------
        path:
            The manifest file; shard files are resolved relative to it.
        values:
            Optional *family-wide* object-id → value mapping (dict or
            callable), shared by every shard — :func:`shard_pack`
            preserves the source tree's object ids across shards.
        cache_pages:
            Decoded-page budget **per shard**.
        readonly:
            Open every shard without write access; :meth:`insert` /
            :meth:`delete` are rejected up front.
        mmap:
            Serve each shard file's physical block access from a memory
            mapping (see
            :meth:`~repro.storage.paged.PagedTree.open`).
        cache_analytics:
            Attach a reuse-distance tracker to **each shard's** page
            store (see :meth:`~repro.storage.paged.PagedTree.open`).
        injector:
            Optional :class:`~repro.storage.faults.FaultInjector`
            shared by every shard store *and* the manifest writes —
            one injector models one process (crash testing).

        Raises :class:`ShardError` when the manifest is corrupt, a shard
        file is missing, or a shard file disagrees with the manifest
        (dim/fanout/size/MBR) — a family must be opened exactly as it
        was synced.  A version-2 manifest pins each shard to the store
        epoch recorded for it, so a crash that flipped some shards but
        never rewrote the manifest rolls the whole family back to the
        manifest's consistent cut.
        """
        manifest_path = pathlib.Path(path)
        doc = _load_manifest(manifest_path)
        bounds = _rect_from_json(doc.get("bounds"), str(manifest_path))

        shards: list[PagedTree] = []
        infos: list[ShardInfo] = []
        try:
            for i, entry in enumerate(doc["shard_files"]):
                where = f"{manifest_path} shard {i}"
                try:
                    info = ShardInfo(
                        file=entry["file"],
                        size=entry["size"],
                        height=entry["height"],
                        mbr=_rect_from_json(entry.get("mbr"), where),
                        hilbert_lo=entry["hilbert_lo"],
                        hilbert_hi=entry["hilbert_hi"],
                        n_blocks=entry["n_blocks"],
                        epoch=entry.get("epoch", 0),
                    )
                except (TypeError, KeyError) as exc:
                    raise ShardError(
                        f"{where}: manifest entry is missing {exc}"
                    ) from None
                shard_path = manifest_path.with_name(info.file)
                try:
                    shard = PagedTree.open(
                        shard_path,
                        values=values,
                        cache_pages=cache_pages,
                        readonly=readonly,
                        mmap=mmap,
                        cache_analytics=cache_analytics,
                        injector=injector,
                        # A v2 manifest names the epoch it acknowledged;
                        # pin the shard there so commits the manifest
                        # never saw are rolled back with the family.
                        at_epoch=(
                            info.epoch if doc["version"] >= 2 else None
                        ),
                    )
                except StorageError as exc:
                    raise ShardError(f"{where}: {exc}") from None
                shards.append(shard)
                cls._check_shard(where, shard, info, doc)
                infos.append(info)
            total = sum(info.size for info in infos)
            if total != doc["size"]:
                raise ShardError(
                    f"{manifest_path}: shards hold {total} entries, "
                    f"manifest promises {doc['size']}"
                )
        except Exception:
            for shard in shards:
                shard.page_store.file_store.close()
            raise
        return cls(
            manifest_path,
            shards,
            infos,
            dim=doc["dim"],
            fanout=doc["fanout"],
            block_size=doc["block_size"],
            order=doc["order"],
            size=doc["size"],
            next_oid=doc["next_oid"],
            bounds=bounds,
            readonly=readonly,
            generation=doc.get("generation", 0),
            injector=injector,
            health_baseline=doc.get("health_baseline"),
        )

    @staticmethod
    def _check_shard(
        where: str, shard: PagedTree, info: ShardInfo, doc: dict
    ) -> None:
        if shard.dim != doc["dim"] or shard.fanout != doc["fanout"]:
            raise ShardError(
                f"{where}: shard is dim={shard.dim} fanout={shard.fanout}, "
                f"manifest promises dim={doc['dim']} fanout={doc['fanout']}"
            )
        if shard.size != info.size:
            raise ShardError(
                f"{where}: shard file holds {shard.size} entries, "
                f"manifest promises {info.size}"
            )
        root = shard.root()
        actual = root.mbr() if root.entries else None
        if actual != info.mbr:
            raise ShardError(
                f"{where}: shard MBR mismatch — file has {actual}, "
                f"manifest promises {info.mbr}"
            )

    # -- introspection -------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def height(self) -> int:
        """Deepest shard's height (the family's worst root-to-leaf path)."""
        return max(shard.height for shard in self.shards)

    @property
    def readonly(self) -> bool:
        """True when every shard was opened without write access."""
        return self._readonly

    @property
    def counters(self) -> _AggregateCounters:
        """Family-wide logical I/O (summed over shards, snapshot-only)."""
        return self.store.counters

    @property
    def page_stats(self) -> PageCacheStats:
        """Family-wide physical page-cache statistics (summed)."""
        return self.store.stats

    def shard_mbr(self, i: int) -> Rect | None:
        """Shard ``i``'s *live* root MBR (``None`` when empty).

        Fan-out pruning uses this, not the manifest copy, so rectangles
        inserted since the last sync are never missed.
        """
        root = self.shards[i].root()
        return root.mbr() if root.entries else None

    def root(self) -> Node:
        """A synthetic internal node with one entry per non-empty shard.

        Gives the facade the same ``root().mbr()`` surface the server
        and the experiments use to learn an index's bounds.
        """
        entries = []
        for i in range(len(self.shards)):
            mbr = self.shard_mbr(i)
            if mbr is not None:
                entries.append((mbr, i))
        return Node(is_leaf=False, entries=entries)

    def shard_loads(self) -> list[ShardLoad]:
        """Cumulative per-shard load snapshots, in shard order."""
        loads = []
        for i, shard in enumerate(self.shards):
            counters = shard.store.counters
            stats = shard.page_stats
            loads.append(
                ShardLoad(
                    reads=counters.reads,
                    writes=counters.writes,
                    physical_reads=stats.misses,
                    pages_flushed=stats.flushes,
                    busy_s=self.shard_busy_s[i],
                )
            )
        return loads

    def _note_shard_time(self, i: int, seconds: float) -> None:
        """Engines report their per-shard execution time here.

        Locked: with ``workers > 1`` two engines (e.g. the window and
        point groups of one batch) can report for the same shard
        concurrently, and a bare ``+=`` on the list element would drop
        one of the updates.
        """
        with self._busy_lock:
            self.shard_busy_s[i] += seconds

    def fanout_pool(self, workers: int) -> ThreadPoolExecutor:
        """A persistent thread pool for multi-shard fan-out.

        Created lazily on first use and shut down by :meth:`close`, so
        engines do not pay thread creation per query.  The pool grows
        (is replaced) if a later caller asks for more workers; it is
        never shrunk.  Tasks must not submit back into the pool.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        with self._pool_lock:
            if self._pool is None or self._pool_workers < workers:
                old = self._pool
                self._pool = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix=f"shard-fanout-{self.path.name}",
                )
                self._pool_workers = workers
                if old is not None:
                    old.shutdown(wait=False)
            return self._pool

    def all_data(self) -> Iterator[tuple[Rect, Any]]:
        """Every stored (rectangle, value) pair, shard by shard (uncounted)."""
        for shard in self.shards:
            yield from shard.all_data()

    def __len__(self) -> int:
        return self.size

    # -- routing -------------------------------------------------------

    def route(self, rect: Rect) -> int:
        """Shard index owning ``rect``'s Hilbert rank.

        Ranges are contiguous in shard order; keys above the last
        shard's range (or in a gap between ranges) fall to the first
        shard whose upper bound is not below them, keys above everything
        to the last shard.  The routing bounds are the *pack-time*
        dataset bounds, so the same rectangle always routes to the same
        shard regardless of later growth.
        """
        if rect.dim != self.dim:
            raise ValueError(
                f"{rect.dim}-d rectangle against a {self.dim}-d index"
            )
        if self.bounds is None or len(self.shards) == 1:
            return 0
        key = hilbert_key_for_center(rect, self.bounds, self.order)
        for i, hi in enumerate(self._route_his):
            if key <= hi:
                return i
        return len(self.shards) - 1

    # -- updates -------------------------------------------------------

    def _require_writable(self) -> None:
        if self._readonly:
            raise StorageError(
                f"{self.path} was opened read-only; reopen with "
                "readonly=False to insert or delete"
            )

    def insert(self, rect: Rect, value: Any) -> int:
        """Insert a data rectangle into the shard owning its Hilbert rank.

        Returns the *family-wide* object id (ids keep incrementing from
        the packed tree's high-water mark, exactly like the single-file
        write path).  The target shard's id counter is seeded with the
        family counter first, so ids stay unique across shards and one
        merged object table serves the whole family on reopen.  Raises
        :class:`~repro.storage.filestore.StorageError` up front on a
        read-only family.
        """
        self._require_writable()
        shard = self.shards[self.route(rect)]
        shard._next_oid = max(shard._next_oid, self._next_oid)
        oid = shard.insert(rect, value)
        self._next_oid = oid + 1
        self.size += 1
        return oid

    def delete(self, rect: Rect, value: Any) -> bool:
        """Delete one matching data rectangle, broadcasting to shards.

        The owning shard (by Hilbert rank) is tried first, then every
        other shard whose live MBR intersects ``rect``; the first shard
        that finds a match wins.  Returns True when an entry was
        removed.
        """
        self._require_writable()
        first = self.route(rect)
        order = [first] + [i for i in range(len(self.shards)) if i != first]
        for i in order:
            mbr = self.shard_mbr(i)
            if mbr is None or not mbr.intersects(rect):
                continue
            if self.shards[i].delete(rect, value):
                self.size -= 1
                return True
        return False

    def sync(self) -> int:
        """Flush every dirty shard, then rewrite the manifest atomically.

        Each shard's :meth:`~repro.storage.paged.PagedTree.sync` is an
        atomic per-file commit (shadow pages + one header-slot flip);
        the manifest is then replaced in one ``os.replace`` recording
        the family's sizes, heights, MBRs, each shard's committed epoch
        and a bumped ``generation`` — either the old family or the new
        one is on disk, never a mix, and a crash after some shard flips
        but before the rename rolls the family back to the manifest's
        epochs on reopen.  Returns total pages flushed; a read-only
        family returns 0.  A sync with nothing new to commit (no shard
        epoch moved since the manifest was last written) skips the
        rewrite, so ``close()`` right after a ``sync()`` does not burn
        a generation.
        """
        if self._readonly:
            return 0
        flushed = sum(shard.sync() for shard in self.shards)
        if [info.epoch for info in self.infos] == [
            shard.page_store.file_store.commit_epoch for shard in self.shards
        ]:
            return flushed
        self.generation += 1
        self.infos = [
            replace(
                info,
                size=shard.size,
                height=shard.height,
                mbr=self.shard_mbr(i),
                epoch=shard.page_store.file_store.commit_epoch,
            )
            for i, (info, shard) in enumerate(zip(self.infos, self.shards))
        ]
        _write_manifest(
            self.path,
            dim=self.dim,
            fanout=self.fanout,
            block_size=self.block_size,
            order=self.order,
            size=self.size,
            next_oid=self._next_oid,
            bounds=self.bounds,
            infos=self.infos,
            generation=self.generation,
            injector=self._injector,
            health_baseline=self.health_baseline,
        )
        return flushed

    def close(self) -> None:
        """Sync pending writes and close every shard (idempotent)."""
        if self._closed:
            return
        crashed = self._injector is not None and self._injector.crashed
        if not self._readonly and not crashed:
            self.sync()
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
        for shard in self.shards:
            shard.page_store.file_store.close()
        self._closed = True

    def __enter__(self) -> "ShardedTree":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- convenience query surface ------------------------------------

    def query(self, window: Rect) -> list[tuple[Rect, Any]]:
        """One-off window query over the whole family.

        For measured experiments construct a :class:`ShardedQueryEngine`
        directly — it exposes merged statistics and keeps its per-shard
        internal-node pools warm across a workload.
        """
        matches, _ = ShardedQueryEngine(self).query(window)
        return matches

    def count_query(self, window: Rect) -> int:
        """Number of stored rectangles intersecting ``window``."""
        count, _ = ShardedPointEngine(self).count(window)
        return count

    def point_query(self, point: Sequence[float]) -> list[tuple[Rect, Any]]:
        """One-off stabbing query over the whole family."""
        matches, _ = ShardedPointEngine(self).point_query(point)
        return matches

    def containment_query(self, window: Rect) -> list[tuple[Rect, Any]]:
        """One-off containment query over the whole family."""
        matches, _ = ShardedPointEngine(self).containment_query(window)
        return matches

    def knn(self, target, k: int) -> list[Neighbor]:
        """One-off k-nearest-neighbors over the whole family."""
        neighbors, _ = ShardedKNNEngine(self).knn(target, k)
        return neighbors

    def nearest(self, target) -> Iterator[Neighbor]:
        """Incremental nearest-neighbor stream over the whole family."""
        return ShardedKNNEngine(self).nearest(target)

    def __repr__(self) -> str:
        return (
            f"ShardedTree({self.path.name}, shards={len(self.shards)}, "
            f"dim={self.dim}, fanout={self.fanout}, size={self.size})"
        )


def open_index(
    path: str | os.PathLike,
    values: dict[int, Any] | Callable[[int], Any] | None = None,
    cache_pages: int = DEFAULT_CACHE_PAGES,
    readonly: bool = False,
    mmap: bool = False,
    cache_analytics: bool = False,
    injector: FaultInjector | None = None,
) -> PagedTree | ShardedTree:
    """Open a packed index, whatever its shape.

    A :func:`shard_pack` manifest (JSON, starts with ``{``) opens as a
    :class:`ShardedTree`; anything else is treated as a single
    :func:`~repro.storage.paged.pack_tree` file and opens as a
    :class:`~repro.storage.paged.PagedTree`.  ``mmap=True`` serves the
    file(s) from memory mappings; ``injector`` attaches a fault
    injector to every store the open touches (crash testing).
    """
    resolved = pathlib.Path(path)
    if not resolved.exists():
        raise StorageError(f"no index file at {resolved}")
    with open(resolved, "rb") as handle:
        head = handle.read(1)
    if head == b"{":
        return ShardedTree.open(
            resolved,
            values=values,
            cache_pages=cache_pages,
            readonly=readonly,
            mmap=mmap,
            cache_analytics=cache_analytics,
            injector=injector,
        )
    return PagedTree.open(
        resolved,
        values=values,
        cache_pages=cache_pages,
        readonly=readonly,
        mmap=mmap,
        cache_analytics=cache_analytics,
        injector=injector,
    )


# ----------------------------------------------------------------------
# Sharded engines: the fan-out/merge layer
# ----------------------------------------------------------------------


class _ShardedFanout:
    """Shared plumbing of the sharded engines: shard selection, optional
    thread-pool fan-out, deterministic merge order, per-shard timing.

    ``workers > 1`` executes a multi-shard fan-out on a thread pool —
    safe because each shard has its own sub-engine (own internal-node
    pool) and the paged read path is locked per shard.  Results always
    merge in shard order, so answers and statistics are independent of
    scheduling.
    """

    def __init__(self, sharded: ShardedTree, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.sharded = sharded
        self.workers = workers
        self.totals = QueryStats()

    def _intersecting(self, predicate: Callable[[Rect], bool]) -> list[int]:
        """Shard indices whose live MBR satisfies ``predicate``."""
        return [
            i
            for i in range(self.sharded.n_shards)
            if (mbr := self.sharded.shard_mbr(i)) is not None
            and predicate(mbr)
        ]

    def _fan_out(
        self, indices: list[int], task: Callable[[int], Any]
    ) -> list[Any]:
        """Run ``task`` per shard, in parallel when allowed; results in
        ``indices`` order.

        When the calling context is traced (or carries an attribution
        tap), each shard task runs under its own scoped tap — folded
        into the caller's on exit, so batch/request I/O totals stay
        exact across the pool hop — and records a per-shard span on its
        own trace track (parallel shards must not share a Perfetto row).
        """
        trace = current_trace()
        observed = trace is not None or active_tap() is not None

        def timed(i: int):
            start = time.perf_counter()
            try:
                if not observed:
                    with profile_phase(f"shard:{i}"):
                        return task(i)
                with scoped_tap() as tap, profile_phase(f"shard:{i}"):
                    try:
                        return task(i)
                    finally:
                        if trace is not None:
                            trace.add_span(
                                f"shard:{i}",
                                start,
                                time.perf_counter(),
                                cat="shard",
                                track=i + 1,
                                io=tap.snapshot(),
                            )
            finally:
                self.sharded._note_shard_time(
                    i, time.perf_counter() - start
                )

        if self.workers > 1 and len(indices) > 1:
            pool = self.sharded.fanout_pool(self.workers)
            if observed:
                # Pool threads do not inherit this context: ship a copy
                # (active tap and trace) with every shard task.
                jobs = [(contextvars.copy_context(), i) for i in indices]
                return list(
                    pool.map(lambda job: job[0].run(timed, job[1]), jobs)
                )
            return list(pool.map(timed, indices))
        return [timed(i) for i in indices]

    def _merge_stats(self, parts: list[QueryStats]) -> QueryStats:
        """Combine per-shard stats into one facade-level query's stats."""
        merged = QueryStats(queries=1)
        for part in parts:
            merged.leaf_reads += part.leaf_reads
            merged.internal_reads += part.internal_reads
            merged.internal_visits += part.internal_visits
            merged.reported += part.reported
        self.totals.merge(merged)
        return merged

    def per_shard_totals(self) -> list[QueryStats]:
        """Each shard sub-engine's accumulated totals, in shard order.

        The numerators of the I/O-balance tables: a well-partitioned
        family spreads a uniform workload's leaf reads evenly here.
        """
        return [replace(sub.totals) for sub in self._subs]

    def reset(self) -> None:
        """Clear accumulated totals (per-shard caches stay warm)."""
        self.totals = QueryStats()


class ShardedQueryEngine(_ShardedFanout):
    """Window queries over a sharded family.

    One :class:`~repro.rtree.query.QueryEngine` per shard keeps each
    shard's internal nodes pooled across queries; a query fans out only
    to shards whose live MBR intersects the window and concatenates the
    matches in shard order.
    """

    def __init__(
        self,
        sharded: ShardedTree,
        cache_internal: bool = True,
        workers: int = 1,
    ) -> None:
        super().__init__(sharded, workers)
        self._subs = [
            QueryEngine(shard, cache_internal) for shard in sharded.shards
        ]

    def query(self, window: Rect) -> tuple[list[tuple[Rect, Any]], QueryStats]:
        if window.dim != self.sharded.dim:
            raise ValueError(
                f"{window.dim}-d window against a {self.sharded.dim}-d index"
            )
        indices = self._intersecting(window.intersects)
        parts = self._fan_out(indices, lambda i: self._subs[i].query(window))
        matches: list[tuple[Rect, Any]] = []
        for found, _ in parts:
            matches.extend(found)
        return matches, self._merge_stats([stats for _, stats in parts])


class ShardedPointEngine(_ShardedFanout):
    """Point / containment / count queries over a sharded family."""

    def __init__(
        self,
        sharded: ShardedTree,
        cache_internal: bool = True,
        workers: int = 1,
    ) -> None:
        super().__init__(sharded, workers)
        self._subs = [
            PointQueryEngine(shard, cache_internal)
            for shard in sharded.shards
        ]

    def point_query(
        self, point: Sequence[float]
    ) -> tuple[list[tuple[Rect, Any]], QueryStats]:
        point = tuple(float(c) for c in point)
        if len(point) != self.sharded.dim:
            raise ValueError(
                f"{len(point)}-d point against a {self.sharded.dim}-d index"
            )
        indices = self._intersecting(lambda mbr: mbr.contains_point(point))
        parts = self._fan_out(
            indices, lambda i: self._subs[i].point_query(point)
        )
        matches: list[tuple[Rect, Any]] = []
        for found, _ in parts:
            matches.extend(found)
        return matches, self._merge_stats([stats for _, stats in parts])

    def containment_query(
        self, window: Rect
    ) -> tuple[list[tuple[Rect, Any]], QueryStats]:
        if window.dim != self.sharded.dim:
            raise ValueError(
                f"{window.dim}-d window against a {self.sharded.dim}-d index"
            )
        indices = self._intersecting(window.intersects)
        parts = self._fan_out(
            indices, lambda i: self._subs[i].containment_query(window)
        )
        matches: list[tuple[Rect, Any]] = []
        for found, _ in parts:
            matches.extend(found)
        return matches, self._merge_stats([stats for _, stats in parts])

    def count(self, window: Rect) -> tuple[int, QueryStats]:
        if window.dim != self.sharded.dim:
            raise ValueError(
                f"{window.dim}-d window against a {self.sharded.dim}-d index"
            )
        indices = self._intersecting(window.intersects)
        parts = self._fan_out(indices, lambda i: self._subs[i].count(window))
        total = sum(count for count, _ in parts)
        return total, self._merge_stats([stats for _, stats in parts])


#: kNN merge-heap tags: open this shard's stream vs consume this stream.
_SHARD, _STREAM = 0, 1


class ShardedKNNEngine(_ShardedFanout):
    """Best-first kNN merge over per-shard incremental streams.

    Each shard contributes a lazy
    :meth:`~repro.queries.knn.KNNEngine.nearest` stream; a merge heap
    holds, for every shard, either its root MINDIST (stream not yet
    opened) or its next pending neighbor.  A shard's stream is opened —
    and starts paying I/O — only when its root MINDIST reaches the head
    of the heap, so shards that cannot contribute to the global top-k
    are never read at all.  Neighbors pop in globally nondecreasing
    distance order, exactly like the single-tree engine.

    The merge is inherently sequential, so ``workers`` is ignored here.
    """

    def __init__(
        self,
        sharded: ShardedTree,
        cache_internal: bool = True,
        workers: int = 1,
    ) -> None:
        super().__init__(sharded, workers)
        self._subs = [
            KNNEngine(shard, cache_internal) for shard in sharded.shards
        ]

    def nearest(self, target) -> Iterator[Neighbor]:
        """Incrementally yield family-wide neighbors by distance."""
        target_dim = target.dim if isinstance(target, Rect) else len(target)
        if target_dim != self.sharded.dim:
            raise ValueError(
                f"{target_dim}-d target against a {self.sharded.dim}-d index"
            )
        return self._nearest(target)

    def _nearest(self, target) -> Iterator[Neighbor]:
        target_rect = target if isinstance(target, Rect) else None
        heap: list[tuple[float, int, int, Any]] = []
        counter = 0
        for i in range(self.sharded.n_shards):
            mbr = self.sharded.shard_mbr(i)
            if mbr is None:
                continue
            dist_sq = (
                mbr.dist_sq_to_rect(target_rect)
                if target_rect is not None
                else mbr.dist_sq_to_point(target)
            )
            heap.append((math.sqrt(dist_sq), counter, _SHARD, i))
            counter += 1
        heapq.heapify(heap)
        while heap:
            _, _, kind, payload = heapq.heappop(heap)
            if kind == _SHARD:
                start = time.perf_counter()
                stream = self._subs[payload].nearest(target)
                head = next(stream, None)
                self.sharded._note_shard_time(
                    payload, time.perf_counter() - start
                )
                if head is not None:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (head.distance, counter, _STREAM, (payload, head, stream)),
                    )
                continue
            shard, head, stream = payload
            yield head
            start = time.perf_counter()
            following = next(stream, None)
            self.sharded._note_shard_time(
                shard, time.perf_counter() - start
            )
            if following is not None:
                counter += 1
                heapq.heappush(
                    heap,
                    (following.distance, counter, _STREAM,
                     (shard, following, stream)),
                )

    def knn(self, target, k: int) -> tuple[list[Neighbor], QueryStats]:
        """The family-wide k nearest neighbors of ``target``."""
        if k < 0:
            raise ValueError("k must be >= 0")
        before = [replace(sub.totals) for sub in self._subs]
        neighbors: list[Neighbor] = []
        it = self.nearest(target)  # validates the target even when k == 0
        if k > 0:
            for neighbor in it:
                neighbors.append(neighbor)
                if len(neighbors) == k:
                    break
        deltas = [
            QueryStats(
                leaf_reads=sub.totals.leaf_reads - b.leaf_reads,
                internal_reads=sub.totals.internal_reads - b.internal_reads,
                internal_visits=sub.totals.internal_visits - b.internal_visits,
                reported=sub.totals.reported - b.reported,
            )
            for sub, b in zip(self._subs, before)
        ]
        return neighbors, self._merge_stats(deltas)


class ShardedJoinEngine:
    """Spatial join where either (or both) sides is a sharded family.

    Each side decomposes into its component trees (a plain tree is one
    component; a :class:`ShardedTree` is one per shard); the join runs a
    :class:`~repro.queries.join.SpatialJoinEngine` for every component
    pair whose root MBRs intersect, concatenating the pairs and summing
    the statistics in pair order.  Because shards partition their
    side's data, every intersecting data pair is reported exactly once.
    Component-pair engines are cached, so repeated joins keep their
    internal-node pools warm; ``workers > 1`` fans component pairs out
    on a thread pool.
    """

    def __init__(
        self,
        left: RTree | ShardedTree,
        right: RTree | ShardedTree,
        cache_internal: bool = True,
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if left.dim != right.dim:
            raise ValueError(
                f"cannot join a {left.dim}-d index with a {right.dim}-d index"
            )
        self._left = left
        self._right = right
        self._cache_internal = cache_internal
        self.workers = workers
        self._engines: dict[tuple[int, int], SpatialJoinEngine] = {}
        self.totals = JoinStats()

    @staticmethod
    def _components(
        side: RTree | ShardedTree,
    ) -> list[tuple[int | None, RTree]]:
        """(shard index, tree) components; index None for a plain tree."""
        if isinstance(side, ShardedTree):
            return list(enumerate(side.shards))
        return [(None, side)]

    def _engine(self, li: int, lt: RTree, ri: int, rt: RTree):
        engine = self._engines.get((li, ri))
        if engine is None:
            engine = SpatialJoinEngine(lt, rt, self._cache_internal)
            self._engines[(li, ri)] = engine
        return engine

    def join(self) -> tuple[list, JoinStats]:
        """Report every intersecting (left, right) data-rectangle pair."""
        tasks: list[tuple[int, RTree, int, RTree]] = []
        for li, ltree in self._components(self._left):
            lroot = ltree.root()
            if not lroot.entries:
                continue
            lmbr = lroot.mbr()
            for ri, rtree in self._components(self._right):
                rroot = rtree.root()
                if not rroot.entries:
                    continue
                if lmbr.intersects(rroot.mbr()):
                    tasks.append((li, ltree, ri, rtree))

        def run(task):
            li, ltree, ri, rtree = task
            start = time.perf_counter()
            try:
                return self._engine(li, ltree, ri, rtree).join()
            finally:
                elapsed = time.perf_counter() - start
                if isinstance(self._left, ShardedTree):
                    self._left._note_shard_time(li, elapsed)
                elif isinstance(self._right, ShardedTree):
                    self._right._note_shard_time(ri, elapsed)

        if self.workers > 1 and len(tasks) > 1:
            owner = (
                self._left
                if isinstance(self._left, ShardedTree)
                else self._right
            )
            pool = owner.fanout_pool(self.workers)
            if current_trace() is not None or active_tap() is not None:
                # Keep attribution exact across the pool hop: each task
                # carries a copy of this context and its own scoped tap.
                def run_attributed(job):
                    ctx, task = job
                    def scoped():
                        with scoped_tap():
                            return run(task)
                    return ctx.run(scoped)

                jobs = [
                    (contextvars.copy_context(), task) for task in tasks
                ]
                parts = list(pool.map(run_attributed, jobs))
            else:
                parts = list(pool.map(run, tasks))
        else:
            parts = [run(task) for task in tasks]

        out: list = []
        stats = JoinStats(joins=1)
        for pairs, part in parts:
            out.extend(pairs)
            stats.left.merge(part.left)
            stats.right.merge(part.right)
            stats.pairs += part.pairs
            stats.node_pairs += part.node_pairs
        self.totals.merge(stats)
        return out, stats

    def reset(self) -> None:
        """Clear accumulated totals (component-pair caches stay warm)."""
        self.totals = JoinStats()
