"""d-dimensional Hilbert space-filling curve (Skilling's algorithm).

The packed Hilbert R-tree sorts input rectangles "according to the Hilbert
values of their centers", and the four-dimensional Hilbert R-tree sorts them
by the positions of their corner points ``(xmin, ymin, xmax, ymax)`` on the
four-dimensional Hilbert curve (paper Section 1.1).  Both need a Hilbert
curve in arbitrary dimension: d for centers, 2d for corner points.

This module implements John Skilling's bit-transposition algorithm
("Programming the Hilbert curve", AIP Conf. Proc. 707, 2004), which converts
between a point on the 2^order × ... × 2^order integer grid and its index
along the Hilbert curve in O(dim · order) bit operations, for any dimension.

Two layers are provided:

* the exact integer grid mapping — :func:`hilbert_index` and its inverse
  :func:`hilbert_point`; these are exact bijections and are what the
  property-based tests exercise;
* float-coordinate convenience keys for rectangles —
  :func:`hilbert_key_for_center` (packed Hilbert, H) and
  :func:`hilbert_key_for_corners` (four-dimensional Hilbert, H4) — which
  quantize coordinates onto the grid relative to a bounding box of the
  dataset.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.rect import Rect

#: Default bits of precision per axis used by the bulk loaders.  16 bits per
#: axis gives a 2^32 grid in 2D and 2^64 in the 4D corner space — far finer
#: than any dataset in the experiments, so ties are effectively impossible.
DEFAULT_ORDER = 16


# ----------------------------------------------------------------------
# Skilling's transform on "transposed" indices
# ----------------------------------------------------------------------
#
# Skilling represents a Hilbert index of dim*order bits as `dim` integers of
# `order` bits each ("transposed" form): bit k of component i is bit
# (k*dim + i) of the index, counting from the most significant end.


def _axes_to_transpose(coords: Sequence[int], order: int) -> list[int]:
    """Map grid coordinates to the transposed Hilbert index (in place copy)."""
    x = list(coords)
    n = len(x)
    m = 1 << (order - 1)
    # Inverse undo excess work.
    q = m
    while q > 1:
        p = q - 1
        for i in range(n):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, n):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[n - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(n):
        x[i] ^= t
    return x


def _transpose_to_axes(transposed: Sequence[int], order: int) -> list[int]:
    """Inverse of :func:`_axes_to_transpose`."""
    x = list(transposed)
    n = len(x)
    top = 2 << (order - 1)
    # Gray decode by H ^ (H/2).
    t = x[n - 1] >> 1
    for i in range(n - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    # Undo excess work.
    q = 2
    while q != top:
        p = q - 1
        for i in range(n - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return x


def _transpose_to_index(transposed: Sequence[int], order: int) -> int:
    """Interleave transposed components into a single integer index."""
    n = len(transposed)
    index = 0
    for bit in range(order - 1, -1, -1):
        for i in range(n):
            index = (index << 1) | ((transposed[i] >> bit) & 1)
    return index


def _index_to_transpose(index: int, dim: int, order: int) -> list[int]:
    """Split an integer index back into transposed components."""
    x = [0] * dim
    for pos in range(dim * order):
        bit = (index >> (dim * order - 1 - pos)) & 1
        axis = pos % dim
        x[axis] = (x[axis] << 1) | bit
    return x


# ----------------------------------------------------------------------
# Public integer-grid API
# ----------------------------------------------------------------------


def hilbert_index(coords: Sequence[int], order: int) -> int:
    """Hilbert-curve index of a grid point.

    Parameters
    ----------
    coords:
        Integer grid coordinates, each in ``[0, 2**order)``.  The length of
        the sequence is the curve's dimension.
    order:
        Bits of precision per axis.

    Returns
    -------
    int
        Position of the point along the Hilbert curve, in
        ``[0, 2**(dim*order))``.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    limit = 1 << order
    for c in coords:
        if not 0 <= c < limit:
            raise ValueError(
                f"coordinate {c} outside grid [0, {limit}) for order {order}"
            )
    return _transpose_to_index(_axes_to_transpose(coords, order), order)


def hilbert_point(index: int, dim: int, order: int) -> tuple[int, ...]:
    """Inverse of :func:`hilbert_index`: grid point at curve position."""
    if order < 1:
        raise ValueError("order must be >= 1")
    if dim < 1:
        raise ValueError("dim must be >= 1")
    if not 0 <= index < (1 << (dim * order)):
        raise ValueError("index outside the curve")
    return tuple(_transpose_to_axes(_index_to_transpose(index, dim, order), order))


# ----------------------------------------------------------------------
# Float-coordinate keys for rectangles
# ----------------------------------------------------------------------


def _quantize(value: float, lo: float, hi: float, order: int) -> int:
    """Map ``value`` in ``[lo, hi]`` onto the integer grid ``[0, 2**order)``."""
    cells = 1 << order
    if hi <= lo:
        return 0
    cell = int((value - lo) / (hi - lo) * cells)
    if cell < 0:
        return 0
    if cell >= cells:
        return cells - 1
    return cell


def hilbert_key_for_center(
    rect: Rect, bounds: Rect, order: int = DEFAULT_ORDER
) -> int:
    """Hilbert value of the rectangle's *center* (packed Hilbert R-tree, H).

    The center is quantized to a ``2**order`` grid over the *square* cover
    of ``bounds`` (side = the bounds' longest side, anchored at the lower
    corner) and mapped with the d-dimensional Hilbert curve.

    Uniform scaling — the same world-units-per-cell on every axis, rather
    than stretching each axis to the full grid — is how spatial systems
    compute Hilbert keys for same-unit coordinates, and it is what the
    paper's Theorem 3 construction exploits: on the wide-flat bit-reversal
    dataset the curve sweeps one aligned square block (= one point column)
    at a time, so the packed Hilbert R-tree makes a leaf per column.
    """
    side = max(hi - lo for lo, hi in zip(bounds.lo, bounds.hi))
    coords = [
        _quantize(c, lo, lo + side, order)
        for c, lo in zip(rect.center(), bounds.lo)
    ]
    return hilbert_index(coords, order)


def hilbert_key_for_corners(
    rect: Rect, bounds: Rect, order: int = DEFAULT_ORDER
) -> int:
    """Hilbert value of the 2d-dimensional corner point (H4 R-tree).

    The rectangle is first mapped to ``(lo..., hi...)`` — the paper's
    ``(xmin, ymin, xmax, ymax)`` in 2D — then all 2d coordinates are
    quantized at the same uniform scale (see
    :func:`hilbert_key_for_center`) and the point is placed on the
    2d-dimensional Hilbert curve.
    """
    side = max(hi - lo for lo, hi in zip(bounds.lo, bounds.hi))
    point = rect.corner_point()
    anchors = list(bounds.lo) * 2
    coords = [
        _quantize(c, lo, lo + side, order) for c, lo in zip(point, anchors)
    ]
    return hilbert_index(coords, order)
