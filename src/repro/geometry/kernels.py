"""Vectorized geometry kernels over structure-of-arrays node frames.

PR 7's phase-attributed profiler put the traversal CPU where the ROADMAP
suspected it: per-entry Python ``Rect`` method calls inside ``engine:*``
phases.  This module is the fix — the pyrtree idiom of holding a node's
geometry as two contiguous ``(n, d)`` coordinate arrays (``lo`` rows and
``hi`` rows) and evaluating the *whole node* in one numpy expression,
plus DMR-XPath-style set-at-a-time variants that evaluate a **batch of
query windows against one frame** in a single ``(m, n)`` broadcast.

Three tiers, one source of truth:

* **Scalar kernels** (``intersects``/``dist_sq_rect``/``enlargement``
  ...) operate on plain ``lo``/``hi`` coordinate tuples.
  :class:`~repro.geometry.rect.Rect` delegates its predicate and
  distance math here, so the scalar and vector paths literally share
  arithmetic and cannot drift apart.
* **Frame kernels** (``frame_*``) evaluate one query against every row
  of a coordinate table at once and return matching row indices (or a
  per-row value array).
* **Batch kernels** (``batch_*``) evaluate ``m`` queries against the
  same table in one broadcast — the compute layout matching the query
  server's Hilbert locality reordering, which already lands co-located
  windows on the same pages.

Every kernel has a pure-Python fallback used when numpy is absent (or
disabled with ``REPRO_NO_NUMPY=1``), operating on tuple-of-rows tables;
dispatch is by table type, so frames built under either backend always
evaluate correctly.  Fallback results are **bit-identical** to the numpy
path: both compute the same IEEE-754 operations in the same order (axis
order for sums/products, entry order for scans), which the differential
suite in ``tests/integration/test_vectorized_differential.py`` verifies
against the scalar oracle for every engine.

``coord_table`` is the canonical constructor: it turns a list of
coordinate rows into whichever representation the active backend wants,
and everything downstream (``NodeFrame``, the codec's array decoder)
goes through it.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.obs.profiler import pop_phase, push_phase

__all__ = [
    "HAVE_NUMPY",
    "BACKEND",
    "np",
    "coord_table",
    "table_len",
    "table_row",
    "table_column",
    # scalar kernels
    "intersects",
    "contains",
    "contains_point",
    "dist_sq_to_point",
    "dist_sq_to_rect",
    "area",
    "enlargement",
    # frame kernels
    "frame_intersecting",
    "frame_containing_point",
    "frame_contained_in",
    "frame_dist_sq_to_point",
    "frame_dist_sq_to_rect",
    "frame_enlargement",
    "frame_mbr",
    "frame_count_intersecting",
    "frame_pair_mask",
    # batch kernels
    "batch_windows",
    "batch_intersecting",
]

if os.environ.get("REPRO_NO_NUMPY"):
    np = None
else:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
        np = None

#: True when the vectorized backend is active.
HAVE_NUMPY = np is not None
#: Human-readable backend tag, reported in trace span notes and tables.
BACKEND = "numpy" if HAVE_NUMPY else "python"


# ----------------------------------------------------------------------
# Coordinate tables
# ----------------------------------------------------------------------


def coord_table(rows: Sequence[Sequence[float]], dim: int):
    """Build a coordinate table from ``n`` rows of ``dim`` floats.

    Returns a C-contiguous ``(n, dim)`` float64 array under numpy, or a
    tuple of float tuples under the fallback — the two table shapes
    every kernel below dispatches between.
    """
    if HAVE_NUMPY:
        out = np.array(rows, dtype=np.float64)
        return out.reshape(len(rows), dim) if len(rows) else out.reshape(0, dim)
    return tuple(tuple(float(c) for c in row) for row in rows)


def table_len(table) -> int:
    """Number of rows in a coordinate table."""
    return len(table)


def as_coords(coords):
    """One coordinate row in the active backend's preferred form.

    Engines convert a query's ``lo``/``hi`` once per query and hand the
    result to every frame kernel, so the per-node calls skip the
    tuple-to-array conversion under numpy.
    """
    if HAVE_NUMPY:
        return np.asarray(coords, dtype=np.float64)
    return coords


def table_row(table, i: int) -> tuple[float, ...]:
    """Row ``i`` as a tuple of Python floats (for Rect materialization)."""
    if HAVE_NUMPY and isinstance(table, np.ndarray):
        return tuple(table[i].tolist())
    return table[i]


def table_column(table, k: int) -> list[float]:
    """Column ``k`` as a list of Python floats (the join's sweep keys)."""
    if HAVE_NUMPY and isinstance(table, np.ndarray):
        return table[:, k].tolist()
    return [row[k] for row in table]


def _is_array(table) -> bool:
    return HAVE_NUMPY and isinstance(table, np.ndarray)


def _kernel_phase(fn):
    """Attribute a kernel's samples to its own ``kernel:<op>`` phase.

    One integer check per call when no profiler is running (the
    vocabulary contract in :data:`repro.obs.profiler.PHASE_VOCABULARY`);
    under an active profiler the kernel shows up as its own self-time
    row nested inside the enclosing ``engine:*`` phase.
    """
    name = "kernel:" + fn.__name__

    def wrapper(*args):
        if not push_phase(name):
            return fn(*args)
        try:
            return fn(*args)
        finally:
            pop_phase()

    wrapper.__name__ = fn.__name__
    wrapper.__qualname__ = fn.__qualname__
    wrapper.__doc__ = fn.__doc__
    wrapper.__wrapped__ = fn
    return wrapper


# ----------------------------------------------------------------------
# Scalar kernels (the single source of the geometric arithmetic)
# ----------------------------------------------------------------------


def intersects(a_lo, a_hi, b_lo, b_hi) -> bool:
    """Closed-box intersection (boundary contact counts)."""
    for al, ah, bl, bh in zip(a_lo, a_hi, b_lo, b_hi):
        if ah < bl or bh < al:
            return False
    return True


def contains(a_lo, a_hi, b_lo, b_hi) -> bool:
    """True when box ``b`` lies entirely inside box ``a``."""
    for al, ah, bl, bh in zip(a_lo, a_hi, b_lo, b_hi):
        if bl < al or bh > ah:
            return False
    return True


def contains_point(lo, hi, point) -> bool:
    """True when ``point`` lies inside or on the boundary of the box."""
    for a, b, p in zip(lo, hi, point):
        if p < a or p > b:
            return False
    return True


def dist_sq_to_point(lo, hi, point) -> float:
    """Squared Euclidean distance from ``point`` to the box (0 inside)."""
    acc = 0.0
    for a, b, p in zip(lo, hi, point):
        if p < a:
            d = a - p
            acc += d * d
        elif p > b:
            d = p - b
            acc += d * d
    return acc


def dist_sq_to_rect(a_lo, a_hi, b_lo, b_hi) -> float:
    """Squared distance between the closest points of two boxes."""
    acc = 0.0
    for al, ah, bl, bh in zip(a_lo, a_hi, b_lo, b_hi):
        if ah < bl:
            d = bl - ah
            acc += d * d
        elif bh < al:
            d = al - bh
            acc += d * d
    return acc


def area(lo, hi) -> float:
    """d-dimensional volume of a box."""
    out = 1.0
    for a, b in zip(lo, hi):
        out *= b - a
    return out


def enlargement(a_lo, a_hi, b_lo, b_hi) -> float:
    """Area increase of box ``a`` needed to also cover box ``b``.

    Guttman's insertion criterion, computed exactly like the historical
    ``Rect.union(other).area() - self.area()`` (same operation order).
    """
    union = 1.0
    for al, ah, bl, bh in zip(a_lo, a_hi, b_lo, b_hi):
        union *= max(ah, bh) - min(al, bl)
    return union - area(a_lo, a_hi)


# ----------------------------------------------------------------------
# Frame kernels: one query x every row of a coordinate table
# ----------------------------------------------------------------------


@_kernel_phase
def frame_intersecting(lo, hi, q_lo, q_hi) -> list[int]:
    """Row indices whose box intersects the query box, ascending."""
    if len(lo) == 0:
        return []
    if _is_array(lo):
        mask = ((hi >= q_lo) & (lo <= q_hi)).all(axis=1)
        return np.nonzero(mask)[0].tolist()
    return [
        i
        for i in range(len(lo))
        if intersects(lo[i], hi[i], q_lo, q_hi)
    ]


@_kernel_phase
def frame_containing_point(lo, hi, point) -> list[int]:
    """Row indices whose box contains ``point`` (stabbing), ascending."""
    if len(lo) == 0:
        return []
    if _is_array(lo):
        p = np.asarray(point, dtype=np.float64)
        mask = ((lo <= p) & (hi >= p)).all(axis=1)
        return np.nonzero(mask)[0].tolist()
    return [
        i for i in range(len(lo)) if contains_point(lo[i], hi[i], point)
    ]


@_kernel_phase
def frame_contained_in(lo, hi, q_lo, q_hi) -> list[int]:
    """Row indices whose box lies entirely inside the query box."""
    if len(lo) == 0:
        return []
    if _is_array(lo):
        mask = ((lo >= q_lo) & (hi <= q_hi)).all(axis=1)
        return np.nonzero(mask)[0].tolist()
    return [
        i
        for i in range(len(lo))
        if contains(q_lo, q_hi, lo[i], hi[i])
    ]


@_kernel_phase
def frame_count_intersecting(lo, hi, q_lo, q_hi) -> int:
    """Number of rows intersecting the query box (no index list built)."""
    if len(lo) == 0:
        return 0
    if _is_array(lo):
        return int(((hi >= q_lo) & (lo <= q_hi)).all(axis=1).sum())
    n = 0
    for i in range(len(lo)):
        if intersects(lo[i], hi[i], q_lo, q_hi):
            n += 1
    return n


@_kernel_phase
def frame_dist_sq_to_point(lo, hi, point) -> list[float]:
    """Per-row squared MINDIST from ``point`` (kNN expansion order)."""
    if len(lo) == 0:
        return []
    if _is_array(lo):
        p = np.asarray(point, dtype=np.float64)
        below = np.maximum(lo - p, 0.0)
        above = np.maximum(p - hi, 0.0)
        d = below + above  # at most one side is nonzero per axis
        return (d * d).sum(axis=1).tolist()
    return [dist_sq_to_point(lo[i], hi[i], point) for i in range(len(lo))]


@_kernel_phase
def frame_dist_sq_to_rect(lo, hi, q_lo, q_hi) -> list[float]:
    """Per-row squared MINDIST from a query box."""
    if len(lo) == 0:
        return []
    if _is_array(lo):
        ql = np.asarray(q_lo, dtype=np.float64)
        qh = np.asarray(q_hi, dtype=np.float64)
        below = np.maximum(ql - hi, 0.0)
        above = np.maximum(lo - qh, 0.0)
        d = below + above
        return (d * d).sum(axis=1).tolist()
    return [
        dist_sq_to_rect(lo[i], hi[i], q_lo, q_hi) for i in range(len(lo))
    ]


@_kernel_phase
def frame_enlargement(lo, hi, q_lo, q_hi) -> list[float]:
    """Per-row enlargement needed to also cover the query box.

    Vectorizes Guttman's ChooseLeaf criterion over a whole node.
    """
    if len(lo) == 0:
        return []
    if _is_array(lo):
        ql = np.asarray(q_lo, dtype=np.float64)
        qh = np.asarray(q_hi, dtype=np.float64)
        union = (np.maximum(hi, qh) - np.minimum(lo, ql)).prod(axis=1)
        return (union - (hi - lo).prod(axis=1)).tolist()
    return [
        enlargement(lo[i], hi[i], q_lo, q_hi) for i in range(len(lo))
    ]


def frame_mbr(lo, hi) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Tight bounding box of every row: ``(lo, hi)`` coordinate tuples."""
    if len(lo) == 0:
        raise ValueError("empty frame has no bounding box")
    if _is_array(lo):
        return tuple(lo.min(axis=0).tolist()), tuple(hi.max(axis=0).tolist())
    out_lo = list(lo[0])
    out_hi = list(hi[0])
    for i in range(1, len(lo)):
        row_lo, row_hi = lo[i], hi[i]
        for k in range(len(out_lo)):
            if row_lo[k] < out_lo[k]:
                out_lo[k] = row_lo[k]
            if row_hi[k] > out_hi[k]:
                out_hi[k] = row_hi[k]
    return tuple(out_lo), tuple(out_hi)


@_kernel_phase
def frame_pair_mask(a_lo, a_hi, b_lo, b_hi):
    """Full ``(n_a, n_b)`` intersection mask between two tables.

    The spatial join's leaf x leaf (and internal x internal) evaluation:
    one broadcast replaces every per-pair ``Rect.intersects`` call the
    plane sweep would otherwise make.  Returns ``None`` under the
    fallback backend — the sweep then keeps its scalar tests, which is
    cheaper than a Python O(n_a * n_b) mask.
    """
    if _is_array(a_lo) and _is_array(b_lo):
        # (n_a, 1, d) against (1, n_b, d)
        inter = (a_hi[:, None, :] >= b_lo[None, :, :]) & (
            a_lo[:, None, :] <= b_hi[None, :, :]
        )
        return inter.all(axis=2)
    return None


# ----------------------------------------------------------------------
# Batch kernels: m queries x one frame (set-at-a-time evaluation)
# ----------------------------------------------------------------------


def batch_windows(windows, dim: int):
    """Stack ``m`` query rectangles into one ``(Q_lo, Q_hi)`` table pair.

    Accepts anything with ``lo``/``hi`` coordinate tuples (``Rect``
    included).  The result feeds :func:`batch_intersecting` for every
    page the batch traversal touches.
    """
    lo = coord_table([w.lo for w in windows], dim)
    hi = coord_table([w.hi for w in windows], dim)
    return lo, hi


@_kernel_phase
def batch_intersecting(lo, hi, q_lo_table, q_hi_table, active):
    """Evaluate queries ``active`` against every row of one frame.

    Parameters are the frame's tables, the batch's stacked query tables
    (:func:`batch_windows`), and the list of active query indices at
    this node.  Returns ``{query index: [row indices]}`` containing only
    queries that matched at least one row — one broadcast per page
    instead of ``len(active)`` separate scans.
    """
    if len(lo) == 0:
        return {}
    if len(active) == 1:
        # Deep in the traversal most nodes serve a single remaining
        # query; the (m, n, d) broadcast machinery costs more than the
        # plain frame scan it degenerates to.
        q = active[0]
        matched = frame_intersecting(
            lo, hi, table_row(q_lo_table, q), table_row(q_hi_table, q)
        )
        return {q: matched} if matched else {}
    if _is_array(lo) and _is_array(q_lo_table):
        ql = q_lo_table[active]  # (m, d)
        qh = q_hi_table[active]
        # (m, 1, d) against (1, n, d) -> (m, n)
        mask = (ql[:, None, :] <= hi[None, :, :]) & (
            qh[:, None, :] >= lo[None, :, :]
        )
        mask = mask.all(axis=2)
        out: dict[int, list[int]] = {}
        rows, cols = np.nonzero(mask)
        for r, c in zip(rows.tolist(), cols.tolist()):
            out.setdefault(active[r], []).append(c)
        return out
    out = {}
    for q in active:
        matched = frame_intersecting(lo, hi, q_lo_table[q], q_hi_table[q])
        if matched:
            out[q] = matched
    return out
