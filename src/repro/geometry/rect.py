"""Axis-parallel d-dimensional rectangles.

The paper indexes minimal bounding boxes: "the smallest axis-parallel
(hyper-)rectangle that contains the object" (Section 1.1).  :class:`Rect` is
that object.  It is deliberately small and immutable — R-trees hold millions
of these, and every algorithm in the reproduction (kd-splits, Hilbert keys,
greedy splits, window queries) reads them in tight loops.

Coordinate conventions
----------------------

A ``Rect`` in d dimensions stores two tuples ``lo`` and ``hi`` with
``lo[i] <= hi[i]`` for every axis ``i``.  In two dimensions
``lo = (xmin, ymin)`` and ``hi = (xmax, ymax)``, matching the paper's
``((xmin, ymin), (xmax, ymax))`` notation.

Closed-box semantics: two rectangles that share only a boundary point do
*intersect* — this matches the window-query definition "retrieve all
rectangles that intersect Q" used by Guttman and the paper.

The 2d-dimensional corner mapping
---------------------------------

The pseudo-PR-tree and the four-dimensional Hilbert R-tree both view a
rectangle ``((xmin, ymin), (xmax, ymax))`` as the 4-dimensional point
``(xmin, ymin, xmax, ymax)`` (the paper's ``R*`` mapping).
:meth:`Rect.corner_point` performs that mapping for any d: axis ``k`` of the
2d-dimensional point is ``lo[k]`` for ``k < d`` and ``hi[k - d]`` for
``k >= d``.  All round-robin split orders in the PR-tree cycle through these
2d "corner axes" in the order ``xmin, ymin, ..., xmax, ymax, ...``.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

from repro.geometry import kernels


class Rect:
    """An immutable axis-parallel hyper-rectangle in d dimensions.

    Parameters
    ----------
    lo:
        Sequence of lower coordinates, one per axis.
    hi:
        Sequence of upper coordinates, one per axis; ``hi[i] >= lo[i]``.

    Examples
    --------
    >>> r = Rect((0.0, 0.0), (2.0, 1.0))
    >>> r.dim, r.area()
    (2, 2.0)
    >>> r.intersects(Rect((1.0, 0.5), (3.0, 3.0)))
    True
    >>> r.corner_point()
    (0.0, 0.0, 2.0, 1.0)
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]):
        lo = tuple(float(c) for c in lo)
        hi = tuple(float(c) for c in hi)
        if len(lo) != len(hi):
            raise ValueError(
                f"lo has {len(lo)} coordinates but hi has {len(hi)}"
            )
        if not lo:
            raise ValueError("rectangles must have at least one dimension")
        for a, b in zip(lo, hi):
            if a > b:
                raise ValueError(f"degenerate rectangle: lo {lo} > hi {hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # Rect is conceptually frozen; block assignment through the normal path.
    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Rect is immutable")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        """Number of spatial dimensions."""
        return len(self.lo)

    @property
    def xmin(self) -> float:
        """Lower x coordinate (axis 0); paper notation ``xmin(R)``."""
        return self.lo[0]

    @property
    def ymin(self) -> float:
        """Lower y coordinate (axis 1); paper notation ``ymin(R)``."""
        return self.lo[1]

    @property
    def xmax(self) -> float:
        """Upper x coordinate (axis 0); paper notation ``xmax(R)``."""
        return self.hi[0]

    @property
    def ymax(self) -> float:
        """Upper y coordinate (axis 1); paper notation ``ymax(R)``."""
        return self.hi[1]

    def side(self, axis: int) -> float:
        """Extent of the rectangle along ``axis``."""
        return self.hi[axis] - self.lo[axis]

    def center(self) -> tuple[float, ...]:
        """Center point, used by the packed Hilbert loader."""
        return tuple((a + b) / 2.0 for a, b in zip(self.lo, self.hi))

    def area(self) -> float:
        """d-dimensional volume (area when d = 2)."""
        return kernels.area(self.lo, self.hi)

    def margin(self) -> float:
        """Sum of side lengths (half-perimeter in 2D)."""
        return sum(b - a for a, b in zip(self.lo, self.hi))

    def aspect_ratio(self) -> float:
        """Longest side divided by shortest side (``inf`` for zero sides)."""
        sides = [b - a for a, b in zip(self.lo, self.hi)]
        shortest = min(sides)
        longest = max(sides)
        if shortest == 0.0:
            return math.inf if longest > 0.0 else 1.0
        return longest / shortest

    def is_point(self) -> bool:
        """True when the rectangle has zero extent on every axis."""
        return self.lo == self.hi

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def intersects(self, other: "Rect") -> bool:
        """Closed-box intersection test (boundary contact counts)."""
        return kernels.intersects(self.lo, self.hi, other.lo, other.hi)

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return kernels.contains(self.lo, self.hi, other.lo, other.hi)

    def contains_point(self, point: Sequence[float]) -> bool:
        """True when ``point`` lies inside or on the boundary."""
        return kernels.contains_point(self.lo, self.hi, point)

    # ------------------------------------------------------------------
    # Distances (best-first kNN, Hjaltason & Samet's MINDIST/MAXDIST)
    # ------------------------------------------------------------------

    def dist_sq_to_point(self, point: Sequence[float]) -> float:
        """Squared Euclidean distance from ``point`` to this rectangle.

        Zero when the point lies inside or on the boundary.  The squared
        form is what the kNN engine orders its priority queue by — it is
        monotone in the true distance and avoids a sqrt per entry.
        """
        return kernels.dist_sq_to_point(self.lo, self.hi, point)

    def min_dist_to_point(self, point: Sequence[float]) -> float:
        """Euclidean distance from ``point`` to the nearest point of self."""
        return math.sqrt(self.dist_sq_to_point(point))

    def max_dist_sq_to_point(self, point: Sequence[float]) -> float:
        """Squared distance from ``point`` to the *farthest* corner.

        An upper bound on the distance to anything inside the rectangle;
        usable for kNN pruning (every object in a node is at most this far
        away).
        """
        acc = 0.0
        for a_lo, a_hi, p in zip(self.lo, self.hi, point):
            d = max(abs(p - a_lo), abs(p - a_hi))
            acc += d * d
        return acc

    def dist_sq_to_rect(self, other: "Rect") -> float:
        """Squared Euclidean distance between the two closest points.

        Zero when the rectangles intersect (closed-box semantics).  This
        is the MINDIST used when the kNN target is itself a rectangle and
        by distance-bounded joins.
        """
        return kernels.dist_sq_to_rect(self.lo, self.hi, other.lo, other.hi)

    def min_dist_to_rect(self, other: "Rect") -> float:
        """Euclidean distance between the two closest points (0 if touching)."""
        return math.sqrt(self.dist_sq_to_rect(other))

    # ------------------------------------------------------------------
    # Constructive operations
    # ------------------------------------------------------------------

    def union(self, other: "Rect") -> "Rect":
        """Minimal bounding box of the two rectangles."""
        return Rect(
            tuple(min(a, b) for a, b in zip(self.lo, other.lo)),
            tuple(max(a, b) for a, b in zip(self.hi, other.hi)),
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Intersection box, or ``None`` when the boxes are disjoint."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        for a, b in zip(lo, hi):
            if a > b:
                return None
        return Rect(lo, hi)

    def enlargement(self, other: "Rect") -> float:
        """Area increase of this box needed to also cover ``other``.

        This is Guttman's insertion criterion: choose the child whose MBR
        needs the least enlargement.  Same arithmetic (and operation
        order) as the historical ``union(other).area() - area()``.
        """
        return kernels.enlargement(self.lo, self.hi, other.lo, other.hi)

    def translated(self, offset: Sequence[float]) -> "Rect":
        """A copy shifted by ``offset`` (one value per axis)."""
        return Rect(
            tuple(a + o for a, o in zip(self.lo, offset)),
            tuple(b + o for b, o in zip(self.hi, offset)),
        )

    def scaled(self, factor: float) -> "Rect":
        """A copy scaled about the origin by ``factor`` (> 0)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return Rect(
            tuple(a * factor for a in self.lo),
            tuple(b * factor for b in self.hi),
        )

    # ------------------------------------------------------------------
    # The 2d-dimensional corner mapping (paper's R* mapping)
    # ------------------------------------------------------------------

    def corner_point(self) -> tuple[float, ...]:
        """Map to the 2d-dimensional point ``(lo..., hi...)``.

        For d = 2 this is the paper's ``R* = (xmin, ymin, xmax, ymax)``.
        """
        return self.lo + self.hi

    def corner_coord(self, corner_axis: int) -> float:
        """Coordinate of :meth:`corner_point` along one of the 2d axes.

        Axes ``0..d-1`` are the ``lo`` (min) coordinates; axes ``d..2d-1``
        are the ``hi`` (max) coordinates.
        """
        d = len(self.lo)
        if corner_axis < d:
            return self.lo[corner_axis]
        return self.hi[corner_axis - d]

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"Rect({self.lo}, {self.hi})"

    def __iter__(self) -> Iterator[tuple[float, ...]]:
        """Iterate ``(lo, hi)`` so ``lo, hi = rect`` unpacking works."""
        yield self.lo
        yield self.hi


def point_rect(point: Sequence[float]) -> Rect:
    """A degenerate rectangle covering exactly one point.

    The paper's Theorem 3 and the ``skewed``/``cluster`` datasets consist of
    points; "points and lines are all special rectangles."
    """
    point = tuple(point)
    return Rect(point, point)


def mbr_of(rects: Iterable[Rect]) -> Rect:
    """Minimal bounding box of a non-empty collection of rectangles."""
    it = iter(rects)
    try:
        first = next(it)
    except StopIteration:
        raise ValueError("mbr_of() needs at least one rectangle") from None
    lo = list(first.lo)
    hi = list(first.hi)
    for r in it:
        for i, (a, b) in enumerate(zip(r.lo, r.hi)):
            if a < lo[i]:
                lo[i] = a
            if b > hi[i]:
                hi[i] = b
    return Rect(tuple(lo), tuple(hi))
