"""Geometric substrate: d-dimensional rectangles and space-filling curves.

This package provides the two geometric primitives everything else in the
reproduction is built on:

* :class:`repro.geometry.rect.Rect` — an immutable axis-parallel
  d-dimensional (hyper-)rectangle, the object the paper's R-trees index.
* :mod:`repro.geometry.hilbert` — a d-dimensional Hilbert space-filling
  curve (Skilling's algorithm), used by the packed Hilbert and
  four-dimensional Hilbert bulk loaders.
"""

from repro.geometry.rect import Rect, mbr_of, point_rect
from repro.geometry.hilbert import (
    hilbert_index,
    hilbert_point,
    hilbert_key_for_center,
    hilbert_key_for_corners,
)

__all__ = [
    "Rect",
    "mbr_of",
    "point_rect",
    "hilbert_index",
    "hilbert_point",
    "hilbert_key_for_center",
    "hilbert_key_for_corners",
]
