"""Window queries with the paper's I/O accounting.

"To answer such a query we simply start at the root of the R-tree and
recursively visit all nodes with minimal bounding boxes intersecting Q;
when encountering a leaf l we report all data rectangles in l intersecting
Q" (Section 1.1).  This engine implements exactly that traversal — for
*every* variant, PR-tree included, since a PR-tree is queried "exactly as
on an R-tree".

I/O accounting mirrors Section 3.3: "in all our experiments we cached all
internal nodes ... when reporting the number of I/Os needed to answer a
query, we are in effect reporting the number of leaves visited."  The
engine therefore routes internal-node reads through an LRU pool (unbounded
by default) and counts leaf reads individually; construct with
``cache_internal=False`` for the paper's cache-disabled side experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.geometry import kernels
from repro.geometry.rect import Rect
from repro.iomodel.cache import LRUCache
from repro.rtree.tree import RTree


@dataclass
class QueryStats:
    """Access statistics for one window query (or an accumulated batch).

    Attributes
    ----------
    leaf_reads:
        Leaf blocks read — the paper's reported query cost.
    internal_reads:
        Internal blocks read from disk (cache misses; 0 once warm).
    internal_visits:
        Internal nodes visited, whether or not they cost an I/O.
    reported:
        Number of data rectangles reported (the query's T).
    queries:
        Number of queries accumulated into this object.
    """

    leaf_reads: int = 0
    internal_reads: int = 0
    internal_visits: int = 0
    reported: int = 0
    queries: int = 0

    @property
    def ios(self) -> int:
        """Query cost under the paper's convention: leaf reads."""
        return self.leaf_reads

    @property
    def total_reads(self) -> int:
        """Cost with caching ignored (leaf + internal disk reads)."""
        return self.leaf_reads + self.internal_reads

    @property
    def nodes_visited(self) -> int:
        """All nodes touched by the traversal."""
        return self.leaf_reads + self.internal_visits

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another query's statistics into this object."""
        self.leaf_reads += other.leaf_reads
        self.internal_reads += other.internal_reads
        self.internal_visits += other.internal_visits
        self.reported += other.reported
        self.queries += other.queries


class TraversalEngine:
    """Shared plumbing for every query operator: one tree, one internal-node
    pool, accumulated totals.

    The window engine below and every operator in :mod:`repro.queries`
    (kNN, spatial join, point/containment/count) derive from this class,
    so all of them count I/O through the identical :meth:`_read` path and
    their reported costs are directly comparable.

    Parameters
    ----------
    tree:
        The tree to query (any variant).
    cache_internal:
        When true (default, the paper's setup) internal nodes are cached in
        an unbounded LRU pool shared across queries; leaf reads always hit
        the simulated disk.
    cache_capacity:
        Optional cap on the internal-node pool, for experiments on cache
        pressure (the paper notes the full pool "never occupied more than
        6MB").
    """

    def __init__(
        self,
        tree: RTree,
        cache_internal: bool = True,
        cache_capacity: float = math.inf,
    ) -> None:
        self.tree = tree
        self.cache_internal = cache_internal
        self._cache = LRUCache(tree.store, capacity=cache_capacity if cache_internal else 0)
        self.totals = QueryStats()
        # Opt-in EXPLAIN plan capture (repro.queries.explain); None on
        # the hot path costs one attribute load + branch per node.
        self._recorder = None

    def _read(self, block_id: int, stats: QueryStats):
        if self._recorder is not None:
            return self._read_recorded(block_id, stats)
        # A warm internal node is answered from the engine's own pool
        # without touching the store at all — the store-level peek below
        # would otherwise cost a physical decode on paged stores whose
        # page cache no longer holds the block.
        if self.cache_internal and block_id in self._cache:
            stats.internal_visits += 1
            return self._cache.get(block_id)
        # The root's leafness is known from tree height; for everything else
        # the parent knew whether its children are leaves only implicitly, so
        # peek at the node kind first (metadata, not a counted access) and
        # route the counted read appropriately.
        node = self.tree.store.peek(block_id)
        if node.is_leaf:
            stats.leaf_reads += 1
            # Count the actual disk read.
            return self.tree.store.read(block_id)
        stats.internal_visits += 1
        if self.cache_internal:
            before = self._cache.misses
            node = self._cache.get(block_id)
            stats.internal_reads += self._cache.misses - before
            return node
        stats.internal_reads += 1
        return self.tree.store.read(block_id)

    def _read_recorded(self, block_id: int, stats: QueryStats):
        """The :meth:`_read` branches with per-node plan attribution.

        A separate method so the explain-off hot path stays one branch;
        accounting is identical.  Physical reads are attributed from the
        page store's miss counter around the access (0 for stores with
        no physical layer, e.g. the in-memory simulator).
        """
        recorder = self._recorder
        pstats = getattr(self.tree.store, "stats", None)
        before_misses = pstats.misses if pstats is not None else 0
        if self.cache_internal and block_id in self._cache:
            stats.internal_visits += 1
            node = self._cache.get(block_id)
        else:
            node = self.tree.store.peek(block_id)
            if node.is_leaf:
                stats.leaf_reads += 1
                node = self.tree.store.read(block_id)
            else:
                stats.internal_visits += 1
                if self.cache_internal:
                    before = self._cache.misses
                    node = self._cache.get(block_id)
                    stats.internal_reads += self._cache.misses - before
                else:
                    stats.internal_reads += 1
                    node = self.tree.store.read(block_id)
        physical = (pstats.misses - before_misses) if pstats is not None else 0
        recorder.on_node(block_id, node, physical)
        return node

    def invalidate(self, block_id: int) -> None:
        """Drop a block from the internal pool after an update touched it."""
        self._cache.invalidate(block_id)

    def reset(self) -> None:
        """Clear accumulated totals (the cache stays warm)."""
        self.totals = QueryStats()


class QueryEngine(TraversalEngine):
    """Reusable window-query executor for one tree.

    Construction parameters are inherited from :class:`TraversalEngine`.
    """

    def query(self, window: Rect) -> tuple[list[tuple[Rect, Any]], QueryStats]:
        """Run one window query.

        Returns the matching ``(rect, value)`` pairs and this query's
        statistics; the engine's :attr:`totals` accumulate across calls.
        """
        tree = self.tree
        recorder = self._recorder
        stats = QueryStats(queries=1)
        matches: list[tuple[Rect, Any]] = []
        q_lo = kernels.as_coords(window.lo)
        q_hi = kernels.as_coords(window.hi)
        stack = [self.tree.root_id]
        while stack:
            block_id = stack.pop()
            node = self._read(block_id, stats)
            frame = node.frame()
            rows = kernels.frame_intersecting(frame.lo, frame.hi, q_lo, q_hi)
            if recorder is not None:
                recorder.note_matched(block_id, len(rows))
            if frame.is_leaf:
                entries = node.cached_entries()
                if entries is None:
                    for i in rows:
                        matches.append(
                            (frame.rect(i), tree.objects.get(frame.ptrs[i]))
                        )
                else:
                    # In-memory nodes already hold the Rect objects;
                    # reporting them directly skips the per-row
                    # materialization (identical values either way).
                    for i in rows:
                        rect, pointer = entries[i]
                        matches.append((rect, tree.objects.get(pointer)))
                stats.reported += len(rows)
            else:
                ptrs = frame.ptrs
                for i in rows:
                    stack.append(ptrs[i])
        self.totals.merge(stats)
        return matches, stats

    def query_batch(
        self, windows: Sequence[Rect]
    ) -> tuple[list[list[tuple[Rect, Any]]], list[QueryStats]]:
        """Run a batch of window queries in one shared traversal.

        Set-at-a-time evaluation: the batch walks the tree once, and at
        every page the active queries are evaluated against the whole
        frame in a single :func:`~repro.geometry.kernels.batch_intersecting`
        broadcast.  A node is read once per batch no matter how many
        queries need it, so batches of co-located windows (what the
        server's Hilbert reordering produces) cost fewer logical I/Os
        than running the queries back to back.

        Results are **bit-identical** to running :meth:`query` per
        window, in the same per-query order.  Per-query statistics are
        *as-if-solo*: each query's ``leaf_reads`` / ``internal_visits``
        / ``reported`` equal what a solo run would report (the paper's
        per-query cost stays comparable), while ``internal_reads`` —
        genuine cache misses — are attributed to the first active query
        that triggered them.  The store-level counters see the smaller,
        deduplicated read count.
        """
        tree = self.tree
        n = len(windows)
        all_matches: list[list[tuple[Rect, Any]]] = [[] for _ in range(n)]
        all_stats = [QueryStats(queries=1) for _ in range(n)]
        if n == 0:
            return all_matches, all_stats
        q_lo, q_hi = kernels.batch_windows(windows, tree.dim)
        stack: list[tuple[int, list[int]]] = [
            (tree.root_id, list(range(n)))
        ]
        while stack:
            block_id, active = stack.pop()
            shared = QueryStats()
            node = self._read(block_id, shared)
            frame = node.frame()
            hits = kernels.batch_intersecting(
                frame.lo, frame.hi, q_lo, q_hi, active
            )
            if frame.is_leaf:
                entries = node.cached_entries()
                for q in active:
                    stats = all_stats[q]
                    stats.leaf_reads += 1
                    rows = hits.get(q)
                    if rows:
                        matches = all_matches[q]
                        if entries is None:
                            for i in rows:
                                matches.append(
                                    (frame.rect(i), tree.objects.get(frame.ptrs[i]))
                                )
                        else:
                            for i in rows:
                                rect, pointer = entries[i]
                                matches.append(
                                    (rect, tree.objects.get(pointer))
                                )
                        stats.reported += len(rows)
            else:
                for q in active:
                    all_stats[q].internal_visits += 1
                all_stats[active[0]].internal_reads += shared.internal_reads
                # Children keep entry order on the stack; each carries
                # exactly the queries whose window intersects its box, so
                # every query's restricted visit sequence (and therefore
                # its match order) equals its solo DFS.
                per_child: dict[int, list[int]] = {}
                for q, rows in hits.items():
                    for i in rows:
                        per_child.setdefault(i, []).append(q)
                ptrs = frame.ptrs
                for i in sorted(per_child):
                    stack.append((ptrs[i], per_child[i]))
        for stats in all_stats:
            self.totals.merge(stats)
        return all_matches, all_stats


def brute_force_query(
    data: list[tuple[Rect, Any]], window: Rect
) -> list[tuple[Rect, Any]]:
    """Reference implementation: scan everything.

    The correctness oracle for every index variant in the test suite.
    """
    return [(rect, value) for rect, value in data if rect.intersects(window)]
