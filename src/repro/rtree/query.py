"""Window queries with the paper's I/O accounting.

"To answer such a query we simply start at the root of the R-tree and
recursively visit all nodes with minimal bounding boxes intersecting Q;
when encountering a leaf l we report all data rectangles in l intersecting
Q" (Section 1.1).  This engine implements exactly that traversal — for
*every* variant, PR-tree included, since a PR-tree is queried "exactly as
on an R-tree".

I/O accounting mirrors Section 3.3: "in all our experiments we cached all
internal nodes ... when reporting the number of I/Os needed to answer a
query, we are in effect reporting the number of leaves visited."  The
engine therefore routes internal-node reads through an LRU pool (unbounded
by default) and counts leaf reads individually; construct with
``cache_internal=False`` for the paper's cache-disabled side experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.geometry.rect import Rect
from repro.iomodel.cache import LRUCache
from repro.rtree.tree import RTree


@dataclass
class QueryStats:
    """Access statistics for one window query (or an accumulated batch).

    Attributes
    ----------
    leaf_reads:
        Leaf blocks read — the paper's reported query cost.
    internal_reads:
        Internal blocks read from disk (cache misses; 0 once warm).
    internal_visits:
        Internal nodes visited, whether or not they cost an I/O.
    reported:
        Number of data rectangles reported (the query's T).
    queries:
        Number of queries accumulated into this object.
    """

    leaf_reads: int = 0
    internal_reads: int = 0
    internal_visits: int = 0
    reported: int = 0
    queries: int = 0

    @property
    def ios(self) -> int:
        """Query cost under the paper's convention: leaf reads."""
        return self.leaf_reads

    @property
    def total_reads(self) -> int:
        """Cost with caching ignored (leaf + internal disk reads)."""
        return self.leaf_reads + self.internal_reads

    @property
    def nodes_visited(self) -> int:
        """All nodes touched by the traversal."""
        return self.leaf_reads + self.internal_visits

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another query's statistics into this object."""
        self.leaf_reads += other.leaf_reads
        self.internal_reads += other.internal_reads
        self.internal_visits += other.internal_visits
        self.reported += other.reported
        self.queries += other.queries


class TraversalEngine:
    """Shared plumbing for every query operator: one tree, one internal-node
    pool, accumulated totals.

    The window engine below and every operator in :mod:`repro.queries`
    (kNN, spatial join, point/containment/count) derive from this class,
    so all of them count I/O through the identical :meth:`_read` path and
    their reported costs are directly comparable.

    Parameters
    ----------
    tree:
        The tree to query (any variant).
    cache_internal:
        When true (default, the paper's setup) internal nodes are cached in
        an unbounded LRU pool shared across queries; leaf reads always hit
        the simulated disk.
    cache_capacity:
        Optional cap on the internal-node pool, for experiments on cache
        pressure (the paper notes the full pool "never occupied more than
        6MB").
    """

    def __init__(
        self,
        tree: RTree,
        cache_internal: bool = True,
        cache_capacity: float = math.inf,
    ) -> None:
        self.tree = tree
        self.cache_internal = cache_internal
        self._cache = LRUCache(tree.store, capacity=cache_capacity if cache_internal else 0)
        self.totals = QueryStats()

    def _read(self, block_id: int, stats: QueryStats):
        # A warm internal node is answered from the engine's own pool
        # without touching the store at all — the store-level peek below
        # would otherwise cost a physical decode on paged stores whose
        # page cache no longer holds the block.
        if self.cache_internal and block_id in self._cache:
            stats.internal_visits += 1
            return self._cache.get(block_id)
        # The root's leafness is known from tree height; for everything else
        # the parent knew whether its children are leaves only implicitly, so
        # peek at the node kind first (metadata, not a counted access) and
        # route the counted read appropriately.
        node = self.tree.store.peek(block_id)
        if node.is_leaf:
            stats.leaf_reads += 1
            # Count the actual disk read.
            return self.tree.store.read(block_id)
        stats.internal_visits += 1
        if self.cache_internal:
            before = self._cache.misses
            node = self._cache.get(block_id)
            stats.internal_reads += self._cache.misses - before
            return node
        stats.internal_reads += 1
        return self.tree.store.read(block_id)

    def invalidate(self, block_id: int) -> None:
        """Drop a block from the internal pool after an update touched it."""
        self._cache.invalidate(block_id)

    def reset(self) -> None:
        """Clear accumulated totals (the cache stays warm)."""
        self.totals = QueryStats()


class QueryEngine(TraversalEngine):
    """Reusable window-query executor for one tree.

    Construction parameters are inherited from :class:`TraversalEngine`.
    """

    def query(self, window: Rect) -> tuple[list[tuple[Rect, Any]], QueryStats]:
        """Run one window query.

        Returns the matching ``(rect, value)`` pairs and this query's
        statistics; the engine's :attr:`totals` accumulate across calls.
        """
        tree = self.tree
        stats = QueryStats(queries=1)
        matches: list[tuple[Rect, Any]] = []
        stack = [self.tree.root_id]
        while stack:
            block_id = stack.pop()
            node = self._read(block_id, stats)
            if node.is_leaf:
                for rect, oid in node.entries:
                    if rect.intersects(window):
                        matches.append((rect, tree.objects.get(oid)))
                        stats.reported += 1
            else:
                for rect, child_id in node.entries:
                    if rect.intersects(window):
                        stack.append(child_id)
        self.totals.merge(stats)
        return matches, stats


def brute_force_query(
    data: list[tuple[Rect, Any]], window: Rect
) -> list[tuple[Rect, Any]]:
    """Reference implementation: scan everything.

    The correctness oracle for every index variant in the test suite.
    """
    return [(rect, value) for rect, value in data if rect.intersects(window)]
