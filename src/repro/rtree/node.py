"""R-tree node payloads: entry lists backed by structure-of-arrays frames.

A node is what one disk block holds: a leaf flag and up to ``fanout``
entries.  Each entry pairs a rectangle with a pointer — for an internal
node the rectangle is the minimal bounding box of a child's subtree and the
pointer is that child's block id; for a leaf the rectangle is an input
(data) rectangle and the pointer identifies the original object (the
paper's "pointer to the original data").

Two representations, one node
-----------------------------

The read path wants geometry as contiguous arrays — a
:class:`NodeFrame` holds the node's ``lo``/``hi`` coordinates as two
``(n, d)`` tables plus a pointer list, so the vectorized kernels in
:mod:`repro.geometry.kernels` evaluate a whole node (or a whole batch of
queries against it) in one operation.  The write path and the builders
want a mutable ``list[(Rect, int)]``.  :class:`Node` keeps both:

* ``Node(is_leaf, entries)`` — the classic constructor; the frame is
  materialized lazily on first kernel access and cached.
* ``Node.from_frame(frame)`` — what the codec's array decoder builds;
  the entry list is materialized lazily on first entry-level access
  (``Rect`` objects are only ever created for entries somebody reads).

``node.entries`` stays a real mutable list (append, ``del``, slice
assignment, ``sort`` — everything the Guttman/R* update paths do), but
it is a :class:`_TrackedEntries` list that invalidates the cached frame
on any mutation, so builders and :mod:`repro.rtree.update` run unchanged
and can never observe a stale frame.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry import kernels
from repro.geometry.rect import Rect, mbr_of

#: One node entry: (bounding rectangle, child block id or data object id).
Entry = tuple[Rect, int]


def _trusted_rect(lo: tuple[float, ...], hi: tuple[float, ...]) -> Rect:
    """Build a Rect from already-validated coordinate tuples.

    Frame rows round-tripped through the codec (or built from existing
    rects) are valid by construction; skipping ``Rect.__init__``'s
    per-coordinate conversion keeps entry materialization off the hot
    path's flame graph.
    """
    rect = Rect.__new__(Rect)
    object.__setattr__(rect, "lo", lo)
    object.__setattr__(rect, "hi", hi)
    return rect


class NodeFrame:
    """Structure-of-arrays view of one node's geometry.

    ``lo``/``hi`` are coordinate tables (``(n, d)`` float64 arrays under
    numpy, tuples of row tuples under the pure-Python fallback — see
    :func:`repro.geometry.kernels.coord_table`), ``ptrs`` is the plain
    Python pointer list.  Frames are read-only by convention: mutation
    happens on the entry list, which drops its cached frame.
    """

    __slots__ = ("is_leaf", "lo", "hi", "ptrs")

    def __init__(self, is_leaf: bool, lo, hi, ptrs: list[int]) -> None:
        self.is_leaf = is_leaf
        self.lo = lo
        self.hi = hi
        self.ptrs = ptrs

    @classmethod
    def from_entries(cls, is_leaf: bool, entries: Sequence[Entry], dim: int | None = None) -> "NodeFrame":
        """Pack an entry list into coordinate tables."""
        if dim is None:
            dim = entries[0][0].dim if entries else 0
        lo = kernels.coord_table([rect.lo for rect, _ in entries], dim)
        hi = kernels.coord_table([rect.hi for rect, _ in entries], dim)
        return cls(is_leaf, lo, hi, [pointer for _, pointer in entries])

    def __len__(self) -> int:
        return len(self.ptrs)

    def rect(self, i: int) -> Rect:
        """Materialize row ``i`` as a :class:`Rect` (lazy, per row)."""
        return _trusted_rect(
            kernels.table_row(self.lo, i), kernels.table_row(self.hi, i)
        )

    def entry(self, i: int) -> Entry:
        """Materialize row ``i`` as a classic ``(Rect, pointer)`` entry."""
        return self.rect(i), self.ptrs[i]

    def entries(self) -> list[Entry]:
        """Materialize every row (the codec's encode path)."""
        return [self.entry(i) for i in range(len(self.ptrs))]

    def mbr(self) -> Rect:
        """Tight bounding box of all rows, computed on the tables."""
        lo, hi = kernels.frame_mbr(self.lo, self.hi)
        return _trusted_rect(lo, hi)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "internal"
        return f"NodeFrame({kind}, {len(self.ptrs)} rows)"


class _TrackedEntries(list):
    """Entry list that drops the owning node's cached frame on mutation.

    Covers every mutating ``list`` operation the builders and update
    algorithms use; read operations (indexing, iteration, slicing — a
    copy) go straight to ``list``.
    """

    __slots__ = ("_node",)

    def __init__(self, node: "Node", iterable: Iterable[Entry] = ()) -> None:
        super().__init__(iterable)
        self._node = node

    def _touch(self) -> None:
        self._node._frame = None

    def append(self, item):
        self._touch()
        super().append(item)

    def extend(self, items):
        self._touch()
        super().extend(items)

    def insert(self, index, item):
        self._touch()
        super().insert(index, item)

    def remove(self, item):
        self._touch()
        super().remove(item)

    def pop(self, index=-1):
        self._touch()
        return super().pop(index)

    def clear(self):
        self._touch()
        super().clear()

    def sort(self, *args, **kwargs):
        self._touch()
        super().sort(*args, **kwargs)

    def reverse(self):
        self._touch()
        super().reverse()

    def __setitem__(self, index, value):
        self._touch()
        super().__setitem__(index, value)

    def __delitem__(self, index):
        self._touch()
        super().__delitem__(index)

    def __iadd__(self, other):
        self._touch()
        return super().__iadd__(other)

    def __imul__(self, factor):
        self._touch()
        return super().__imul__(factor)


class Node:
    """A decoded R-tree node (the payload of exactly one block).

    Nodes are plain mutable containers; all structure maintenance lives in
    the builders and :mod:`repro.rtree.update`.  The geometry is served
    two ways — :attr:`entries` for the entry-at-a-time write path and
    :meth:`frame` for the vectorized read path — and the two views are
    kept coherent automatically (mutating the entries invalidates the
    cached frame; a frame-built node materializes entries on demand).
    """

    __slots__ = ("is_leaf", "_entries", "_frame")

    def __init__(self, is_leaf: bool, entries: Iterable[Entry] | None = None):
        self.is_leaf = is_leaf
        self._entries: _TrackedEntries | None = _TrackedEntries(
            self, entries if entries is not None else ()
        )
        self._frame: NodeFrame | None = None

    @classmethod
    def from_frame(cls, frame: NodeFrame) -> "Node":
        """Wrap a decoded frame without materializing any ``Rect``."""
        node = cls.__new__(cls)
        node.is_leaf = frame.is_leaf
        node._entries = None
        node._frame = frame
        return node

    # -- the two views -------------------------------------------------

    @property
    def entries(self) -> list[Entry]:
        """The mutable entry list (materialized from the frame if needed)."""
        if self._entries is None:
            self._entries = _TrackedEntries(self, self._frame.entries())
        return self._entries

    @entries.setter
    def entries(self, value: Iterable[Entry]) -> None:
        self._entries = _TrackedEntries(self, value)
        self._frame = None

    def cached_entries(self) -> list[Entry] | None:
        """The already-materialized entry list, or None.

        Read paths use this to report matches from existing ``Rect``
        objects instead of rebuilding them row by row from the frame;
        for disk-decoded nodes it stays None so a query touching three
        rows of a 113-entry page never materializes the other 110.
        Callers must not mutate the returned list.
        """
        return self._entries

    def frame(self) -> NodeFrame:
        """The structure-of-arrays view (built from the entries if needed).

        Cached until the entry list next mutates; for nodes decoded from
        disk this is the representation that was decoded, and no entry
        tuple or ``Rect`` ever exists unless someone asks.
        """
        frame = self._frame
        if frame is None:
            frame = self._frame = NodeFrame.from_entries(
                self.is_leaf, self._entries
            )
        return frame

    # -- entry-level API (unchanged) -----------------------------------

    def mbr(self) -> Rect:
        """Minimal bounding box of all entries (the node's outward face)."""
        if self._entries is None or self._frame is not None:
            frame = self.frame()
            if not len(frame):
                raise ValueError("empty node has no bounding box")
            return frame.mbr()
        if not self._entries:
            raise ValueError("empty node has no bounding box")
        return mbr_of(rect for rect, _ in self._entries)

    def add(self, rect: Rect, pointer: int) -> None:
        """Append one entry."""
        self.entries.append((rect, pointer))

    def remove(self, rect: Rect, pointer: int) -> bool:
        """Remove the first entry equal to ``(rect, pointer)``.

        Returns True when an entry was removed.
        """
        try:
            self.entries.remove((rect, pointer))
        except ValueError:
            return False
        return True

    def child_ids(self) -> list[int]:
        """Block ids of all children (internal nodes only)."""
        if self.is_leaf:
            raise ValueError("leaves have no children")
        if self._entries is None:
            return list(self._frame.ptrs)
        return [pointer for _, pointer in self._entries]

    def __len__(self) -> int:
        if self._entries is None:
            return len(self._frame)
        return len(self._entries)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "internal"
        return f"Node({kind}, {len(self)} entries)"
