"""R-tree node payloads.

A node is what one disk block holds: a leaf flag and up to ``fanout``
entries.  Each entry pairs a rectangle with a pointer — for an internal
node the rectangle is the minimal bounding box of a child's subtree and the
pointer is that child's block id; for a leaf the rectangle is an input
(data) rectangle and the pointer identifies the original object (the
paper's "pointer to the original data").
"""

from __future__ import annotations

from typing import Iterable

from repro.geometry.rect import Rect, mbr_of

#: One node entry: (bounding rectangle, child block id or data object id).
Entry = tuple[Rect, int]


class Node:
    """A decoded R-tree node (the payload of exactly one block).

    Nodes are plain mutable containers; all structure maintenance lives in
    the builders and :mod:`repro.rtree.update`.
    """

    __slots__ = ("is_leaf", "entries")

    def __init__(self, is_leaf: bool, entries: Iterable[Entry] | None = None):
        self.is_leaf = is_leaf
        self.entries: list[Entry] = list(entries) if entries is not None else []

    def mbr(self) -> Rect:
        """Minimal bounding box of all entries (the node's outward face)."""
        if not self.entries:
            raise ValueError("empty node has no bounding box")
        return mbr_of(rect for rect, _ in self.entries)

    def add(self, rect: Rect, pointer: int) -> None:
        """Append one entry."""
        self.entries.append((rect, pointer))

    def remove(self, rect: Rect, pointer: int) -> bool:
        """Remove the first entry equal to ``(rect, pointer)``.

        Returns True when an entry was removed.
        """
        try:
            self.entries.remove((rect, pointer))
        except ValueError:
            return False
        return True

    def child_ids(self) -> list[int]:
        """Block ids of all children (internal nodes only)."""
        if self.is_leaf:
            raise ValueError("leaves have no children")
        return [pointer for _, pointer in self.entries]

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "internal"
        return f"Node({kind}, {len(self.entries)} entries)"
