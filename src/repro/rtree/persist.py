"""Whole-tree serialization through the byte-exact node codec.

The simulator keeps nodes decoded for speed, but the paper's physical
layout (36-byte entries in 4 KB blocks, Section 3.1) is fully honoured by
:class:`~repro.iomodel.codec.NodeCodec`.  This module uses it to flatten
a tree into real bytes — one block per node plus a fixed-size superblock —
and to rebuild an identical tree from those bytes.

Uses:

* proving the layout assumption end-to-end (a tree round-trips through
  the exact on-disk format, fan-out limits enforced);
* shipping a bulk-loaded index between processes (object values are the
  caller's problem — the image stores object *ids*; pass the same values
  back to :func:`deserialize_tree` or reattach afterwards).

Image format (little-endian)::

    superblock: magic "PRT1" | u16 dim | u32 block_size | u32 fanout
                | u32 height | u64 size | u64 n_blocks | u64 root_index
    blocks:     n_blocks x block_size raw node blocks

Block ids are remapped to dense indices 0..n_blocks-1 in the image and
remapped back to fresh block-store addresses on load, so images are
independent of the allocation history that produced them.
"""

from __future__ import annotations

import struct
from typing import Any, Callable

from repro.iomodel.codec import NodeCodec, fanout_for_block
from repro.iomodel.store import BlockStoreProtocol
from repro.rtree.node import Node
from repro.rtree.tree import RTree

_MAGIC = b"PRT1"
_SUPERBLOCK = "<4sHIIIQQQ"
_SUPERBLOCK_BYTES = struct.calcsize(_SUPERBLOCK)


class PersistError(ValueError):
    """The byte image is malformed or inconsistent."""


def serialize_tree(tree: RTree, block_size: int = 4096) -> bytes:
    """Flatten a tree into a self-contained byte image.

    Raises ``ValueError`` (via the codec) if any node exceeds the
    fan-out the block size allows for this dimension — i.e. the tree
    physically would not fit the claimed block size.
    """
    codec = NodeCodec(dim=tree.dim, block_size=block_size)
    if tree.fanout > codec.fanout:
        raise PersistError(
            f"tree fan-out {tree.fanout} exceeds what a {block_size}-byte "
            f"block holds in {tree.dim}D ({codec.fanout})"
        )

    # Dense preorder numbering of live nodes.
    order: list[int] = [bid for bid, _, _ in tree.iter_nodes()]
    index_of = {bid: i for i, bid in enumerate(order)}

    blocks: list[bytes] = []
    for bid in order:
        node = tree.peek_node(bid)
        if node.is_leaf:
            entries = node.entries
        else:
            entries = [
                (rect, index_of[child]) for rect, child in node.entries
            ]
        blocks.append(codec.encode(node.is_leaf, entries))

    header = struct.pack(
        _SUPERBLOCK,
        _MAGIC,
        tree.dim,
        block_size,
        tree.fanout,
        tree.height,
        tree.size,
        len(blocks),
        index_of[tree.root_id],
    )
    return header + b"".join(blocks)


def deserialize_tree(
    image: bytes,
    store: BlockStoreProtocol,
    values: dict[int, Any] | Callable[[int], Any] | None = None,
) -> RTree:
    """Rebuild a tree from :func:`serialize_tree` output.

    Parameters
    ----------
    image:
        The byte image.
    store:
        Destination block store (fresh addresses are allocated).  The
        image's block size must match ``store.block_size`` — a tree laid
        out for one block size cannot be loaded onto a disk with another
        without re-deriving fan-outs.
    values:
        Optional object-id → value mapping (dict or callable) used to
        repopulate the tree's object table; ids without a mapping get
        ``None``.

    Raises
    ------
    PersistError
        On any malformed or inconsistent image: bad magic, impossible
        dimension/fan-out, a block size that disagrees with the target
        store, a fan-out the claimed block size cannot hold, a truncated
        or oversized byte payload, or a dangling root index.
    """
    if len(image) < _SUPERBLOCK_BYTES:
        raise PersistError("image shorter than the superblock")
    magic, dim, block_size, fanout, height, size, n_blocks, root_index = (
        struct.unpack_from(_SUPERBLOCK, image, 0)
    )
    if magic != _MAGIC:
        raise PersistError(f"bad magic {magic!r}")
    if dim < 1:
        raise PersistError(f"impossible dimension {dim}")
    if fanout < 2:
        raise PersistError(f"impossible fan-out {fanout}")
    if block_size != store.block_size:
        raise PersistError(
            f"image uses {block_size}-byte blocks, target store uses "
            f"{store.block_size}-byte blocks"
        )
    try:
        capacity = fanout_for_block(block_size, dim)
    except ValueError as exc:
        raise PersistError(str(exc)) from None
    if fanout > capacity:
        raise PersistError(
            f"fan-out {fanout} exceeds what a {block_size}-byte block "
            f"holds in {dim}D ({capacity})"
        )
    expected = _SUPERBLOCK_BYTES + n_blocks * block_size
    if len(image) != expected:
        raise PersistError(
            f"image is {len(image)} bytes, superblock promises {expected}"
        )
    if n_blocks == 0 or root_index >= n_blocks:
        raise PersistError("root index outside the image")

    codec = NodeCodec(dim=dim, block_size=block_size)
    decoded: list[tuple[bool, list]] = []
    for i in range(n_blocks):
        offset = _SUPERBLOCK_BYTES + i * block_size
        decoded.append(codec.decode(image[offset : offset + block_size]))

    # Allocate fresh blocks, then rewrite child indices to real ids.
    block_ids = [store.allocate(None) for _ in range(n_blocks)]
    tree = RTree(
        store,
        root_id=block_ids[root_index],
        dim=dim,
        fanout=fanout,
        height=height,
        size=size,
    )

    lookup: Callable[[int], Any]
    if values is None:
        lookup = lambda oid: None
    elif callable(values):
        lookup = values
    else:
        lookup = values.get

    max_oid = -1
    for i, (is_leaf, entries) in enumerate(decoded):
        if is_leaf:
            node = Node(True, entries)
            for _, oid in entries:
                tree.objects[oid] = lookup(oid)
                max_oid = max(max_oid, oid)
        else:
            remapped = []
            for rect, child_index in entries:
                if child_index >= n_blocks:
                    raise PersistError(
                        f"block {i} points outside the image ({child_index})"
                    )
                remapped.append((rect, block_ids[child_index]))
            node = Node(False, remapped)
        store.write(block_ids[i], node)
    tree._next_oid = max_oid + 1
    return tree
