"""Guttman's node-splitting heuristics.

When a dynamic insertion overflows a node, its entries must be divided
between two nodes.  Guttman's 1984 paper gives the quadratic and linear
splitting algorithms used here; the paper's update story ("a PR-tree can be
updated in O(log_B N) I/Os using the standard R-tree updating algorithms")
is exactly these algorithms applied unchanged.

Both splitters guarantee each side receives at least ``min_fill`` entries.
"""

from __future__ import annotations

from repro.geometry.rect import mbr_of
from repro.rtree.node import Entry


def quadratic_split(
    entries: list[Entry], min_fill: int
) -> tuple[list[Entry], list[Entry]]:
    """Guttman's quadratic split.

    Seeds are the pair wasting the most area together; remaining entries
    are assigned one at a time, always the entry with the strongest
    preference, to the group whose bounding box grows least.

    The hot loops run on raw coordinate tuples instead of
    :class:`~repro.geometry.rect.Rect` operations: splitting a full
    B=113 node costs O(B^2) union-area evaluations, and constructing a
    ``Rect`` per evaluation made one split cost ~100 ms — a stall the
    async serving layer's exclusive write batches turn into a
    service-wide pause.  The arithmetic (and every tie-break) is
    operation-for-operation identical to the ``Rect`` formulation, so
    the produced groups are exactly the same.
    """
    if len(entries) < 2:
        raise ValueError("cannot split fewer than 2 entries")
    if min_fill < 1 or 2 * min_fill > len(entries):
        raise ValueError(
            f"min_fill {min_fill} infeasible for {len(entries)} entries"
        )

    n = len(entries)
    los = [entry[0].lo for entry in entries]
    his = [entry[0].hi for entry in entries]
    areas = [entry[0].area() for entry in entries]

    def union_area(box_lo: tuple, box_hi: tuple, k: int) -> float:
        acc = 1.0
        for a, b, c, d in zip(box_lo, box_hi, los[k], his[k]):
            acc *= (b if b >= d else d) - (a if a <= c else c)
        return acc

    # PickSeeds: the most wasteful pair.
    worst = -1.0
    seed_a = 0
    seed_b = 1
    for i in range(n):
        lo_i, hi_i, area_i = los[i], his[i], areas[i]
        for j in range(i + 1, n):
            waste = union_area(lo_i, hi_i, j) - area_i - areas[j]
            if waste > worst:
                worst = waste
                seed_a, seed_b = i, j

    group_a = [entries[seed_a]]
    group_b = [entries[seed_b]]
    box_a_lo, box_a_hi, box_a_area = los[seed_a], his[seed_a], areas[seed_a]
    box_b_lo, box_b_hi, box_b_area = los[seed_b], his[seed_b], areas[seed_b]
    remaining = [k for k in range(n) if k != seed_a and k != seed_b]
    # Enlargements are cached per group box and only recomputed when
    # that box actually grew — cached values are bit-identical to fresh
    # ones, so PickNext's choices cannot drift.
    enl_a = {
        k: union_area(box_a_lo, box_a_hi, k) - box_a_area for k in remaining
    }
    enl_b = {
        k: union_area(box_b_lo, box_b_hi, k) - box_b_area for k in remaining
    }

    while remaining:
        # If one group must absorb everything to reach min_fill, do so.
        if len(group_a) + len(remaining) <= min_fill:
            group_a.extend(entries[k] for k in remaining)
            break
        if len(group_b) + len(remaining) <= min_fill:
            group_b.extend(entries[k] for k in remaining)
            break
        # PickNext: strongest preference first.
        best_pos = 0
        best_diff = -1.0
        for pos, k in enumerate(remaining):
            diff = abs(enl_a[k] - enl_b[k])
            if diff > best_diff:
                best_diff = diff
                best_pos = pos
        k = remaining.pop(best_pos)
        grow_a = enl_a.pop(k)
        grow_b = enl_b.pop(k)
        if grow_a < grow_b:
            choose_a = True
        elif grow_b < grow_a:
            choose_a = False
        elif box_a_area != box_b_area:
            choose_a = box_a_area < box_b_area
        else:
            choose_a = len(group_a) <= len(group_b)
        if choose_a:
            group_a.append(entries[k])
            new_lo = tuple(
                a if a <= c else c for a, c in zip(box_a_lo, los[k])
            )
            new_hi = tuple(
                b if b >= d else d for b, d in zip(box_a_hi, his[k])
            )
            if new_lo != box_a_lo or new_hi != box_a_hi:
                box_a_lo, box_a_hi = new_lo, new_hi
                box_a_area = 1.0
                for a, b in zip(new_lo, new_hi):
                    box_a_area *= b - a
                for kk in remaining:
                    enl_a[kk] = (
                        union_area(box_a_lo, box_a_hi, kk) - box_a_area
                    )
        else:
            group_b.append(entries[k])
            new_lo = tuple(
                a if a <= c else c for a, c in zip(box_b_lo, los[k])
            )
            new_hi = tuple(
                b if b >= d else d for b, d in zip(box_b_hi, his[k])
            )
            if new_lo != box_b_lo or new_hi != box_b_hi:
                box_b_lo, box_b_hi = new_lo, new_hi
                box_b_area = 1.0
                for a, b in zip(new_lo, new_hi):
                    box_b_area *= b - a
                for kk in remaining:
                    enl_b[kk] = (
                        union_area(box_b_lo, box_b_hi, kk) - box_b_area
                    )
    return group_a, group_b


def linear_split(
    entries: list[Entry], min_fill: int
) -> tuple[list[Entry], list[Entry]]:
    """Guttman's linear split.

    Seeds are the pair with the greatest normalized separation along any
    axis; remaining entries are assigned in input order by least
    enlargement.
    """
    if len(entries) < 2:
        raise ValueError("cannot split fewer than 2 entries")
    if min_fill < 1 or 2 * min_fill > len(entries):
        raise ValueError(
            f"min_fill {min_fill} infeasible for {len(entries)} entries"
        )

    dim = entries[0][0].dim
    total = mbr_of(rect for rect, _ in entries)
    best_sep = -1.0
    seed_a = 0
    seed_b = 1
    for axis in range(dim):
        # Entry with the highest low side and entry with the lowest high side.
        high_low = max(range(len(entries)), key=lambda k: entries[k][0].lo[axis])
        low_high = min(range(len(entries)), key=lambda k: entries[k][0].hi[axis])
        if high_low == low_high:
            continue
        width = total.side(axis)
        if width <= 0:
            continue
        sep = (
            entries[high_low][0].lo[axis] - entries[low_high][0].hi[axis]
        ) / width
        if sep > best_sep:
            best_sep = sep
            seed_a, seed_b = high_low, low_high
    if seed_a == seed_b:  # all rectangles identical along every axis
        seed_b = (seed_a + 1) % len(entries)

    group_a = [entries[seed_a]]
    group_b = [entries[seed_b]]
    box_a = entries[seed_a][0]
    box_b = entries[seed_b][0]
    remaining = [e for k, e in enumerate(entries) if k not in (seed_a, seed_b)]

    for idx, (rect, pointer) in enumerate(remaining):
        left = len(remaining) - idx
        if len(group_a) + left <= min_fill:
            group_a.append((rect, pointer))
            box_a = box_a.union(rect)
            continue
        if len(group_b) + left <= min_fill:
            group_b.append((rect, pointer))
            box_b = box_b.union(rect)
            continue
        if box_a.enlargement(rect) <= box_b.enlargement(rect):
            group_a.append((rect, pointer))
            box_a = box_a.union(rect)
        else:
            group_b.append((rect, pointer))
            box_b = box_b.union(rect)
    return group_a, group_b
