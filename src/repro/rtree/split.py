"""Guttman's node-splitting heuristics.

When a dynamic insertion overflows a node, its entries must be divided
between two nodes.  Guttman's 1984 paper gives the quadratic and linear
splitting algorithms used here; the paper's update story ("a PR-tree can be
updated in O(log_B N) I/Os using the standard R-tree updating algorithms")
is exactly these algorithms applied unchanged.

Both splitters guarantee each side receives at least ``min_fill`` entries.
"""

from __future__ import annotations

from repro.geometry.rect import Rect, mbr_of
from repro.rtree.node import Entry


def _dead_area(a: Rect, b: Rect) -> float:
    """Waste created by putting two rectangles in one box (Guttman's D)."""
    return a.union(b).area() - a.area() - b.area()


def quadratic_split(
    entries: list[Entry], min_fill: int
) -> tuple[list[Entry], list[Entry]]:
    """Guttman's quadratic split.

    Seeds are the pair wasting the most area together; remaining entries
    are assigned one at a time, always the entry with the strongest
    preference, to the group whose bounding box grows least.
    """
    if len(entries) < 2:
        raise ValueError("cannot split fewer than 2 entries")
    if min_fill < 1 or 2 * min_fill > len(entries):
        raise ValueError(
            f"min_fill {min_fill} infeasible for {len(entries)} entries"
        )

    # PickSeeds: the most wasteful pair.
    worst = -1.0
    seed_a = 0
    seed_b = 1
    for i in range(len(entries)):
        rect_i = entries[i][0]
        for j in range(i + 1, len(entries)):
            waste = _dead_area(rect_i, entries[j][0])
            if waste > worst:
                worst = waste
                seed_a, seed_b = i, j

    group_a = [entries[seed_a]]
    group_b = [entries[seed_b]]
    box_a = entries[seed_a][0]
    box_b = entries[seed_b][0]
    remaining = [e for k, e in enumerate(entries) if k not in (seed_a, seed_b)]

    while remaining:
        # If one group must absorb everything to reach min_fill, do so.
        if len(group_a) + len(remaining) <= min_fill:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) <= min_fill:
            group_b.extend(remaining)
            break
        # PickNext: strongest preference first.
        best_idx = 0
        best_diff = -1.0
        for idx, (rect, _) in enumerate(remaining):
            diff = abs(box_a.enlargement(rect) - box_b.enlargement(rect))
            if diff > best_diff:
                best_diff = diff
                best_idx = idx
        rect, pointer = remaining.pop(best_idx)
        grow_a = box_a.enlargement(rect)
        grow_b = box_b.enlargement(rect)
        if grow_a < grow_b:
            choose_a = True
        elif grow_b < grow_a:
            choose_a = False
        elif box_a.area() != box_b.area():
            choose_a = box_a.area() < box_b.area()
        else:
            choose_a = len(group_a) <= len(group_b)
        if choose_a:
            group_a.append((rect, pointer))
            box_a = box_a.union(rect)
        else:
            group_b.append((rect, pointer))
            box_b = box_b.union(rect)
    return group_a, group_b


def linear_split(
    entries: list[Entry], min_fill: int
) -> tuple[list[Entry], list[Entry]]:
    """Guttman's linear split.

    Seeds are the pair with the greatest normalized separation along any
    axis; remaining entries are assigned in input order by least
    enlargement.
    """
    if len(entries) < 2:
        raise ValueError("cannot split fewer than 2 entries")
    if min_fill < 1 or 2 * min_fill > len(entries):
        raise ValueError(
            f"min_fill {min_fill} infeasible for {len(entries)} entries"
        )

    dim = entries[0][0].dim
    total = mbr_of(rect for rect, _ in entries)
    best_sep = -1.0
    seed_a = 0
    seed_b = 1
    for axis in range(dim):
        # Entry with the highest low side and entry with the lowest high side.
        high_low = max(range(len(entries)), key=lambda k: entries[k][0].lo[axis])
        low_high = min(range(len(entries)), key=lambda k: entries[k][0].hi[axis])
        if high_low == low_high:
            continue
        width = total.side(axis)
        if width <= 0:
            continue
        sep = (
            entries[high_low][0].lo[axis] - entries[low_high][0].hi[axis]
        ) / width
        if sep > best_sep:
            best_sep = sep
            seed_a, seed_b = high_low, low_high
    if seed_a == seed_b:  # all rectangles identical along every axis
        seed_b = (seed_a + 1) % len(entries)

    group_a = [entries[seed_a]]
    group_b = [entries[seed_b]]
    box_a = entries[seed_a][0]
    box_b = entries[seed_b][0]
    remaining = [e for k, e in enumerate(entries) if k not in (seed_a, seed_b)]

    for idx, (rect, pointer) in enumerate(remaining):
        left = len(remaining) - idx
        if len(group_a) + left <= min_fill:
            group_a.append((rect, pointer))
            box_a = box_a.union(rect)
            continue
        if len(group_b) + left <= min_fill:
            group_b.append((rect, pointer))
            box_b = box_b.union(rect)
            continue
        if box_a.enlargement(rect) <= box_b.enlargement(rect):
            group_a.append((rect, pointer))
            box_a = box_a.union(rect)
        else:
            group_b.append((rect, pointer))
            box_b = box_b.union(rect)
    return group_a, group_b
