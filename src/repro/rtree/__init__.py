"""The disk-resident R-tree all index variants share.

Every bulk loader in this reproduction — packed Hilbert, four-dimensional
Hilbert, TGS, STR, and the PR-tree itself — produces the same structure: an
:class:`~repro.rtree.tree.RTree` whose nodes live one-per-block in a
:class:`~repro.iomodel.blockstore.BlockStore`.  Queries, update algorithms,
validation and all experiment measurements therefore apply uniformly, which
is what makes the paper's cross-variant comparisons meaningful.

Contents:

* :mod:`repro.rtree.node` — the node payload (leaf flag + entry list).
* :mod:`repro.rtree.tree` — the tree handle: root pointer, fan-out,
  object table, convenience queries.
* :mod:`repro.rtree.query` — the window-query engine with the paper's
  I/O accounting (internal nodes cached, leaf reads counted).
* :mod:`repro.rtree.split` — Guttman's linear and quadratic node splits.
* :mod:`repro.rtree.update` — standard R-tree insert/delete ("after
  bulk-loading, a PR-tree can be updated in O(log_B N) I/Os using the
  standard R-tree updating algorithms").
* :mod:`repro.rtree.validate` — structural invariant checks and space
  utilization statistics.
"""

from repro.rtree.node import Node, Entry
from repro.rtree.tree import RTree
from repro.rtree.query import QueryEngine, QueryStats
from repro.rtree.update import insert, delete
from repro.rtree.validate import validate_rtree, utilization, RTreeInvariantError

__all__ = [
    "Node",
    "Entry",
    "RTree",
    "QueryEngine",
    "QueryStats",
    "insert",
    "delete",
    "validate_rtree",
    "utilization",
    "RTreeInvariantError",
]
