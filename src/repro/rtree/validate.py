"""Structural invariant checks and space-utilization statistics.

The paper's R-tree definition (Section 1.1) pins down the invariants every
variant must satisfy: a height-balanced multiway tree with all leaves on
the same level, Θ(B) entries per node, and each internal entry holding "a
minimal bounding box covering all rectangles in the leaves of the subtree
rooted in that child".  Bulk loaders additionally target high fill: "most
bulk-loading algorithms are capable of obtaining over 95% space
utilization", and Section 3.3 reports above 99 % for all four variants.

:func:`validate_rtree` walks a tree and raises
:class:`RTreeInvariantError` on the first violation; integration tests
run it on every tree any builder produces.  On success it returns a
structured :class:`ValidationReport` — per-level node/entry counts and
the containment-check tally — which ``repro health`` embeds next to the
tree-quality analytics.  The walk reads strictly via the quiet peek
path (``quiet_peek`` on paged stores), so validating an index never
perturbs :class:`~repro.storage.paged.PageCacheStats` or the ghost-LRU
tracker.  :func:`utilization` measures fill.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.rect import mbr_of
from repro.rtree.tree import RTree


class RTreeInvariantError(AssertionError):
    """A structural R-tree invariant does not hold."""


@dataclass(frozen=True)
class LevelCounts:
    """Node/entry tally of one tree level (0 = root)."""

    level: int
    nodes: int
    entries: int
    leaf: bool


@dataclass(frozen=True)
class ValidationReport:
    """What a successful :func:`validate_rtree` walk established.

    ``mbr_checks`` counts the internal entries whose bounding box was
    verified to be the *exact* union of the child's entries — on a
    valid tree this equals the number of non-root nodes.
    """

    height: int
    size: int
    levels: tuple[LevelCounts, ...]
    mbr_checks: int

    @property
    def nodes(self) -> int:
        """Total nodes walked."""
        return sum(l.nodes for l in self.levels)

    @property
    def entries(self) -> int:
        """Total entries (directory and data) walked."""
        return sum(l.entries for l in self.levels)


def _quiet_reader(tree: RTree):
    # Paged stores expose a strictly side-effect-free read; in-memory
    # stores' peek is already silent.
    return getattr(tree.store, "quiet_peek", None) or tree.peek_node


def validate_rtree(
    tree: RTree,
    expect_size: int | None = None,
    min_node_fill: int | None = None,
) -> ValidationReport:
    """Check all structural invariants; raise on the first violation.

    Parameters
    ----------
    tree:
        Any RTree (bulk-loaded or dynamically built).
    expect_size:
        When given, additionally require exactly this many data entries.
    min_node_fill:
        Minimum entries per non-root node to enforce.  Defaults to 1
        (structural sanity); pass ``tree.min_fill`` to check Guttman
        maintenance or a higher bound for packed trees.

    Returns
    -------
    ValidationReport
        Per-level counts of the successful walk (the health CLI's
        structural summary); raises before returning on any violation.
    """
    fill_floor = 1 if min_node_fill is None else min_node_fill
    read = _quiet_reader(tree)
    leaf_depths: set[int] = set()
    data_count = 0
    mbr_checks = 0
    seen_blocks: set[int] = set()
    level_nodes: dict[int, int] = {}
    level_entries: dict[int, int] = {}
    level_leaf: dict[int, bool] = {}

    def walk(block_id: int, depth: int, node=None) -> None:
        nonlocal data_count, mbr_checks
        if block_id in seen_blocks:
            raise RTreeInvariantError(
                f"block {block_id} reachable twice (tree is not a tree)"
            )
        seen_blocks.add(block_id)
        if node is None:
            node = read(block_id)
        is_root = block_id == tree.root_id
        level_nodes[depth] = level_nodes.get(depth, 0) + 1
        level_entries[depth] = level_entries.get(depth, 0) + len(node.entries)
        level_leaf[depth] = node.is_leaf
        if len(node.entries) > tree.fanout:
            raise RTreeInvariantError(
                f"node {block_id} has {len(node.entries)} entries, "
                f"fanout is {tree.fanout}"
            )
        if not is_root and len(node.entries) < fill_floor:
            raise RTreeInvariantError(
                f"non-root node {block_id} has only {len(node.entries)} "
                f"entries (minimum {fill_floor})"
            )
        for rect, _ in node.entries:
            if rect.dim != tree.dim:
                raise RTreeInvariantError(
                    f"node {block_id} holds a rect of dim {rect.dim}, "
                    f"tree dim is {tree.dim}"
                )
        if node.is_leaf:
            leaf_depths.add(depth)
            data_count += len(node.entries)
            for _, oid in node.entries:
                if oid not in tree.objects:
                    raise RTreeInvariantError(
                        f"leaf {block_id} points at unknown object id {oid}"
                    )
        else:
            if not node.entries and not is_root:
                raise RTreeInvariantError(f"empty internal node {block_id}")
            for rect, child_id in node.entries:
                if child_id not in tree.store:
                    raise RTreeInvariantError(
                        f"node {block_id} points at freed block {child_id}"
                    )
                child = read(child_id)
                if not child.entries:
                    raise RTreeInvariantError(
                        f"child {child_id} of node {block_id} is empty"
                    )
                exact = mbr_of(r for r, _ in child.entries)
                if exact != rect:
                    raise RTreeInvariantError(
                        f"entry box for child {child_id} is {rect}, exact "
                        f"union of the child's entries is {exact}"
                    )
                mbr_checks += 1
                walk(child_id, depth + 1, child)

    walk(tree.root_id, 0)

    if len(leaf_depths) > 1:
        raise RTreeInvariantError(
            f"leaves found on multiple levels: {sorted(leaf_depths)}"
        )
    if leaf_depths and tree.height != next(iter(leaf_depths)) + 1:
        raise RTreeInvariantError(
            f"tree.height is {tree.height} but leaves sit at depth "
            f"{next(iter(leaf_depths))}"
        )
    if tree.size != data_count:
        raise RTreeInvariantError(
            f"tree.size is {tree.size} but {data_count} data entries found"
        )
    if expect_size is not None and data_count != expect_size:
        raise RTreeInvariantError(
            f"expected {expect_size} data entries, found {data_count}"
        )
    return ValidationReport(
        height=tree.height,
        size=data_count,
        levels=tuple(
            LevelCounts(
                level=depth,
                nodes=level_nodes[depth],
                entries=level_entries[depth],
                leaf=level_leaf[depth],
            )
            for depth in sorted(level_nodes)
        ),
        mbr_checks=mbr_checks,
    )


@dataclass(frozen=True)
class Utilization:
    """Fill statistics for one tree."""

    leaf_nodes: int
    internal_nodes: int
    data_entries: int
    leaf_fill: float
    overall_fill: float

    @property
    def nodes(self) -> int:
        """Total nodes."""
        return self.leaf_nodes + self.internal_nodes


def utilization(tree: RTree) -> Utilization:
    """Space utilization: entries stored versus slots available.

    ``leaf_fill`` is the quantity the paper reports ("space utilization
    above 99%"): data entries divided by leaf capacity.
    """
    leaf_nodes = 0
    internal_nodes = 0
    data_entries = 0
    total_entries = 0
    for block_id, node, _ in tree.iter_nodes():
        total_entries += len(node.entries)
        if node.is_leaf:
            leaf_nodes += 1
            data_entries += len(node.entries)
        else:
            internal_nodes += 1
    leaf_capacity = leaf_nodes * tree.fanout
    total_capacity = (leaf_nodes + internal_nodes) * tree.fanout
    return Utilization(
        leaf_nodes=leaf_nodes,
        internal_nodes=internal_nodes,
        data_entries=data_entries,
        leaf_fill=data_entries / leaf_capacity if leaf_capacity else 0.0,
        overall_fill=total_entries / total_capacity if total_capacity else 0.0,
    )
