r"""R*-tree insertion (Beckmann, Kriegel, Schneider, Seeger 1990).

The paper cites the R*-tree [6] as the canonical heuristic-update
R-tree — it is also what mainstream libraries ship today, which makes it
the natural "production baseline" for the dynamic-update ablations.  The
reproduction implements the three R* ingredients on top of the shared
tree representation:

* **ChooseSubtree** — descend by least *overlap* enlargement at the leaf
  level (least area enlargement above it);
* **Forced reinsertion** — the first time a node overflows on a given
  level during one insertion, evict the 30 % of entries whose centers
  lie farthest from the node's center and reinsert them, instead of
  splitting;
* **R\* split** — choose the split axis by minimum total margin over all
  legal distributions, then the distribution with minimal overlap
  (ties: minimal total area).

Deletion is unchanged from Guttman (:func:`repro.rtree.update.delete`
works on any tree).
"""

from __future__ import annotations

from typing import Any

from repro.geometry.rect import Rect, mbr_of
from repro.rtree.node import Entry, Node
from repro.rtree.tree import RTree

#: Fraction of entries evicted by forced reinsertion (the R* paper's p).
REINSERT_FRACTION = 0.3


# ----------------------------------------------------------------------
# R* split
# ----------------------------------------------------------------------


def _distributions(entries: list[Entry], min_fill: int):
    """All legal (first-group-size) cut points."""
    return range(min_fill, len(entries) - min_fill + 1)


def rstar_split(
    entries: list[Entry], min_fill: int
) -> tuple[list[Entry], list[Entry]]:
    """The R*-tree split: margin-minimal axis, overlap-minimal cut."""
    if len(entries) < 2:
        raise ValueError("cannot split fewer than 2 entries")
    if min_fill < 1 or 2 * min_fill > len(entries):
        raise ValueError(
            f"min_fill {min_fill} infeasible for {len(entries)} entries"
        )
    dim = entries[0][0].dim

    best_axis_margin = float("inf")
    best_axis_orderings: list[list[Entry]] = []
    for axis in range(dim):
        by_lo = sorted(entries, key=lambda e: (e[0].lo[axis], e[0].hi[axis]))
        by_hi = sorted(entries, key=lambda e: (e[0].hi[axis], e[0].lo[axis]))
        margin = 0.0
        for ordering in (by_lo, by_hi):
            for cut in _distributions(ordering, min_fill):
                margin += mbr_of(r for r, _ in ordering[:cut]).margin()
                margin += mbr_of(r for r, _ in ordering[cut:]).margin()
        if margin < best_axis_margin:
            best_axis_margin = margin
            best_axis_orderings = [by_lo, by_hi]

    best = None
    best_key = (float("inf"), float("inf"))
    for ordering in best_axis_orderings:
        # Prefix/suffix boxes for O(n) evaluation per ordering.
        prefixes: list[Rect] = []
        box = None
        for rect, _ in ordering:
            box = rect if box is None else box.union(rect)
            prefixes.append(box)
        suffixes: list[Rect] = [None] * len(ordering)  # type: ignore[list-item]
        box = None
        for i in range(len(ordering) - 1, -1, -1):
            rect = ordering[i][0]
            box = rect if box is None else box.union(rect)
            suffixes[i] = box
        for cut in _distributions(ordering, min_fill):
            left_box = prefixes[cut - 1]
            right_box = suffixes[cut]
            inter = left_box.intersection(right_box)
            overlap = inter.area() if inter is not None else 0.0
            key = (overlap, left_box.area() + right_box.area())
            if key < best_key:
                best_key = key
                best = (list(ordering[:cut]), list(ordering[cut:]))
    assert best is not None
    return best


# ----------------------------------------------------------------------
# ChooseSubtree
# ----------------------------------------------------------------------


def _overlap_with_siblings(node: Node, candidate: int, box: Rect) -> float:
    """Total overlap of ``box`` with the other children's boxes."""
    total = 0.0
    for idx, (other, _) in enumerate(node.entries):
        if idx == candidate:
            continue
        inter = box.intersection(other)
        if inter is not None:
            total += inter.area()
    return total


def _choose_subtree(tree: RTree, node: Node, rect: Rect, children_are_leaves: bool) -> int:
    if children_are_leaves:
        # Minimize overlap enlargement; ties by area enlargement, then area.
        best_idx = 0
        best_key = None
        for idx, (box, _) in enumerate(node.entries):
            grown = box.union(rect)
            overlap_delta = _overlap_with_siblings(
                node, idx, grown
            ) - _overlap_with_siblings(node, idx, box)
            key = (overlap_delta, grown.area() - box.area(), box.area())
            if best_key is None or key < best_key:
                best_key = key
                best_idx = idx
        return best_idx
    best_idx = 0
    best_key = None
    for idx, (box, _) in enumerate(node.entries):
        key = (box.enlargement(rect), box.area())
        if best_key is None or key < best_key:
            best_key = key
            best_idx = idx
    return best_idx


# ----------------------------------------------------------------------
# Insertion with forced reinsertion
# ----------------------------------------------------------------------


def rstar_insert(tree: RTree, rect: Rect, value: Any) -> int:
    """Insert with the R*-tree algorithm; returns the object id."""
    if rect.dim != tree.dim:
        raise ValueError(f"rect has dim {rect.dim}, tree indexes dim {tree.dim}")
    oid = tree.register_object(value)
    _insert(tree, rect, oid, target_level=0, reinserted_levels=set())
    tree.size += 1
    return oid


def _insert(
    tree: RTree,
    rect: Rect,
    pointer: int,
    target_level: int,
    reinserted_levels: set[int],
) -> None:
    path: list[tuple[int, Node, int]] = []
    block_id = tree.root_id
    node = tree.read_node(block_id)
    level = tree.height - 1
    while level > target_level:
        children_are_leaves = level == 1 and target_level == 0
        child_idx = _choose_subtree(tree, node, rect, children_are_leaves)
        path.append((block_id, node, child_idx))
        block_id = node.entries[child_idx][1]
        node = tree.read_node(block_id)
        level -= 1

    node.add(rect, pointer)
    _overflow_treatment(tree, path, block_id, node, target_level, reinserted_levels)


def _overflow_treatment(
    tree: RTree,
    path: list[tuple[int, Node, int]],
    block_id: int,
    node: Node,
    level: int,
    reinserted_levels: set[int],
) -> None:
    """Write back, handling overflow by reinsertion or split (bottom-up)."""
    split_sibling: tuple[Rect, int] | None = None
    to_reinsert: list[tuple[Entry, int]] = []

    if len(node) > tree.fanout:
        is_root = block_id == tree.root_id
        if level not in reinserted_levels and not is_root:
            # Forced reinsertion: evict the entries farthest from the
            # node's center (once per level per insertion).
            reinserted_levels.add(level)
            center = node.mbr().center()

            def distance(entry: Entry) -> float:
                c = entry[0].center()
                return sum((a - b) ** 2 for a, b in zip(c, center))

            node.entries.sort(key=distance)
            count = max(1, int(len(node.entries) * REINSERT_FRACTION))
            evicted = node.entries[-count:]
            node.entries = node.entries[:-count]
            to_reinsert = [(entry, level) for entry in evicted]
        else:
            group_a, group_b = rstar_split(node.entries, tree.min_fill)
            node.entries = group_a
            sibling = Node(node.is_leaf, group_b)
            sibling_id = tree.store.allocate(sibling)
            split_sibling = (sibling.mbr(), sibling_id)

    tree.write_node(block_id, node)
    child_mbr = node.mbr() if node.entries else None
    child_id = block_id

    for parent_id, parent, child_idx in reversed(path):
        level += 1
        if child_mbr is not None:
            parent.entries[child_idx] = (child_mbr, child_id)
        else:  # node emptied by reinsertion; drop the entry
            del parent.entries[child_idx]
        if split_sibling is not None:
            parent.add(*split_sibling)
            split_sibling = None
        if len(parent) > tree.fanout:
            group_a, group_b = rstar_split(parent.entries, tree.min_fill)
            parent.entries = group_a
            sibling = Node(parent.is_leaf, group_b)
            sibling_id = tree.store.allocate(sibling)
            split_sibling = (sibling.mbr(), sibling_id)
        tree.write_node(parent_id, parent)
        child_mbr = parent.mbr() if parent.entries else None
        child_id = parent_id

    if split_sibling is not None:
        old_root = tree.store.peek(tree.root_id)
        new_root = Node(
            is_leaf=False,
            entries=[(old_root.mbr(), tree.root_id), split_sibling],
        )
        tree.root_id = tree.store.allocate(new_root)
        tree.height += 1

    for (rect, pointer), entry_level in to_reinsert:
        _insert(tree, rect, pointer, entry_level, reinserted_levels)
