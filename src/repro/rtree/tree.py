"""The R-tree handle.

An :class:`RTree` owns a root block id in a
:class:`~repro.iomodel.blockstore.BlockStore` plus the bookkeeping every
variant shares: dimension, fan-out (derived from the block size the same
way the paper derives 113 from 4 KB blocks), height, entry count, and the
object table mapping leaf pointers back to caller values (the simulated
"pointer to the original data").

The handle deliberately knows nothing about how it was built — a PR-tree, a
packed Hilbert tree and a dynamically grown Guttman tree are all just
``RTree`` instances with different shapes, queried by the same engine.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.geometry.rect import Rect
from repro.iomodel.store import BlockId, BlockStoreProtocol
from repro.rtree.node import Node


class RTree:
    """A disk-resident R-tree over a block store.

    Parameters
    ----------
    store:
        Any :class:`~repro.iomodel.store.BlockStoreProtocol` backend
        whose payloads are decoded :class:`~repro.rtree.node.Node`
        objects — the in-memory simulated disk or the lazily decoding
        paged store in :mod:`repro.storage`.
    root_id:
        Block id of the root node.
    dim:
        Spatial dimension of the indexed rectangles.
    fanout:
        Maximum entries per node (the paper's B; 113 for 4 KB blocks in 2D).
    height:
        Number of levels; 1 means the root is a leaf.
    size:
        Number of data rectangles stored.
    min_fill:
        Minimum entries per non-root node enforced by the *dynamic* update
        algorithms (Guttman's m); bulk loaders may pack fuller.
    """

    def __init__(
        self,
        store: BlockStoreProtocol,
        root_id: BlockId,
        dim: int,
        fanout: int,
        height: int,
        size: int,
        min_fill: int | None = None,
    ) -> None:
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.store = store
        self.root_id = root_id
        self.dim = dim
        self.fanout = fanout
        self.height = height
        self.size = size
        self.min_fill = min_fill if min_fill is not None else max(1, (fanout * 2) // 5)
        self.objects: dict[int, Any] = {}
        self._next_oid = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def create_empty(
        cls, store: BlockStoreProtocol, dim: int = 2, fanout: int = 32
    ) -> "RTree":
        """A tree with a single empty leaf root, ready for inserts."""
        root_id = store.allocate(Node(is_leaf=True))
        return cls(store, root_id, dim=dim, fanout=fanout, height=1, size=0)

    def register_object(self, value: Any) -> int:
        """Assign an object id for a caller value (leaf pointer target)."""
        oid = self._next_oid
        self._next_oid = oid + 1
        self.objects[oid] = value
        return oid

    # ------------------------------------------------------------------
    # Node access
    # ------------------------------------------------------------------

    def read_node(self, block_id: BlockId) -> Node:
        """Read a node, counting one I/O."""
        return self.store.read(block_id)

    def peek_node(self, block_id: BlockId) -> Node:
        """Read a node without I/O accounting (validation/debugging)."""
        return self.store.peek(block_id)

    def write_node(self, block_id: BlockId, node: Node) -> None:
        """Write a node back, counting one I/O."""
        self.store.write(block_id, node)

    def root(self) -> Node:
        """The root node (uncounted; the paper pins the root in memory)."""
        return self.store.peek(self.root_id)

    # ------------------------------------------------------------------
    # Whole-tree iteration (uncounted; used by validation and tests)
    # ------------------------------------------------------------------

    def iter_nodes(self) -> Iterator[tuple[BlockId, Node, int]]:
        """Yield ``(block_id, node, depth)`` in preorder without I/O cost."""
        stack: list[tuple[BlockId, int]] = [(self.root_id, 0)]
        while stack:
            block_id, depth = stack.pop()
            node = self.store.peek(block_id)
            yield block_id, node, depth
            if not node.is_leaf:
                for child_id in node.child_ids():
                    stack.append((child_id, depth + 1))

    def iter_leaves(self) -> Iterator[tuple[BlockId, Node]]:
        """Yield all leaf nodes without I/O cost."""
        for block_id, node, _ in self.iter_nodes():
            if node.is_leaf:
                yield block_id, node

    def all_data(self) -> Iterator[tuple[Rect, Any]]:
        """Yield every stored (rectangle, value) pair without I/O cost."""
        for _, leaf in self.iter_leaves():
            for rect, oid in leaf.entries:
                yield rect, self.objects.get(oid)

    def node_count(self) -> int:
        """Total nodes in the tree."""
        return sum(1 for _ in self.iter_nodes())

    def leaf_count(self) -> int:
        """Total leaf nodes — the denominator of the paper's Table 1
        "% of the R-tree visited" row."""
        return sum(1 for _ in self.iter_leaves())

    # ------------------------------------------------------------------
    # Convenience updating (the standard dynamic algorithms)
    # ------------------------------------------------------------------

    def insert(self, rect: Rect, value: Any) -> int:
        """Insert a data rectangle (Guttman); returns the object id.

        Delegates to :func:`repro.rtree.update.insert`; use that module
        directly to choose a different node splitter.
        """
        from repro.rtree.update import insert

        return insert(self, rect, value)

    def delete(self, rect: Rect, value: Any) -> bool:
        """Delete one data rectangle equal to ``rect`` with ``value``.

        Delegates to :func:`repro.rtree.update.delete`; returns True
        when a matching entry was found and removed.
        """
        from repro.rtree.update import delete

        return delete(self, rect, value)

    # ------------------------------------------------------------------
    # Convenience querying
    # ------------------------------------------------------------------

    def query(self, window: Rect) -> list[tuple[Rect, Any]]:
        """One-off window query returning ``(rect, value)`` matches.

        For measured experiments use :class:`repro.rtree.query.QueryEngine`
        directly — it exposes I/O statistics and reuses its cache across a
        query workload the way the paper's setup does.
        """
        from repro.rtree.query import QueryEngine

        matches, _ = QueryEngine(self).query(window)
        return matches

    def count_query(self, window: Rect) -> int:
        """Number of stored rectangles intersecting ``window``."""
        return len(self.query(window))

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"RTree(dim={self.dim}, fanout={self.fanout}, height={self.height}, "
            f"size={self.size})"
        )
