"""Standard dynamic R-tree updates (Guttman 1984).

The paper: "Guttman gave several algorithms for updating an R-tree in
O(log_B N) I/Os using B-tree-like algorithms" and "after bulk-loading, a
PR-tree can be updated in O(log_B N) I/Os using the standard R-tree
updating algorithms, but without maintaining its query efficiency"
(Sections 1.1, 1.2).  This module is those standard algorithms:

* **Insert** — ChooseLeaf by least enlargement, split on overflow
  (quadratic by default), AdjustTree upward, root split grows the tree.
* **Delete** — FindLeaf, remove, CondenseTree (underfull nodes are
  dissolved and their entries reinserted at the correct level), root
  collapse shrinks the tree.

All node reads/writes go through the tree's counted accessors, so update
I/O cost is measurable just like query cost.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.geometry.rect import Rect
from repro.rtree.node import Entry, Node
from repro.rtree.split import quadratic_split
from repro.rtree.tree import RTree

Splitter = Callable[[list[Entry], int], tuple[list[Entry], list[Entry]]]


# ----------------------------------------------------------------------
# Insertion
# ----------------------------------------------------------------------


def insert(
    tree: RTree, rect: Rect, value: Any, splitter: Splitter = quadratic_split
) -> int:
    """Insert a data rectangle; returns the assigned object id."""
    if rect.dim != tree.dim:
        raise ValueError(f"rect has dim {rect.dim}, tree indexes dim {tree.dim}")
    oid = tree.register_object(value)
    _insert_at_level(tree, rect, oid, target_level=0, splitter=splitter)
    tree.size += 1
    return oid


def _choose_subtree(node: Node, rect: Rect) -> int:
    """Index of the child entry needing least enlargement (ties: area)."""
    best_idx = 0
    best_growth = float("inf")
    best_area = float("inf")
    for idx, (box, _) in enumerate(node.entries):
        growth = box.enlargement(rect)
        area = box.area()
        if growth < best_growth or (growth == best_growth and area < best_area):
            best_idx = idx
            best_growth = growth
            best_area = area
    return best_idx


def _insert_at_level(
    tree: RTree, rect: Rect, pointer: int, target_level: int, splitter: Splitter
) -> None:
    """Insert an entry into a node at ``target_level`` (0 = leaves).

    Used both for data inserts (level 0) and for CondenseTree's
    reinsertion of orphaned subtrees at their original level.
    """
    # Descend, recording the path as (block_id, node, chosen child index).
    path: list[tuple[int, Node, int]] = []
    block_id = tree.root_id
    node = tree.read_node(block_id)
    level = tree.height - 1
    while level > target_level:
        child_idx = _choose_subtree(node, rect)
        path.append((block_id, node, child_idx))
        block_id = node.entries[child_idx][1]
        node = tree.read_node(block_id)
        level -= 1

    node.add(rect, pointer)
    _propagate_up(tree, path, block_id, node, splitter)


def _propagate_up(
    tree: RTree,
    path: list[tuple[int, Node, int]],
    block_id: int,
    node: Node,
    splitter: Splitter,
) -> None:
    """AdjustTree: write back, split overflowing nodes, grow the root."""
    split_sibling: tuple[Rect, int] | None = None

    if len(node) > tree.fanout:
        group_a, group_b = splitter(node.entries, tree.min_fill)
        node.entries = group_a
        sibling = Node(node.is_leaf, group_b)
        sibling_id = tree.store.allocate(sibling)
        split_sibling = (sibling.mbr(), sibling_id)
    tree.write_node(block_id, node)

    child_mbr = node.mbr()
    child_id = block_id

    for parent_id, parent, child_idx in reversed(path):
        parent.entries[child_idx] = (child_mbr, child_id)
        if split_sibling is not None:
            parent.add(*split_sibling)
            split_sibling = None
        if len(parent) > tree.fanout:
            group_a, group_b = splitter(parent.entries, tree.min_fill)
            parent.entries = group_a
            sibling = Node(parent.is_leaf, group_b)
            sibling_id = tree.store.allocate(sibling)
            split_sibling = (sibling.mbr(), sibling_id)
        tree.write_node(parent_id, parent)
        child_mbr = parent.mbr()
        child_id = parent_id

    if split_sibling is not None:
        # The root itself split: grow the tree by one level.
        old_root = tree.store.peek(tree.root_id)
        new_root = Node(
            is_leaf=False,
            entries=[(old_root.mbr(), tree.root_id), split_sibling],
        )
        tree.root_id = tree.store.allocate(new_root)
        tree.height += 1


# ----------------------------------------------------------------------
# Deletion
# ----------------------------------------------------------------------


def delete(tree: RTree, rect: Rect, value: Any) -> bool:
    """Delete one data rectangle equal to ``rect`` whose value matches.

    Returns True when an entry was found and removed.  Matching compares
    the stored value by equality; passing the value returned at insert
    time (or by a query) deletes that entry.  When several stored
    entries carry the same ``(rect, value)`` pair, exactly one is
    removed per call — the first match in the deterministic
    find-leaf traversal order.
    """
    found = _find_leaf(tree, rect, value)
    if found is None:
        return False
    path, leaf_id, leaf, entry_idx = found
    oid = leaf.entries[entry_idx][1]
    del leaf.entries[entry_idx]
    _condense_tree(tree, path, leaf_id, leaf)
    # Bookkeeping last: a condense that fails must not leave the size
    # or object table claiming the entry was removed.
    tree.objects.pop(oid, None)
    tree.size -= 1
    return True


def _find_leaf(
    tree: RTree, rect: Rect, value: Any
) -> tuple[list[tuple[int, Node, int]], int, Node, int] | None:
    """Locate a leaf containing ``(rect, value)``.

    Returns ``(path, leaf_block_id, leaf, entry_index)`` where path lists
    ``(block_id, node, child_index)`` from the root down.  Depth-first
    search over all subtrees whose boxes contain ``rect``.
    """
    stack: list[tuple[int, list[tuple[int, Node, int]]]] = [(tree.root_id, [])]
    while stack:
        block_id, path = stack.pop()
        node = tree.read_node(block_id)
        if node.is_leaf:
            for idx, (box, oid) in enumerate(node.entries):
                if box == rect and tree.objects.get(oid) == value:
                    return path, block_id, node, idx
        else:
            for child_idx, (box, child_id) in enumerate(node.entries):
                if box.contains_rect(rect):
                    stack.append((child_id, path + [(block_id, node, child_idx)]))
    return None


def _condense_tree(
    tree: RTree, path: list[tuple[int, Node, int]], block_id: int, node: Node
) -> None:
    """CondenseTree: dissolve underfull nodes, tighten boxes, reinsert."""
    # (entries, level) pairs orphaned by eliminated nodes.
    orphans: list[tuple[list[Entry], int]] = []
    level = 0
    current_id, current = block_id, node

    for parent_id, parent, child_idx in reversed(path):
        if len(current) < tree.min_fill:
            del parent.entries[child_idx]
            if current.entries:
                orphans.append((list(current.entries), level))
            tree.store.free(current_id)
        else:
            parent.entries[child_idx] = (current.mbr(), current_id)
            tree.write_node(current_id, current)
        current_id, current = parent_id, parent
        level += 1

    tree.write_node(current_id, current)

    # An internal root can be left empty when its entire remaining
    # subtree dissolved; restart from an empty leaf root so reinsertion
    # has somewhere to descend.
    root = tree.store.peek(tree.root_id)
    if not root.is_leaf and not root.entries:
        tree.store.free(tree.root_id)
        tree.root_id = tree.store.allocate(Node(is_leaf=True))
        tree.height = 1

    # Reinsert orphans at their original level (leaf entries at level 0,
    # subtree entries higher up) *before* any root collapse, while
    # tree.height still matches the levels the orphans were recorded
    # against — collapsing first can shrink the tree below an orphan's
    # level and graft a subtree pointer at the wrong depth, corrupting
    # the tree.  Reinsertion can itself split nodes and grow the root.
    for entries, entry_level in orphans:
        for rect, pointer in entries:
            _reinsert(tree, rect, pointer, entry_level)

    # Root collapse: an internal root with one child is replaced by it.
    while True:
        root = tree.store.peek(tree.root_id)
        if root.is_leaf or len(root) != 1:
            break
        old_root_id = tree.root_id
        tree.root_id = root.entries[0][1]
        tree.store.free(old_root_id)
        tree.height -= 1


def _reinsert(tree: RTree, rect: Rect, pointer: int, level: int) -> None:
    """Reinsert one orphaned entry at ``level`` (0 = leaf entries).

    When the tree is shorter than the orphan's level (the root chain
    above it collapsed into an empty leaf), the orphan subtree cannot be
    grafted whole; dissolve it into its children and reinsert those one
    level further down instead.
    """
    if level <= tree.height - 1:
        _insert_at_level(tree, rect, pointer, level, quadratic_split)
        return
    node = tree.read_node(pointer)
    children = list(node.entries)
    tree.store.free(pointer)
    for child_rect, child_pointer in children:
        _reinsert(tree, child_rect, child_pointer, level - 1)
