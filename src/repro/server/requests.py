"""Request and response types of the batched query server.

Requests are small frozen dataclasses — hashable so the server can
deduplicate repeats inside a batch, and carrying the *name* of the index
they target so one server can front a catalog of trees.  Each request
kind maps onto one engine from :mod:`repro.queries` /
:mod:`repro.rtree.query`:

===========  ==========================================================
kind         engine
===========  ==========================================================
window       :class:`~repro.rtree.query.QueryEngine.query`
containment  :class:`~repro.queries.point.PointQueryEngine.containment_query`
count        :class:`~repro.queries.point.PointQueryEngine.count`
point        :class:`~repro.queries.point.PointQueryEngine.point_query`
knn          :class:`~repro.queries.knn.KNNEngine.knn`
join         :class:`~repro.queries.join.SpatialJoinEngine.join`
insert       :func:`repro.rtree.update.insert` (write; never deduped)
delete       :func:`repro.rtree.update.delete` (write; never deduped)
===========  ==========================================================

The two *write* kinds are exempt from batch deduplication and locality
reordering: two identical inserts mean two entries, and write order is
semantics.  Within a batch, all writes are applied in submission order
before any read executes (reads observe the post-write state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Sequence

from repro.geometry.rect import Rect

__all__ = [
    "DEFAULT_INDEX",
    "Request",
    "WindowRequest",
    "ContainmentRequest",
    "CountRequest",
    "PointRequest",
    "KNNRequest",
    "JoinRequest",
    "InsertRequest",
    "DeleteRequest",
    "UpdateStats",
    "RequestResult",
]

#: The index name used when a server fronts a single tree.
DEFAULT_INDEX = "default"


@dataclass(frozen=True)
class Request:
    """Base class: every request names the index it runs against."""

    kind: ClassVar[str] = "?"


@dataclass(frozen=True)
class WindowRequest(Request):
    """All data rectangles intersecting ``window``."""

    window: Rect
    index: str = DEFAULT_INDEX
    kind: ClassVar[str] = "window"


@dataclass(frozen=True)
class ContainmentRequest(Request):
    """All data rectangles lying entirely inside ``window``."""

    window: Rect
    index: str = DEFAULT_INDEX
    kind: ClassVar[str] = "containment"


@dataclass(frozen=True)
class CountRequest(Request):
    """Cardinality of a window query, without materializing matches."""

    window: Rect
    index: str = DEFAULT_INDEX
    kind: ClassVar[str] = "count"


@dataclass(frozen=True)
class PointRequest(Request):
    """All data rectangles containing ``point`` (stabbing query)."""

    point: tuple[float, ...]
    index: str = DEFAULT_INDEX
    kind: ClassVar[str] = "point"

    def __post_init__(self) -> None:
        # Accept any coordinate sequence but store a hashable tuple.
        object.__setattr__(
            self, "point", tuple(float(c) for c in self.point)
        )


@dataclass(frozen=True)
class KNNRequest(Request):
    """The ``k`` nearest data rectangles to ``target`` (point or Rect)."""

    target: tuple[float, ...] | Rect
    k: int
    index: str = DEFAULT_INDEX
    kind: ClassVar[str] = "knn"

    def __post_init__(self) -> None:
        if not isinstance(self.target, Rect):
            object.__setattr__(
                self, "target", tuple(float(c) for c in self.target)
            )
        if self.k < 0:
            raise ValueError("k must be >= 0")


@dataclass(frozen=True)
class InsertRequest(Request):
    """Insert one ``(rect, value)`` data rectangle into an index.

    A write: executed exactly once per occurrence, in submission order,
    before the batch's reads.  The result value is the assigned object
    id.  ``value`` may be any object (unhashable values are fine —
    writes never enter the dedup table).
    """

    rect: Rect
    value: Any = None
    index: str = DEFAULT_INDEX
    kind: ClassVar[str] = "insert"


@dataclass(frozen=True)
class DeleteRequest(Request):
    """Delete one data rectangle equal to ``rect`` whose value matches.

    A write: executed exactly once per occurrence, in submission order,
    before the batch's reads.  The result value is True when a matching
    entry was found and removed; duplicates of the same ``(rect,
    value)`` pair are removed one per request.
    """

    rect: Rect
    value: Any = None
    index: str = DEFAULT_INDEX
    kind: ClassVar[str] = "delete"


@dataclass
class UpdateStats:
    """I/O cost of one write request (logical, the paper's accounting).

    ``reads``/``writes`` are the counted block I/Os the update
    performed: the root-to-leaf descent plus written-back nodes, splits
    and condense work.  Physical page writes are deferred by the
    write-back layer and reported per batch
    (:attr:`~repro.server.server.BatchReport.pages_flushed`), not per
    request.
    """

    reads: int = 0
    writes: int = 0

    @property
    def ios(self) -> int:
        """Total logical block transfers of this update."""
        return self.reads + self.writes


@dataclass(frozen=True)
class JoinRequest(Request):
    """Every intersecting data-rectangle pair between two indexes."""

    left: str = DEFAULT_INDEX
    right: str = DEFAULT_INDEX
    kind: ClassVar[str] = "join"


@dataclass
class RequestResult:
    """One executed (or deduplicated) request of a batch.

    Attributes
    ----------
    request:
        The request this result answers.
    value:
        The operator's payload: ``(rect, value)`` matches for
        window/containment/point, an ``int`` for count, a list of
        :class:`~repro.queries.knn.Neighbor` for knn, a list of pairs
        for join, the assigned object id for insert, and a found
        ``bool`` for delete.
    stats:
        The operator's own statistics object
        (:class:`~repro.rtree.query.QueryStats` or
        :class:`~repro.queries.join.JoinStats`); shared between
        duplicates of the same request.
    latency_s:
        Wall-clock seconds the execution took (0.0 for duplicates —
        they reuse the first occurrence's result).
    deduped:
        True when this occurrence was answered from an earlier
        identical request in the same batch.
    plan:
        The captured :class:`~repro.queries.explain.QueryPlan` (or
        :class:`~repro.queries.explain.JoinPlan`) when the server ran
        with ``explain=True`` and the engine supports plan capture;
        None otherwise (writes, sharded facades, explain off).
        Duplicates share the first occurrence's plan.
    """

    request: Request
    value: Any
    stats: Any
    latency_s: float = 0.0
    deduped: bool = False
    plan: Any = None
