"""Batched query serving over disk-backed trees.

The storage engine (:mod:`repro.storage`) makes an index file queryable
without holding the tree in memory; this package adds the serving layer
on top: a :class:`~repro.server.server.QueryServer` that fronts a
catalog of named trees and executes *batches* of mixed
window/point/containment/count/kNN/join/insert/delete requests — deduplicated,
reordered along the Hilbert curve for page-cache locality, executed
over shared warm engines, and reported with per-batch latency, logical
I/O, and physical page reads.
"""

from repro.server.requests import (
    DEFAULT_INDEX,
    ContainmentRequest,
    CountRequest,
    DeleteRequest,
    InsertRequest,
    JoinRequest,
    KNNRequest,
    PointRequest,
    Request,
    RequestResult,
    UpdateStats,
    WindowRequest,
)
from repro.server.server import BatchReport, QueryServer

__all__ = [
    "QueryServer",
    "BatchReport",
    "Request",
    "WindowRequest",
    "ContainmentRequest",
    "CountRequest",
    "PointRequest",
    "KNNRequest",
    "JoinRequest",
    "InsertRequest",
    "DeleteRequest",
    "UpdateStats",
    "RequestResult",
    "DEFAULT_INDEX",
]
