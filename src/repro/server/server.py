"""The batched query server.

Serving heavy query traffic is its own engineering problem beyond a
correct index (cf. the SIGMOD 2014 programming-contest analyses): real
workloads arrive as *batches* of heterogeneous requests with repeats
and spatial locality that a naive one-at-a-time loop wastes.  The
:class:`QueryServer` fronts a catalog of named trees (typically
:class:`~repro.storage.paged.PagedTree` handles over index files) and
executes each batch with three optimizations:

* **Deduplication** — identical requests in a batch run once and share
  the result (requests are frozen, hashable dataclasses).
* **Locality reordering** — within each (index, operator) group,
  requests are sorted by the Hilbert value of their query's center, so
  consecutive queries touch neighbouring leaves and the paged store's
  LRU page cache (and the engines' internal-node pools) stay hot.
* **Shared warm engines** — one engine per (index, operator) lives
  across batches, keeping internal nodes cached exactly like the
  paper's repeated-query setup.

Batches may also carry *writes* (:class:`~repro.server.requests.InsertRequest`
/ :class:`~repro.server.requests.DeleteRequest`): they are applied in
submission order before any read executes, never deduplicated or
reordered, and — over a paged tree's dirty-page write-back store — cost
one physical page write per distinct dirty page rather than one per
logical write I/O.  Each batch reports its logical write I/O and the
pages physically flushed (:attr:`BatchReport.write_ios` /
:attr:`BatchReport.pages_flushed`).

The catalog also accepts **sharded** indexes
(:class:`~repro.storage.shard.ShardedTree`) transparently: requests
against one are executed by the sharded fan-out engines — window-style
queries touch only the shards whose MBR intersects, kNN best-first
merges per-shard streams, writes route/broadcast by Hilbert rank — and
every batch's :class:`BatchReport` carries a per-shard
logical/physical-I/O and busy-time breakdown
(:attr:`BatchReport.shard_loads`).

Execution is single-threaded by default (deterministic accounting);
``workers > 1`` runs independent request groups on a thread pool — safe
over paged trees because the :class:`~repro.storage.paged.PagedNodeStore`
read path is locked, with each group owning its engine — and
additionally fans a single sharded request out across its shards.
Every batch returns a :class:`BatchReport` with per-request payloads
*in the original order* plus the batch's latency, logical I/O, and
physical page reads — ``docs/io-accounting.md`` defines how those
columns relate to the store- and page-layer counters they aggregate.
"""

from __future__ import annotations

import contextvars
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.geometry import kernels
from repro.geometry.hilbert import hilbert_key_for_center
from repro.obs.profiler import phase as profile_phase
from repro.obs.tap import scoped_tap
from repro.obs.trace import Trace, activate_trace
from repro.queries import explain as explain_mod
from repro.geometry.rect import Rect, point_rect
from repro.queries.join import SpatialJoinEngine
from repro.queries.knn import KNNEngine
from repro.queries.point import PointQueryEngine
from repro.rtree.query import QueryEngine
from repro.rtree.tree import RTree
from repro.server.requests import (
    DEFAULT_INDEX,
    ContainmentRequest,
    CountRequest,
    DeleteRequest,
    InsertRequest,
    JoinRequest,
    KNNRequest,
    PointRequest,
    Request,
    RequestResult,
    UpdateStats,
    WindowRequest,
)
from repro.storage.shard import (
    ShardLoad,
    ShardedJoinEngine,
    ShardedKNNEngine,
    ShardedPointEngine,
    ShardedQueryEngine,
    ShardedTree,
)

__all__ = ["QueryServer", "BatchReport"]

#: Request kinds that mutate an index.
_WRITE_KINDS = (InsertRequest, DeleteRequest)


@dataclass
class BatchReport:
    """What one batch did and what it cost.

    ``results`` aligns one-to-one with the submitted requests, in their
    original order — reordering and deduplication are invisible to the
    caller except through the statistics.
    """

    results: list[RequestResult] = field(default_factory=list)
    latency_s: float = 0.0
    requests: int = 0
    executed: int = 0
    dedup_hits: int = 0
    leaf_ios: int = 0
    internal_reads: int = 0
    reported: int = 0
    #: Physical block reads (page-cache misses) *this batch caused*.
    #: Attributed at the store hooks through the batch's
    #: :class:`~repro.obs.tap.IOTap`, so concurrent batches on shared
    #: paged handles never bleed into each other's numbers.
    physical_reads: int = 0
    #: Write requests (insert/delete) applied by this batch.
    writes: int = 0
    #: Logical write I/Os the batch's updates performed.
    write_ios: int = 0
    #: Dirty pages physically encoded and written back during the batch
    #: (evictions plus the post-write sync) — with write-back this is at
    #: most the number of distinct dirty pages, not one per write I/O.
    #: Attributed per batch like :attr:`physical_reads`.
    pages_flushed: int = 0
    #: Per-shard breakdown for every sharded index this batch touched:
    #: index name → one :class:`~repro.storage.shard.ShardLoad` delta per
    #: shard (logical reads/writes, physical reads, pages flushed, and
    #: the wall-clock seconds the sharded engines spent on that shard).
    #: These remain shared-counter deltas (a load-balance view): under
    #: *overlapping* batches on one shared handle they can include other
    #: batches' traffic — the attributed batch totals above never do.
    shard_loads: dict[str, list[ShardLoad]] = field(default_factory=dict)
    #: The batch's full attributed I/O snapshot
    #: (:meth:`~repro.obs.tap.IOTap.snapshot`): logical reads/writes plus
    #: page-cache hits/misses/evictions/flushes this batch caused.
    io: dict[str, int] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        """Requests answered per second of batch wall-clock."""
        return self.requests / self.latency_s if self.latency_s > 0 else 0.0

    @property
    def cache_hit_ratio(self) -> float | None:
        """Page-cache hit ratio of this batch's counted reads.

        Computed from the batch-attributed :attr:`io` tap (hits vs
        hits+misses), so overlapping batches each report their own
        ratio.  ``None`` when the batch performed no counted page reads
        (e.g. pure simulated-store traffic).
        """
        hits = self.io.get("hits", 0)
        lookups = hits + self.io.get("misses", 0)
        return hits / lookups if lookups else None

    @property
    def avg_latency_ms(self) -> float:
        """Mean executed-request latency in milliseconds."""
        if not self.executed:
            return 0.0
        total = sum(r.latency_s for r in self.results if not r.deduped)
        return 1000.0 * total / self.executed

    def values(self) -> list[Any]:
        """Just the payloads, in submission order."""
        return [r.value for r in self.results]

    def kind_latencies(self) -> dict[str, list[float]]:
        """Executed-request latencies (seconds) grouped by request kind.

        Duplicates answered from the dedup table are skipped — they
        cost nothing and would drag percentiles toward zero.  This is
        the feed for :class:`~repro.service.stats.ServiceStats`, the
        shared latency vocabulary of the sync and async serving paths.
        """
        by_kind: dict[str, list[float]] = {}
        for result in self.results:
            if result.deduped:
                continue
            by_kind.setdefault(result.request.kind, []).append(
                result.latency_s
            )
        return by_kind

    def __repr__(self) -> str:
        return (
            f"BatchReport(requests={self.requests}, executed={self.executed}, "
            f"writes={self.writes}, leaf_ios={self.leaf_ios}, "
            f"physical_reads={self.physical_reads}, "
            f"pages_flushed={self.pages_flushed}, "
            f"latency={self.latency_s * 1000:.1f}ms)"
        )


def _group_key(request: Request) -> tuple:
    """Engine-affinity key.  The first element tags the key shape so an
    index literally named "join" cannot collide with join keys."""
    if isinstance(request, JoinRequest):
        return ("join", request.left, request.right)
    return ("op", request.index, request.kind)


class QueryServer:
    """Batched executor over a catalog of named trees.

    Parameters
    ----------
    indexes:
        Either one tree (served as ``"default"``) or a name → tree
        mapping.  Any :class:`~repro.rtree.tree.RTree` works; paged
        trees get the additional physical-read reporting, and
        :class:`~repro.storage.shard.ShardedTree` families are served
        transparently through the sharded fan-out engines with a
        per-shard breakdown in every :class:`BatchReport`.
    dedup:
        Execute identical requests within a batch once (default).
    reorder:
        Sort each request group along the Hilbert curve of the query
        centers for page-cache locality (default).
    workers:
        Thread count for executing independent request groups.  1
        (default) is serial and gives deterministic counter interleaving;
        more workers need the thread-safe paged read path.  Sharded
        indexes additionally fan a *single* request out across their
        shards on ``workers`` threads.
    sync_writes:
        After a batch's writes are applied, ``sync()`` every mutated
        index that supports it (paged trees flush their dirty pages and
        rewrite the tree descriptor), so each batch is a consistency
        point on disk.  Disable to let dirty pages accumulate across
        batches (fewer physical writes, sync on close).
    batch_windows:
        Execute each group of co-located window queries as **one**
        set-at-a-time traversal
        (:meth:`~repro.rtree.query.QueryEngine.query_batch`): every page
        the group touches is read once and evaluated against all active
        windows in a single batch×page kernel broadcast.  Results are
        bit-identical to per-request execution and per-request statistics
        stay as-if-solo; pages shared between windows cost one logical
        read instead of one per query, so ``leaf_ios`` (the sum of
        per-query costs) can exceed the batch's attributed ``io`` reads.
        Applies to untraced plain-tree window requests; traced requests,
        sharded indexes, and the other operators keep per-request
        execution.  Default off — the paper's per-query accounting.
    explain:
        Capture an EXPLAIN plan (:mod:`repro.queries.explain`) for every
        executed read and attach it as
        :attr:`~repro.server.requests.RequestResult.plan`: per-level
        nodes visited / entries pruned, physical reads, and the pruning
        efficiency against the leaf-I/O lower bound.  Disables window
        batching (a shared traversal has no per-query plan); sharded
        facades execute normally but produce no plan.  Default off —
        the disabled path costs one branch per node.
    """

    def __init__(
        self,
        indexes: RTree | Mapping[str, RTree],
        dedup: bool = True,
        reorder: bool = True,
        workers: int = 1,
        sync_writes: bool = True,
        batch_windows: bool = False,
        explain: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if isinstance(indexes, (RTree, ShardedTree)):
            indexes = {DEFAULT_INDEX: indexes}
        self.indexes: dict[str, RTree | ShardedTree] = dict(indexes)
        self.dedup = dedup
        self.reorder = reorder
        self.workers = workers
        self.sync_writes = sync_writes
        self.batch_windows = batch_windows
        self.explain = explain
        self.batches_served = 0
        self._engines: dict[tuple, Any] = {}
        self._bounds: dict[str, Rect | None] = {}

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------

    def attach(self, name: str, tree: RTree | ShardedTree) -> None:
        """Register (or replace) a named index."""
        self.indexes[name] = tree
        self._invalidate(name)

    def invalidate(self, name: str | None = None) -> None:
        """Drop warm engines/bounds for ``name`` (or every index).

        Call after an index was mutated *outside* this server — e.g. the
        async service applies a write batch on one pool member and
        invalidates the read-only members, whose warm engines still
        pool pre-update internal nodes.
        """
        if name is not None:
            self._invalidate(name)
            return
        self._engines.clear()
        self._bounds.clear()

    def _invalidate(self, name: str) -> None:
        """Drop warm engines and cached bounds that observed ``name``.

        Called after writes: the engines' internal-node pools hold
        decoded nodes from before the update and must be rebuilt.
        """
        self._bounds.pop(name, None)
        stale = [
            k
            for k in self._engines
            if (k[0] == "op" and k[1] == name)
            or (k[0] == "join" and name in k[1:])
        ]
        for key in stale:
            del self._engines[key]

    def _tree(self, name: str) -> RTree | ShardedTree:
        try:
            return self.indexes[name]
        except KeyError:
            raise KeyError(
                f"no index named {name!r}; serving {sorted(self.indexes)}"
            ) from None

    # ------------------------------------------------------------------
    # Engines (one per group, warm across batches)
    # ------------------------------------------------------------------

    def _engine(self, key: tuple) -> Any:
        engine = self._engines.get(key)
        if engine is None:
            if key[0] == "join":
                _, left, right = key
                left_tree, right_tree = self._tree(left), self._tree(right)
                if isinstance(left_tree, ShardedTree) or isinstance(
                    right_tree, ShardedTree
                ):
                    engine = ShardedJoinEngine(
                        left_tree, right_tree, workers=self.workers
                    )
                else:
                    engine = SpatialJoinEngine(left_tree, right_tree)
            else:
                _, index, kind = key
                tree = self._tree(index)
                if isinstance(tree, ShardedTree):
                    # One request fans out across the family's shards
                    # (on `workers` threads when allowed).
                    if kind == "window":
                        engine = ShardedQueryEngine(
                            tree, workers=self.workers
                        )
                    elif kind == "knn":
                        engine = ShardedKNNEngine(tree)
                    else:  # point / containment / count
                        engine = ShardedPointEngine(
                            tree, workers=self.workers
                        )
                elif kind == "window":
                    engine = QueryEngine(tree)
                elif kind == "knn":
                    engine = KNNEngine(tree)
                else:  # point / containment / count
                    engine = PointQueryEngine(tree)
            self._engines[key] = engine
        return engine

    # ------------------------------------------------------------------
    # Locality ordering
    # ------------------------------------------------------------------

    def _index_bounds(self, name: str) -> Rect | None:
        if name not in self._bounds:
            root = self._tree(name).root()
            self._bounds[name] = root.mbr() if root.entries else None
        return self._bounds[name]

    def _locality_key(self, request: Request) -> int:
        if isinstance(request, JoinRequest):
            return 0
        bounds = self._index_bounds(request.index)
        if bounds is None:
            return 0
        if isinstance(request, (WindowRequest, ContainmentRequest, CountRequest)):
            rect = request.window
        elif isinstance(request, PointRequest):
            rect = point_rect(request.point)
        elif isinstance(request, KNNRequest):
            rect = (
                request.target
                if isinstance(request.target, Rect)
                else point_rect(request.target)
            )
        else:  # pragma: no cover - future request kinds sort first
            return 0
        if rect.dim != bounds.dim:
            return 0  # dimension errors surface in the engine, not here
        return hilbert_key_for_center(rect, bounds)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute_write(
        self, request: Request, trace: Trace | None = None
    ) -> RequestResult:
        """Apply one insert/delete, reporting its logical I/O cost.

        The I/O numbers come from a scoped attribution tap, not a
        shared-counter delta, so concurrent traffic on the same handle
        (an overlapping batch's reads) never bleeds into this write's
        :class:`~repro.server.requests.UpdateStats`.
        """
        tree = self._tree(request.index)
        with activate_trace(trace), scoped_tap(trace) as tap, \
                profile_phase(f"write:{request.kind}"):
            start = time.perf_counter()
            if isinstance(request, InsertRequest):
                value: Any = tree.insert(request.rect, request.value)
            else:
                value = tree.delete(request.rect, request.value)
            end = time.perf_counter()
        if trace is not None:
            trace.add_span(
                f"write:{request.kind}",
                start,
                end,
                cat="engine",
                index=request.index,
                io=tap.snapshot(),
            )
        return RequestResult(
            request=request,
            value=value,
            stats=UpdateStats(reads=tap.reads, writes=tap.writes),
            latency_s=end - start,
        )

    @staticmethod
    def _dispatch(engine: Any, request: Request) -> tuple[Any, Any]:
        if isinstance(request, WindowRequest):
            return engine.query(request.window)
        if isinstance(request, ContainmentRequest):
            return engine.containment_query(request.window)
        if isinstance(request, CountRequest):
            return engine.count(request.window)
        if isinstance(request, PointRequest):
            return engine.point_query(request.point)
        if isinstance(request, KNNRequest):
            return engine.knn(request.target, request.k)
        if isinstance(request, JoinRequest):
            return engine.join()
        raise TypeError(f"unsupported request {request!r}")

    def _execute_one(
        self, request: Request, trace: Trace | None = None
    ) -> RequestResult:
        engine = self._engine(_group_key(request))
        # Plan capture is armed per executed request: within one batch a
        # group's requests run serially on the group's own engine, so
        # the recorder never observes another request's traversal.
        recorder = explain_mod.install(engine) if self.explain else None
        if trace is None:
            with profile_phase(f"engine:{request.kind}"):
                start = time.perf_counter()
                value, stats = self._dispatch(engine, request)
                latency = time.perf_counter() - start
            plan = explain_mod.uninstall(engine, recorder, request.kind, stats)
            return RequestResult(
                request=request, value=value, stats=stats, latency_s=latency,
                plan=plan,
            )
        # Traced: activate the trace in this (possibly executor) thread
        # and attribute the engine's I/O to both the trace's ledger and
        # the enclosing batch tap via the scoped tap's fold-on-exit.
        with activate_trace(trace), scoped_tap(trace) as tap, \
                profile_phase(f"engine:{request.kind}"):
            start = time.perf_counter()
            value, stats = self._dispatch(engine, request)
            end = time.perf_counter()
        plan = explain_mod.uninstall(engine, recorder, request.kind, stats)
        trace.add_span(
            f"engine:{request.kind}",
            start,
            end,
            cat="engine",
            index=getattr(request, "index", None) or "",
            kernel=kernels.BACKEND,
            io=tap.snapshot(),
        )
        return RequestResult(
            request=request, value=value, stats=stats, latency_s=end - start,
            plan=plan,
        )

    def _execute_window_batch(self, engine: QueryEngine, entries: list) -> list:
        """Run one group of window requests as a single batch traversal.

        ``entries`` are locality-ordered ``(key, request, None)`` rows of
        one (index, window) group; the group becomes one
        :meth:`~repro.rtree.query.QueryEngine.query_batch` call.
        Per-request latency is the batch's wall clock split evenly —
        individual attribution is meaningless inside a shared traversal.
        """
        windows = [request.window for _, request, _ in entries]
        with profile_phase("engine:window"):
            start = time.perf_counter()
            all_matches, all_stats = engine.query_batch(windows)
            latency = time.perf_counter() - start
        per_request = latency / len(entries)
        return [
            (
                key,
                RequestResult(
                    request=request,
                    value=all_matches[i],
                    stats=all_stats[i],
                    latency_s=per_request,
                ),
            )
            for i, (key, request, _) in enumerate(entries)
        ]

    def _batchable_windows(self, entries: list) -> bool:
        """True when a locality-ordered group can run set-at-a-time."""
        if not self.batch_windows or self.explain or len(entries) < 2:
            return False
        if not all(
            isinstance(request, WindowRequest) and trace is None
            for _, request, trace in entries
        ):
            return False
        dims = {request.window.dim for _, request, _ in entries}
        if len(dims) != 1:
            return False  # mixed dims surface their errors per request
        engine = self._engine(_group_key(entries[0][1]))
        return type(engine) is QueryEngine

    def _batch_names(self, requests: Iterable[Request]) -> set[str]:
        """Names of every index this batch addresses."""
        names: set[str] = set()
        for request in requests:
            if isinstance(request, JoinRequest):
                names.update((request.left, request.right))
            else:
                names.add(request.index)
        return names

    def submit(
        self,
        requests: Sequence[Request],
        traces: Sequence[Trace | None] | None = None,
    ) -> BatchReport:
        """Execute one batch and report results in submission order.

        Writes (insert/delete) are applied first, in submission order
        and exempt from dedup/reordering; the batch's reads then
        observe the post-write state.  When :attr:`sync_writes` is set,
        every mutated index that supports ``sync()`` is flushed before
        the reads run.

        ``traces`` optionally aligns one
        :class:`~repro.obs.trace.Trace` (or None) with each request:
        traced requests get engine/write spans with per-request I/O
        attribution, recorded in the thread that executes them.  A
        deduplicated repeat's trace gets a ``dedup-hit`` instant event
        instead of spans.
        """
        start = time.perf_counter()
        report = BatchReport(requests=len(requests))
        if traces is not None and len(traces) != len(requests):
            raise ValueError("traces must align one-to-one with requests")

        names = self._batch_names(requests)
        sharded = {
            name: tree
            for name in sorted(names)
            if isinstance(tree := self._tree(name), ShardedTree)
        }
        loads_before = {
            name: tree.shard_loads() for name, tree in sharded.items()
        }

        # Everything the batch does — writes, sync, reads on any number
        # of worker threads — attributes to this tap, so the report's
        # physical/logical numbers are exactly this batch's traffic even
        # with other batches in flight on the same handles.  The
        # profiler phase mirrors the async service's "execute" span
        # (inner engine:*/write:*/shard:* phases refine it; pool worker
        # threads re-enter their own phases in _execute_one).
        with scoped_tap() as batch_tap, profile_phase("execute"):
            # Phase 1: writes, strictly in submission order, never
            # deduped.
            write_results: dict[int, RequestResult] = {}
            mutated: set[str] = set()
            for i, request in enumerate(requests):
                if isinstance(request, _WRITE_KINDS):
                    write_results[i] = self._execute_write(
                        request, traces[i] if traces else None
                    )
                    mutated.add(request.index)
            for name in mutated:
                # Warm engines hold pre-update nodes; rebuild lazily.
                self._invalidate(name)
                if self.sync_writes:
                    tree = self._tree(name)
                    sync = getattr(tree, "sync", None)
                    if callable(sync):
                        sync()

            # Phase 2: reads — deduplicate while preserving
            # first-occurrence order (a repeat rides on the first
            # occurrence's execution, trace included).
            reads = [
                (i, request)
                for i, request in enumerate(requests)
                if i not in write_results
            ]
            to_run: list[tuple[Any, Request, Trace | None]]
            if self.dedup:
                unique: "OrderedDict[Request, Trace | None]" = OrderedDict()
                for i, request in reads:
                    if request not in unique:
                        unique[request] = traces[i] if traces else None
                to_run = [
                    (request, request, trace)
                    for request, trace in unique.items()
                ]
            else:
                # Keyed by position so repeats execute individually.
                to_run = [
                    (i, request, traces[i] if traces else None)
                    for i, request in reads
                ]

            # Group for engine affinity and locality sorting.
            groups: "OrderedDict[tuple, list]" = OrderedDict()
            for key, request, trace in to_run:
                groups.setdefault(_group_key(request), []).append(
                    (key, request, trace)
                )

            def run(entries: list) -> list:
                ordered = (
                    sorted(entries, key=lambda e: self._locality_key(e[1]))
                    if self.reorder
                    else entries
                )
                if self._batchable_windows(ordered):
                    engine = self._engine(_group_key(ordered[0][1]))
                    return self._execute_window_batch(engine, ordered)
                return [
                    (key, self._execute_one(request, trace))
                    for key, request, trace in ordered
                ]

            def run_scoped(entries: list) -> list:
                # Worker threads own a fresh tap (plain increments are
                # single-threaded) that folds into the batch tap on exit.
                with scoped_tap():
                    return run(entries)

            executed: dict[Any, RequestResult] = {}
            if self.workers > 1 and len(groups) > 1:
                # The pool's threads do not inherit this context — ship
                # it (batch tap included) with each group explicitly.
                jobs = [
                    (contextvars.copy_context(), entries)
                    for entries in groups.values()
                ]
                with ThreadPoolExecutor(max_workers=self.workers) as pool:
                    for chunk in pool.map(
                        lambda job: job[0].run(run_scoped, job[1]), jobs
                    ):
                        executed.update(chunk)
            else:
                for entries in groups.values():
                    executed.update(run(entries))

        # Reassemble in submission order; repeats of an executed read
        # share its payload and cost nothing further.
        emitted: set = set()
        for i, request in enumerate(requests):
            if i in write_results:
                report.results.append(write_results[i])
                continue
            key = request if self.dedup else i
            done = executed[key]
            if key in emitted:
                report.results.append(
                    RequestResult(
                        request=request,
                        value=done.value,
                        stats=done.stats,
                        latency_s=0.0,
                        deduped=True,
                    )
                )
                report.dedup_hits += 1
                if traces is not None and traces[i] is not None:
                    traces[i].event("dedup-hit", kind=request.kind)
            else:
                emitted.add(key)
                report.results.append(done)

        report.executed = len(executed) + len(write_results)
        report.writes = len(write_results)
        for result in write_results.values():
            report.write_ios += result.stats.writes
        for result in executed.values():
            stats = result.stats
            if hasattr(stats, "left"):  # JoinStats
                report.leaf_ios += stats.left.leaf_reads + stats.right.leaf_reads
                report.internal_reads += (
                    stats.left.internal_reads + stats.right.internal_reads
                )
                report.reported += stats.pairs
            else:
                report.leaf_ios += stats.leaf_reads
                report.internal_reads += stats.internal_reads
                report.reported += stats.reported

        # Batch-attributed physical traffic: exactly what this batch
        # caused, regardless of concurrent batches on the same stores.
        report.physical_reads = batch_tap.misses
        report.pages_flushed = batch_tap.flushes
        report.io = batch_tap.snapshot()
        for name, tree in sharded.items():
            report.shard_loads[name] = [
                after - before
                for after, before in zip(
                    tree.shard_loads(), loads_before[name]
                )
            ]
        report.latency_s = time.perf_counter() - start
        self.batches_served += 1
        return report
