"""Simulated-disk substrate with I/O accounting.

The paper measures *number of 4 KB disk blocks read or written*, arguing
that "I/O is a much more robust measure of performance" than wall-clock
time (Section 3.3).  This package provides that measurement apparatus:

* :class:`repro.iomodel.counters.IOCounters` — read/write counters that
  distinguish sequential from random accesses, plus a calibrated time model
  mirroring the paper's observation that bulk loaders do mostly sequential
  I/O.
* :class:`repro.iomodel.store.BlockStoreProtocol` — the structural
  interface all disk backends share; trees and engines are generic over
  it, so the in-memory simulator and the real file-backed stores in
  :mod:`repro.storage` are interchangeable.
* :class:`repro.iomodel.blockstore.BlockStore` — an in-memory simulated
  disk of fixed-size blocks; every node of every tree and every record of
  every external-memory stream lives in one.
* :class:`repro.iomodel.cache.LRUCache` — a buffer pool; the paper caches
  all internal R-tree nodes during query experiments (footnote 5), so query
  cost reduces to leaf blocks read.
* :mod:`repro.iomodel.codec` — byte-exact node serialization (36-byte
  entries in 4 KB blocks, fan-out 113) used to honour the paper's node
  layout and derive fan-outs from block sizes.
"""

from repro.iomodel.counters import IOCounters, IOSnapshot, TimeModel
from repro.iomodel.blockstore import BlockStore, BlockId, FreedBlockError
from repro.iomodel.cache import LRUCache
from repro.iomodel.codec import NodeCodec, fanout_for_block
from repro.iomodel.store import BlockStoreProtocol

__all__ = [
    "IOCounters",
    "IOSnapshot",
    "TimeModel",
    "BlockStore",
    "BlockStoreProtocol",
    "BlockId",
    "FreedBlockError",
    "LRUCache",
    "NodeCodec",
    "fanout_for_block",
]
