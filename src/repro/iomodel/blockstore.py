"""An in-memory simulated disk of fixed-size blocks.

A :class:`BlockStore` plays the role of the paper's 36 GB SCSI disk: a flat
address space of 4 KB blocks holding R-tree nodes, stream pages of input
rectangles, and temporary files of the external algorithms.  Payloads are
kept as Python objects (decoded nodes / record lists) — what is *simulated*
is the access pattern and its cost, which the attached
:class:`~repro.iomodel.counters.IOCounters` records on every read and write.

Blocks are allocated in increasing address order, so a freshly written
stream occupies consecutive addresses and reads back sequentially — exactly
the property the paper relies on when it notes that bulk loading is
dominated by sequential I/O.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.iomodel.counters import IOCounters
from repro.obs.tap import active_tap

#: Block addresses are plain integers.
BlockId = int

#: The paper's disk block size.
DEFAULT_BLOCK_SIZE = 4096


class FreedBlockError(KeyError):
    """A freed block was freed again or accessed after being freed.

    Distinct from the plain ``KeyError`` raised for never-allocated
    addresses: a dangling pointer into recycled space is a structural
    bug (a real disk would silently return stale bytes), while an
    out-of-range address is usually a caller arithmetic bug.  Subclasses
    ``KeyError`` so existing "block is not allocated" handlers keep
    working.
    """


class BlockStore:
    """Simulated disk: allocate, read, write and free fixed-size blocks.

    Parameters
    ----------
    block_size:
        Bytes per block; informational (capacity calculations live in
        :mod:`repro.iomodel.codec`), defaults to the paper's 4 KB.
    counters:
        Shared I/O counters; a fresh set is created when omitted.

    Notes
    -----
    Reading an unallocated or freed block raises ``KeyError`` — catching
    dangling child pointers early is worth more than faithfully simulating
    garbage reads.
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        counters: IOCounters | None = None,
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self.counters = counters if counters is not None else IOCounters()
        self._blocks: dict[BlockId, Any] = {}
        self._freed: set[BlockId] = set()
        self._next_id: BlockId = 0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate(self, payload: Any = None) -> BlockId:
        """Allocate the next block address and write ``payload`` to it."""
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = payload
        self.counters.record_write(block_id)
        tap = active_tap()
        if tap is not None:
            tap.writes += 1
        return block_id

    def free(self, block_id: BlockId) -> None:
        """Release a block.  Freeing is metadata-only and costs no I/O.

        Raises :class:`FreedBlockError` on a double free and ``KeyError``
        for an address that was never allocated.
        """
        if block_id in self._freed:
            raise FreedBlockError(f"double free of block {block_id}")
        if block_id not in self._blocks:
            raise KeyError(f"block {block_id} is not allocated")
        del self._blocks[block_id]
        self._freed.add(block_id)

    def _check_live(self, block_id: BlockId) -> None:
        if block_id in self._freed:
            raise FreedBlockError(
                f"block {block_id} was freed (read-after-free)"
            )
        if block_id not in self._blocks:
            raise KeyError(f"block {block_id} is not allocated")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def read(self, block_id: BlockId) -> Any:
        """Read a block's payload, counting one I/O."""
        self._check_live(block_id)
        self.counters.record_read(block_id)
        tap = active_tap()
        if tap is not None:
            tap.reads += 1
        return self._blocks[block_id]

    def write(self, block_id: BlockId, payload: Any) -> None:
        """Overwrite a block in place, counting one I/O."""
        self._check_live(block_id)
        self._blocks[block_id] = payload
        self.counters.record_write(block_id)
        tap = active_tap()
        if tap is not None:
            tap.writes += 1

    def peek(self, block_id: BlockId) -> Any:
        """Read a block *without* counting I/O.

        For validation and debugging only — tree-invariant checkers walk
        the whole structure without polluting experiment counters.
        """
        self._check_live(block_id)
        return self._blocks[block_id]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of live (allocated, not freed) blocks."""
        return len(self._blocks)

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self._blocks

    def block_ids(self) -> Iterator[BlockId]:
        """Iterate live block addresses in allocation order."""
        return iter(sorted(self._blocks))

    @property
    def allocated_ever(self) -> int:
        """Total blocks ever allocated (high-water address)."""
        return self._next_id

    def bytes_used(self) -> int:
        """Live blocks times block size — the simulated disk footprint."""
        return len(self._blocks) * self.block_size

    def __repr__(self) -> str:
        return (
            f"BlockStore(block_size={self.block_size}, live={len(self)}, "
            f"{self.counters!r})"
        )
