"""LRU buffer pool over a :class:`~repro.iomodel.blockstore.BlockStore`.

The paper's query experiments "utilized a cache (or 'buffer') to store
internal R-tree nodes during queries ... in all our experiments we cached
all internal nodes since they never occupied more than 6MB", which makes
the reported query cost equal to the number of *leaf* blocks read
(footnote 5).  The query engine uses an :class:`LRUCache` to reproduce
that setup, and the cache can be sized down (or disabled) to reproduce
their cache-disabled side experiment.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Any

from repro.iomodel.store import BlockId, BlockStoreProtocol


class LRUCache:
    """A least-recently-used block cache.

    Parameters
    ----------
    store:
        Backing block store (any
        :class:`~repro.iomodel.store.BlockStoreProtocol` backend).
    capacity:
        Maximum number of cached blocks.  ``math.inf`` (the default) caches
        everything, mirroring the paper's cache-all-internal-nodes setup;
        ``0`` disables caching entirely.
    """

    def __init__(
        self, store: BlockStoreProtocol, capacity: float = math.inf
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.store = store
        self.capacity = capacity
        self._entries: OrderedDict[BlockId, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, block_id: BlockId) -> Any:
        """Read a block through the cache.

        A hit costs no simulated I/O; a miss reads from the store (counted
        there) and inserts the block, evicting the least recently used
        entry if the pool is full.
        """
        if block_id in self._entries:
            self.hits += 1
            self._entries.move_to_end(block_id)
            return self._entries[block_id]
        self.misses += 1
        payload = self.store.read(block_id)
        if self.capacity > 0:
            self._entries[block_id] = payload
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return payload

    def invalidate(self, block_id: BlockId) -> None:
        """Drop a block from the pool (after an in-place node update)."""
        self._entries.pop(block_id, None)

    def clear(self) -> None:
        """Empty the pool; hit/miss statistics are kept."""
        self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss statistics; cached blocks are kept."""
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the pool (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        cap = "inf" if self.capacity == math.inf else int(self.capacity)
        return (
            f"LRUCache(capacity={cap}, cached={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
