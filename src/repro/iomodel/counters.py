"""I/O counters and the calibrated time model.

These counters are the **logical-I/O** layer of the accounting
vocabulary pinned down in ``docs/io-accounting.md``: one counted I/O
per ``read``/``write``/``allocate`` on any backend, cached or not,
``peek``/``free`` free of charge.  Physical file traffic is reported
separately by :class:`repro.storage.paged.PageCacheStats`; the batched
server aggregates both per batch in
:class:`repro.server.server.BatchReport`.

Every access to the simulated disk is classified as *sequential* (the block
immediately following the previously accessed block) or *random* (anything
else).  The distinction matters for reproducing the paper's Figure 9/11
time story: "all algorithms we tested read and write blocks almost
exclusively by sequential I/O of large parts of the data; as a result, I/O
is much faster than if blocks were read and written in random order"
(Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IOSnapshot:
    """An immutable point-in-time copy of :class:`IOCounters`.

    Snapshots support subtraction, so measuring the cost of a phase is::

        before = counters.snapshot()
        ...  # do work
        cost = counters.snapshot() - before
    """

    reads: int = 0
    writes: int = 0
    seq_reads: int = 0
    seq_writes: int = 0

    @property
    def total(self) -> int:
        """Total block transfers (reads + writes)."""
        return self.reads + self.writes

    @property
    def rand_reads(self) -> int:
        """Reads that required a seek."""
        return self.reads - self.seq_reads

    @property
    def rand_writes(self) -> int:
        """Writes that required a seek."""
        return self.writes - self.seq_writes

    @property
    def sequential(self) -> int:
        """Total sequential transfers."""
        return self.seq_reads + self.seq_writes

    @property
    def random(self) -> int:
        """Total random (seeking) transfers."""
        return self.total - self.sequential

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            reads=self.reads - other.reads,
            writes=self.writes - other.writes,
            seq_reads=self.seq_reads - other.seq_reads,
            seq_writes=self.seq_writes - other.seq_writes,
        )

    def __add__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            seq_reads=self.seq_reads + other.seq_reads,
            seq_writes=self.seq_writes + other.seq_writes,
        )

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form (trace args, metric labels, JSON reports)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "seq_reads": self.seq_reads,
            "seq_writes": self.seq_writes,
            "rand_reads": self.rand_reads,
            "rand_writes": self.rand_writes,
        }


class IOCounters:
    """Mutable read/write counters shared by one simulated disk.

    The store calls :meth:`record_read` / :meth:`record_write` with the
    block id of each access; the counter tracks the previously touched
    block to classify accesses as sequential or random.
    """

    __slots__ = ("reads", "writes", "seq_reads", "seq_writes", "_last_block")

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.seq_reads = 0
        self.seq_writes = 0
        self._last_block: int | None = None

    def record_read(self, block_id: int) -> None:
        """Count one block read at ``block_id``."""
        self.reads += 1
        if self._last_block is not None and block_id == self._last_block + 1:
            self.seq_reads += 1
        self._last_block = block_id

    def record_write(self, block_id: int) -> None:
        """Count one block write at ``block_id``."""
        self.writes += 1
        if self._last_block is not None and block_id == self._last_block + 1:
            self.seq_writes += 1
        self._last_block = block_id

    def snapshot(self) -> IOSnapshot:
        """Immutable copy of the current totals."""
        return IOSnapshot(
            reads=self.reads,
            writes=self.writes,
            seq_reads=self.seq_reads,
            seq_writes=self.seq_writes,
        )

    def reset(self) -> None:
        """Zero all counters and forget the disk-head position."""
        self.reads = 0
        self.writes = 0
        self.seq_reads = 0
        self.seq_writes = 0
        self._last_block = None

    @property
    def total(self) -> int:
        """Total block transfers so far."""
        return self.reads + self.writes

    def __repr__(self) -> str:
        return (
            f"IOCounters(reads={self.reads}, writes={self.writes}, "
            f"seq={self.seq_reads + self.seq_writes})"
        )


@dataclass(frozen=True)
class TimeModel:
    """Estimated wall-clock seconds for a batch of simulated I/Os.

    The defaults approximate the paper's year-2003 SCSI disk (IBM Ultrastar
    36LZX): ~25 MB/s sustained sequential transfer of 4 KB blocks and ~10 ms
    per random access (seek + rotational latency).  Only *ratios* between
    algorithms matter for the reproduction, and those are dominated by the
    sequential/random mix and the total transfer count.

    Attributes
    ----------
    seq_seconds:
        Seconds per sequentially transferred block.
    rand_seconds:
        Seconds per random (seeking) block access.
    """

    seq_seconds: float = 0.00016  # 4 KB / 25 MB/s
    rand_seconds: float = 0.010

    def seconds(self, snap: IOSnapshot) -> float:
        """Modelled I/O time for the accesses in ``snap``."""
        return snap.sequential * self.seq_seconds + snap.random * self.rand_seconds
