"""The block-store protocol every disk backend implements.

The simulator started with a single concrete store — the in-memory
:class:`~repro.iomodel.blockstore.BlockStore` holding decoded payloads —
but the trees, caches and query engines only ever touch the small
surface captured here: allocate / read / write / free / peek plus
capacity introspection, with an attached
:class:`~repro.iomodel.counters.IOCounters` recording every counted
access.  Pinning that surface down as a :class:`typing.Protocol` lets
the same tree handles and engines run over any backend:

* :class:`~repro.iomodel.blockstore.BlockStore` — simulated disk,
  payloads are decoded Python objects;
* :class:`~repro.storage.filestore.FileBlockStore` — a real file,
  payloads are raw ``bytes`` of exactly one block;
* :class:`~repro.storage.paged.PagedNodeStore` — a lazy node-decoding
  layer over a byte store, payloads are decoded
  :class:`~repro.rtree.node.Node` objects again.

What a payload *is* depends on the backend; what every backend promises
is the accounting contract: ``read`` and ``write`` record exactly one
I/O on :attr:`counters` per call, ``allocate`` records the write that
materializes the block, and ``peek`` is free (validation and debugging
walk structures without polluting experiment counters).
"""

from __future__ import annotations

from typing import Any, Iterator, Protocol, runtime_checkable

from repro.iomodel.counters import IOCounters

#: Block addresses are plain integers.
BlockId = int


@runtime_checkable
class BlockStoreProtocol(Protocol):
    """Structural interface of a fixed-size block store.

    ``runtime_checkable`` so backends can be asserted against it in
    tests (``isinstance(store, BlockStoreProtocol)``); method signatures
    are still only checked statically, as usual for protocols.
    """

    block_size: int
    counters: IOCounters

    def allocate(self, payload: Any = None) -> BlockId:
        """Allocate a block holding ``payload``, counting one write."""
        ...

    def free(self, block_id: BlockId) -> None:
        """Release a block (metadata only, no counted I/O)."""
        ...

    def read(self, block_id: BlockId) -> Any:
        """Read a block's payload, counting one I/O."""
        ...

    def write(self, block_id: BlockId, payload: Any) -> None:
        """Overwrite a block in place, counting one I/O."""
        ...

    def peek(self, block_id: BlockId) -> Any:
        """Read a block without counting I/O (validation/debugging)."""
        ...

    def __len__(self) -> int:
        """Number of live (allocated, not freed) blocks."""
        ...

    def __contains__(self, block_id: BlockId) -> bool:
        ...

    def block_ids(self) -> Iterator[BlockId]:
        """Iterate live block addresses in address order."""
        ...

    @property
    def allocated_ever(self) -> int:
        """Total blocks ever allocated (high-water address)."""
        ...

    def bytes_used(self) -> int:
        """Live blocks times block size — the disk footprint."""
        ...
