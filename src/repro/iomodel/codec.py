"""Byte-exact R-tree node layout.

The paper fixes the physical layout precisely: "we used 36 bytes to
represent each input rectangle; 8 bytes for each coordinate and 4 bytes to
be able to hold a pointer ... The disk block size was chosen to be 4KB,
resulting in a maximum fanout of 113" (Section 3.1).

:func:`fanout_for_block` derives the fan-out from a block size the same
way (``floor(block_size / entry_size)`` with 8-byte coordinates and a
4-byte pointer), and :class:`NodeCodec` round-trips node payloads through
real ``bytes`` of exactly one block, so the layout assumption is honoured
and testable.  The hot paths of the simulator keep nodes decoded — the
codec exists to *validate* the layout (and compute fan-outs), not to slow
every access down.
"""

from __future__ import annotations

import struct

from repro.geometry import kernels
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import DEFAULT_BLOCK_SIZE

#: Bytes per coordinate (the paper uses 8-byte doubles).
COORD_BYTES = 8
#: Bytes per child/object pointer.
POINTER_BYTES = 4
#: Header: 1-byte leaf flag + 4-byte entry count.  The paper's fan-out of
#: 113 leaves 4096 - 113*36 = 28 slack bytes per block, so the header fits
#: without reducing fan-out.
HEADER_FORMAT = "<BI"
HEADER_BYTES = struct.calcsize(HEADER_FORMAT)


def entry_size(dim: int) -> int:
    """On-disk bytes per entry: 2*dim coordinates plus one pointer.

    For dim = 2 this is the paper's 36 bytes.
    """
    if dim < 1:
        raise ValueError("dim must be >= 1")
    return 2 * dim * COORD_BYTES + POINTER_BYTES


def fanout_for_block(block_size: int = DEFAULT_BLOCK_SIZE, dim: int = 2) -> int:
    """Maximum entries per block, the paper's fan-out derivation.

    ``fanout_for_block(4096, 2) == 113``, matching Section 3.1 exactly.
    """
    size = entry_size(dim)
    fanout = block_size // size
    if fanout < 2:
        raise ValueError(
            f"block size {block_size} holds fewer than 2 entries of "
            f"{size} bytes; use a larger block"
        )
    return fanout


class NodeCodec:
    """Serialize node payloads to single disk blocks and back.

    An encoded node is ``header || entry*``, where each entry is
    ``2*dim`` little-endian float64 coordinates (``lo`` then ``hi``)
    followed by a uint32 pointer — a child block id for internal nodes or
    an opaque object id for leaves.
    """

    def __init__(self, dim: int = 2, block_size: int = DEFAULT_BLOCK_SIZE):
        self.dim = dim
        self.block_size = block_size
        self.fanout = fanout_for_block(block_size, dim)
        self._entry_format = "<" + "d" * (2 * dim) + "I"
        self._entry_size = struct.calcsize(self._entry_format)

    def encode(self, is_leaf: bool, entries: list[tuple[Rect, int]]) -> bytes:
        """Pack a node into exactly one block of bytes.

        Raises ``ValueError`` when the node holds more entries than the
        block's fan-out allows or a rectangle of the wrong dimension.
        """
        if len(entries) > self.fanout:
            raise ValueError(
                f"{len(entries)} entries exceed block fan-out {self.fanout}"
            )
        parts = [struct.pack(HEADER_FORMAT, 1 if is_leaf else 0, len(entries))]
        for rect, pointer in entries:
            if rect.dim != self.dim:
                raise ValueError(
                    f"rect has dimension {rect.dim}, codec expects {self.dim}"
                )
            parts.append(
                struct.pack(self._entry_format, *rect.lo, *rect.hi, pointer)
            )
        encoded = b"".join(parts)
        return encoded.ljust(self.block_size, b"\x00")

    def decode(self, block: bytes) -> tuple[bool, list[tuple[Rect, int]]]:
        """Inverse of :meth:`encode`."""
        if len(block) != self.block_size:
            raise ValueError(
                f"block is {len(block)} bytes, expected {self.block_size}"
            )
        leaf_flag, count = struct.unpack_from(HEADER_FORMAT, block, 0)
        entries: list[tuple[Rect, int]] = []
        offset = HEADER_BYTES
        for _ in range(count):
            *coords, pointer = struct.unpack_from(
                self._entry_format, block, offset
            )
            offset += self._entry_size
            rect = Rect(coords[: self.dim], coords[self.dim :])
            entries.append((rect, pointer))
        return bool(leaf_flag), entries

    def decode_arrays(self, block: bytes):
        """Decode a block straight into structure-of-arrays form.

        Returns ``(is_leaf, lo_table, hi_table, ptrs)`` where the tables
        are :func:`repro.geometry.kernels.coord_table`-shaped (an
        ``(n, dim)`` float64 array each under numpy, tuples of row tuples
        under the fallback) and ``ptrs`` is a plain ``list[int]``.  No
        ``Rect`` objects are materialized — this is the read path's
        decoder; ``storage/paged.py`` wraps the result in a
        ``NodeFrame``.  Byte layout is exactly :meth:`decode`'s.
        """
        if len(block) != self.block_size:
            raise ValueError(
                f"block is {len(block)} bytes, expected {self.block_size}"
            )
        leaf_flag, count = struct.unpack_from(HEADER_FORMAT, block, 0)
        dim = self.dim
        if kernels.HAVE_NUMPY:
            np = kernels.np
            raw = np.frombuffer(
                block,
                dtype=np.dtype(
                    [("coords", "<f8", (2 * dim,)), ("ptr", "<u4")]
                ),
                count=count,
                offset=HEADER_BYTES,
            )
            coords = np.ascontiguousarray(raw["coords"], dtype=np.float64)
            lo = coords[:, :dim].copy()
            hi = coords[:, dim:].copy()
            ptrs = raw["ptr"].tolist()
            return bool(leaf_flag), lo, hi, ptrs
        lo_rows: list[tuple[float, ...]] = []
        hi_rows: list[tuple[float, ...]] = []
        ptrs = []
        offset = HEADER_BYTES
        for _ in range(count):
            *coords, pointer = struct.unpack_from(
                self._entry_format, block, offset
            )
            offset += self._entry_size
            lo_rows.append(tuple(coords[:dim]))
            hi_rows.append(tuple(coords[dim:]))
            ptrs.append(pointer)
        return bool(leaf_flag), tuple(lo_rows), tuple(hi_rows), ptrs
