"""repro — a reproduction of the Priority R-tree (Arge, de Berg, Haverkort, Yi; SIGMOD 2004).

The package implements the paper's contribution (the PR-tree and
pseudo-PR-tree), every baseline it evaluates against (packed Hilbert,
four-dimensional Hilbert, TGS, plus STR), and the substrate the
experiments run on (a simulated block disk with I/O accounting and
external-memory primitives).

Quickstart
----------
>>> from repro import Rect, BlockStore, build_prtree, QueryEngine
>>> store = BlockStore()
>>> data = [(Rect((i, i), (i + 1.0, i + 1.0)), f"box{i}") for i in range(100)]
>>> tree = build_prtree(store, data, fanout=8)
>>> engine = QueryEngine(tree)
>>> matches, stats = engine.query(Rect((0, 0), (3.5, 3.5)))
>>> sorted(value for _, value in matches)
['box0', 'box1', 'box2', 'box3']

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure and table.
"""

from repro.geometry.rect import Rect, mbr_of, point_rect
from repro.geometry.hilbert import hilbert_index, hilbert_point
from repro.iomodel.blockstore import BlockStore
from repro.iomodel.counters import IOCounters, IOSnapshot, TimeModel
from repro.iomodel.cache import LRUCache
from repro.iomodel.codec import NodeCodec, fanout_for_block
from repro.external.memory import MemoryModel
from repro.external.stream import BlockStream, StreamWriter
from repro.external.sort import external_sort
from repro.rtree.tree import RTree
from repro.rtree.node import Node
from repro.rtree.query import QueryEngine, QueryStats
from repro.rtree.update import insert, delete
from repro.rtree.rstar import rstar_insert, rstar_split
from repro.rtree.persist import serialize_tree, deserialize_tree
from repro.rtree.validate import validate_rtree, utilization
from repro.bulk.hilbert import build_hilbert, build_hilbert4
from repro.bulk.tgs import build_tgs
from repro.bulk.str_pack import build_str
from repro.prtree.pseudo import PseudoPRTree
from repro.prtree.prtree import build_prtree, prtree_query_bound
from repro.prtree.gridbuild import build_prtree_external
from repro.prtree.logmethod import LogMethodPRTree
from repro.queries.knn import KNNEngine, Neighbor, knn
from repro.queries.join import SpatialJoinEngine, spatial_join
from repro.queries.point import (
    PointQueryEngine,
    containment_query,
    count_query,
    point_query,
)
from repro.storage import FileBlockStore, PagedTree, pack_tree
from repro.server import (
    BatchReport,
    ContainmentRequest,
    CountRequest,
    DeleteRequest,
    InsertRequest,
    JoinRequest,
    KNNRequest,
    PointRequest,
    QueryServer,
    WindowRequest,
)

__version__ = "1.0.0"

__all__ = [
    "Rect",
    "mbr_of",
    "point_rect",
    "hilbert_index",
    "hilbert_point",
    "BlockStore",
    "IOCounters",
    "IOSnapshot",
    "TimeModel",
    "LRUCache",
    "NodeCodec",
    "fanout_for_block",
    "MemoryModel",
    "BlockStream",
    "StreamWriter",
    "external_sort",
    "RTree",
    "Node",
    "QueryEngine",
    "QueryStats",
    "insert",
    "delete",
    "rstar_insert",
    "rstar_split",
    "serialize_tree",
    "deserialize_tree",
    "validate_rtree",
    "utilization",
    "build_hilbert",
    "build_hilbert4",
    "build_tgs",
    "build_str",
    "PseudoPRTree",
    "build_prtree",
    "prtree_query_bound",
    "build_prtree_external",
    "LogMethodPRTree",
    "KNNEngine",
    "Neighbor",
    "knn",
    "SpatialJoinEngine",
    "spatial_join",
    "PointQueryEngine",
    "point_query",
    "containment_query",
    "count_query",
    "FileBlockStore",
    "PagedTree",
    "pack_tree",
    "QueryServer",
    "BatchReport",
    "WindowRequest",
    "ContainmentRequest",
    "CountRequest",
    "PointRequest",
    "KNNRequest",
    "JoinRequest",
    "InsertRequest",
    "DeleteRequest",
]
