"""Span-attributed wall-clock sampling profiler (pure stdlib).

Traces answer *where the time went* per request; the profiler answers
*where the CPU goes* across the whole process.  A background thread
wakes every ``interval_s`` seconds, snapshots every Python thread's
stack via :func:`sys._current_frames`, and attributes each sample to
the **phase** the sampled thread is executing — the same vocabulary the
trace spans use (``execute``, ``engine:<kind>``, ``write:<kind>``,
``shard:<i>``), pushed/popped by the serving layers through the
:func:`phase` context manager.  A flamegraph of the output therefore
splits by serving phase first and Python frames below, so "the
per-entry ``Rect`` loop dominates ``engine:window``" is a readable
fact, not an inference.

Two exports:

* **Collapsed stacks** (:meth:`SamplingProfiler.collapsed`) — the
  ``root;frame;frame count`` text format that ``flamegraph.pl`` and
  https://www.speedscope.app load directly; the phase is the root
  frame.
* **Per-phase self time** (:meth:`SamplingProfiler.phase_table`) — for
  every phase, its sample count and estimated seconds (samples x the
  measured tick length).  Samples of threads with no active phase
  attribute to ``(other)``, so the table always sums to the total
  sampled wall time — nothing is silently dropped.

The phase registry is a plain dict keyed by thread id holding each
thread's phase *stack* (phases nest: ``execute`` > ``engine:window`` >
``shard:2``); a sample attributes to the top of the stack.  When no
profiler is running, :func:`phase` costs one integer check — the
serving hot path stays on the disabled-path budget
(``benchmarks/results/obs_overhead``).

Sampling caveats, documented rather than hidden: this is a *wall
clock* profiler — a thread blocked in a lock or a file read is sampled
exactly like one spinning in a loop (which is what you want for "where
does the latency go"; the GIL serializes the CPU-bound subset anyway).
Reading another thread's stack without stopping the world means a
sample may straddle a call boundary; with thousands of samples the
straddles are noise.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter
from contextlib import contextmanager
from typing import Iterator, TextIO

__all__ = [
    "SamplingProfiler",
    "PhaseSelfTime",
    "PHASE_VOCABULARY",
    "phase",
    "push_phase",
    "pop_phase",
    "current_phase",
    "profiling_active",
]

#: The phase vocabulary: every prefix the serving and query layers push,
#: so ``repro profile`` tables and trace span notes share one namespace.
#:
#: * ``execute`` — one coalesced batch executing on the server.
#: * ``engine:<kind>`` — a query engine running one request
#:   (``engine:window``, ``engine:knn``, ...).
#: * ``write:<kind>`` — a mutating request (``write:insert``, ...).
#: * ``shard:<i>`` — work attributed to one shard of a sharded store.
#: * ``kernel:<op>`` — a vectorized geometry kernel evaluating a whole
#:   node frame (``kernel:frame_intersecting``, ``kernel:batch_intersecting``,
#:   ...); pushed by :mod:`repro.geometry.kernels` so kernel CPU shows
#:   up as its own rows under the enclosing ``engine:*`` phase.
PHASE_VOCABULARY = (
    "execute",
    "engine:*",
    "write:*",
    "shard:*",
    "kernel:*",
)

#: Thread id -> that thread's phase stack (top = innermost phase).
#: Mutated only by the owning thread; read by the sampler.  Under
#: CPython, list append/pop and dict assignment are atomic, so the
#: sampler sees either the pre- or post-update stack — never garbage.
_PHASE_STACKS: dict[int, list[str]] = {}

#: Number of running profilers.  ``phase`` is a no-op at 0, so the
#: serving layers can annotate unconditionally.
_ACTIVE = 0
_ACTIVE_LOCK = threading.Lock()

#: Phase charged for samples of threads with no phase on their stack.
OTHER = "(other)"


def profiling_active() -> bool:
    """True while at least one :class:`SamplingProfiler` is running."""
    return _ACTIVE > 0


def current_phase() -> str | None:
    """The calling thread's innermost active phase, if any."""
    stack = _PHASE_STACKS.get(threading.get_ident())
    return stack[-1] if stack else None


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Attribute the ``with`` body's samples to ``name``.

    Phases nest; samples go to the innermost one.  Free (one integer
    check) when no profiler is running — annotate hot paths without
    guarding the call site.
    """
    if not _ACTIVE:
        yield
        return
    ident = threading.get_ident()
    stack = _PHASE_STACKS.get(ident)
    if stack is None:
        stack = _PHASE_STACKS[ident] = []
    stack.append(name)
    try:
        yield
    finally:
        if stack and stack[-1] == name:
            stack.pop()
        elif name in stack:  # pragma: no cover - unbalanced exit guard
            stack.remove(name)


def push_phase(name: str) -> bool:
    """Non-contextmanager :func:`phase` entry for per-call hot paths.

    The vectorized kernels run thousands of times per request;
    generator-based context managers are too heavy there.  Returns True
    when a phase was actually pushed — callers pop only then::

        pushed = push_phase("kernel:frame_intersecting")
        try:
            ...
        finally:
            if pushed:
                pop_phase()

    Costs one integer check when no profiler is running.
    """
    if not _ACTIVE:
        return False
    ident = threading.get_ident()
    stack = _PHASE_STACKS.get(ident)
    if stack is None:
        stack = _PHASE_STACKS[ident] = []
    stack.append(name)
    return True


def pop_phase() -> None:
    """Pop the innermost phase pushed by :func:`push_phase`."""
    stack = _PHASE_STACKS.get(threading.get_ident())
    if stack:
        stack.pop()


@contextmanager
def force_phases() -> Iterator[None]:
    """Enable phase tracking without a running profiler (tests only)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE += 1
    try:
        yield
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE -= 1


class PhaseSelfTime:
    """One phase's share of the sampled wall time."""

    __slots__ = ("phase", "samples", "seconds", "fraction")

    def __init__(
        self, phase_name: str, samples: int, seconds: float, fraction: float
    ) -> None:
        self.phase = phase_name
        self.samples = samples
        self.seconds = seconds
        self.fraction = fraction

    def __repr__(self) -> str:
        return (
            f"PhaseSelfTime({self.phase!r}, samples={self.samples}, "
            f"seconds={self.seconds:.3f}, {self.fraction:.1%})"
        )


class SamplingProfiler:
    """Background sampling profiler with phase attribution.

    Parameters
    ----------
    interval_s:
        Target seconds between stack snapshots (default 5 ms — ~200
        samples a second across all threads, <1% overhead on the
        workloads benchmarked in ``obs_overhead``).
    max_depth:
        Frames kept per stack, innermost outward.
    include_idle:
        Sample threads that currently have **no** active phase (the
        asyncio event loop parked in ``select``, the main thread
        waiting on a future).  Default False: the profile then contains
        exactly the serving work, and the ``(other)`` row is work that
        escaped phase annotation rather than idle wait.

    Use as a context manager or call :meth:`start`/:meth:`stop`.  The
    same instance can profile several runs back to back; samples
    accumulate until :meth:`reset`.
    """

    def __init__(
        self,
        interval_s: float = 0.005,
        max_depth: int = 64,
        include_idle: bool = False,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.interval_s = interval_s
        self.max_depth = max_depth
        self.include_idle = include_idle
        #: (phase, stack root->leaf) -> sample count.
        self.samples: Counter[tuple[str, tuple[str, ...]]] = Counter()
        self.ticks = 0
        self.elapsed_s = 0.0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._started_at = 0.0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Start the sampler thread (idempotent)."""
        global _ACTIVE
        if self._thread is not None:
            return
        with _ACTIVE_LOCK:
            _ACTIVE += 1
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling and fold the elapsed window in (idempotent)."""
        global _ACTIVE
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
        self.elapsed_s += time.perf_counter() - self._started_at
        with _ACTIVE_LOCK:
            _ACTIVE -= 1

    def reset(self) -> None:
        """Drop accumulated samples (keep configuration)."""
        self.samples.clear()
        self.ticks = 0
        self.elapsed_s = 0.0

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sampling ------------------------------------------------------

    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self._sample(own)

    def _sample(self, own: int) -> None:
        frames = sys._current_frames()
        self.ticks += 1
        for ident, frame in frames.items():
            if ident == own:
                continue
            stack = _PHASE_STACKS.get(ident)
            phase_name = stack[-1] if stack else None
            if phase_name is None:
                if not self.include_idle:
                    continue
                phase_name = OTHER
            self.samples[(phase_name, self._stack_of(frame))] += 1

    def _stack_of(self, frame) -> tuple[str, ...]:
        parts: list[str] = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            code = frame.f_code
            parts.append(
                f"{os.path.basename(code.co_filename)}:{code.co_name}"
            )
            frame = frame.f_back
            depth += 1
        parts.reverse()  # root first, the collapsed-stack convention
        return tuple(parts)

    # -- reporting -----------------------------------------------------

    @property
    def total_samples(self) -> int:
        """Thread-stack samples recorded (one per thread per tick)."""
        return sum(self.samples.values())

    @property
    def seconds_per_sample(self) -> float:
        """Measured wall seconds one sample represents.

        The sampler's real period (GC pauses, scheduler jitter) rather
        than the requested ``interval_s``, so phase seconds sum to the
        measured window even when the machine is loaded.
        """
        if not self.ticks:
            return self.interval_s
        elapsed = self.elapsed_s
        if self._thread is not None:  # still running
            elapsed += time.perf_counter() - self._started_at
        return elapsed / self.ticks if elapsed > 0 else self.interval_s

    def phase_table(self) -> list[PhaseSelfTime]:
        """Per-phase self time, largest first.

        Self time: samples whose *innermost* phase is this one (a
        sample inside ``shard:0`` does not also count for the enclosing
        ``execute``).  Including ``(other)``, the rows sum to the total
        sampled wall time by construction.
        """
        per_phase: Counter[str] = Counter()
        for (phase_name, _), count in self.samples.items():
            per_phase[phase_name] += count
        total = sum(per_phase.values())
        sec = self.seconds_per_sample
        return [
            PhaseSelfTime(name, n, n * sec, n / total if total else 0.0)
            for name, n in per_phase.most_common()
        ]

    def collapsed(self) -> str:
        """Collapsed-stack text: ``phase;frame;...;frame count`` lines.

        Loadable by ``flamegraph.pl`` and speedscope as-is.  The phase
        is the root frame, so the flamegraph's first split is by
        serving phase.
        """
        lines = []
        for (phase_name, stack), count in sorted(self.samples.items()):
            frames = ";".join((phase_name,) + stack)
            lines.append(f"{frames} {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path_or_file: "str | os.PathLike | TextIO") -> None:
        """Write :meth:`collapsed` to a path or open file."""
        if hasattr(path_or_file, "write"):
            path_or_file.write(self.collapsed())
            return
        with open(path_or_file, "w", encoding="utf-8") as fh:
            fh.write(self.collapsed())

    def __repr__(self) -> str:
        return (
            f"SamplingProfiler(interval={self.interval_s * 1000:g}ms, "
            f"ticks={self.ticks}, samples={self.total_samples}, "
            f"running={self._thread is not None})"
        )
