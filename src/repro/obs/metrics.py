"""Metrics registry with labeled series and Prometheus-text exposition.

One :class:`MetricsRegistry` holds every metric the stack exports:
**counters** (monotone totals — requests, rejections, attributed I/O),
**gauges** (point-in-time values — queue depth, cache fill, shard
balance), and **histograms** (the existing
:class:`~repro.service.stats.LatencyHistogram`, unchanged — the
registry wraps it, it does not reimplement bucketing).  Each metric is
a *family* (name + help + label names) with one child per label-value
tuple, so per-index / per-shard / per-kind / per-lane series share a
family the way Prometheus expects:

``repro_request_latency_seconds{kind="knn",quantile="0.99"}``.

Exposition is the Prometheus text format, version 0.0.4: counters and
gauges as plain samples, histograms as summaries (``quantile`` labels
from the geometric histogram plus exact ``_sum``/``_count``).  The
dump is a pure function of registry state — the serving hot path never
formats anything; :class:`~repro.service.service.AsyncQueryService`
copies its :class:`~repro.service.stats.ServiceStats` into the
registry on a periodic snapshot task, and ``--metrics OUT.prom`` just
renders at shutdown.

Everything here is stdlib; creation is locked, single increments are
plain (the GIL makes ``+=`` on one child racy only across threads that
share a child — our writers are the event loop and the snapshot task,
which serialize).
"""

from __future__ import annotations

import re
import threading
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    # The storage layers import repro.obs (for the tap hooks) and the
    # service layer imports the storage layers; importing the service's
    # stats module here at runtime would close that loop.
    from repro.service.stats import LatencyHistogram

__all__ = [
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "MetricsServer",
]

_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: Quantiles a histogram family exposes (Prometheus summary style).
_QUANTILES = (0.5, 0.9, 0.95, 0.99)


def _escape(value: str) -> str:
    """Escape a label value for the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    parts = [f'{n}="{_escape(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def set_total(self, total: float) -> None:
        """Jump to an externally maintained running total.

        The snapshot path: :class:`~repro.service.stats.ServiceStats`
        already keeps the totals, so the registry mirrors them instead
        of double-counting.  Totals must not regress.
        """
        if total < self.value:
            raise ValueError(
                f"counter total regressed: {total} < {self.value}"
            )
        self.value = total


class Gauge:
    """A value that can go anywhere (depth, fill, balance, rate)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class HistogramMetric:
    """A labeled series backed by a :class:`LatencyHistogram`."""

    __slots__ = ("hist",)

    def __init__(self) -> None:
        from repro.service.stats import LatencyHistogram

        self.hist = LatencyHistogram()

    def observe(self, value_s: float) -> None:
        self.hist.observe(value_s)

    def set_from(self, source: "LatencyHistogram") -> None:
        """Replace contents with a copy of ``source`` (snapshot
        semantics: the live histogram keeps accumulating elsewhere)."""
        from repro.service.stats import LatencyHistogram

        fresh = LatencyHistogram()
        fresh.merge(source)
        self.hist = fresh


class _Family:
    """One metric name: help text, type, and one child per label tuple."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: tuple[str, ...],
        child_type,
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = labelnames
        self._child_type = child_type
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def labels(self, *values: object) -> object:
        """The child for one label-value tuple (created on demand)."""
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes {len(self.labelnames)} label(s) "
                f"{self.labelnames}, got {len(key)}"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._child_type())
        return child

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """Every exported metric family, renderable as Prometheus text.

    >>> registry = MetricsRegistry()
    >>> registry.counter("repro_requests_total", "Requests", ("kind",)
    ... ).labels("knn").inc()
    >>> "repro_requests_total" in registry.render_prometheus()
    True
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Iterable[str],
        child_type,
    ) -> _Family:
        if not _NAME.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        names = tuple(labelnames)
        for label in names:
            if not _LABEL.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(
                    name, help_text, kind, names, child_type
                )
                return family
        if family.kind != kind or family.labelnames != names:
            raise ValueError(
                f"metric {name!r} re-registered with different "
                f"type/labels ({family.kind}{family.labelnames} vs "
                f"{kind}{names})"
            )
        return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ) -> _Family:
        return self._family(name, help_text, "counter", labelnames, Counter)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ) -> _Family:
        return self._family(name, help_text, "gauge", labelnames, Gauge)

    def histogram(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ) -> _Family:
        return self._family(
            name, help_text, "summary", labelnames, HistogramMetric
        )

    # -- exposition ----------------------------------------------------

    def render_prometheus(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for values, child in family.children():
                labels = _render_labels(family.labelnames, values)
                if isinstance(child, (Counter, Gauge)):
                    lines.append(f"{name}{labels} {_format(child.value)}")
                    continue
                hist = child.hist  # type: ignore[union-attr]
                for q in _QUANTILES:
                    quantile = _render_labels(
                        family.labelnames, values, f'quantile="{q}"'
                    )
                    lines.append(
                        f"{name}{quantile} "
                        f"{_format(hist.percentile(q * 100))}"
                    )
                lines.append(f"{name}_sum{labels} {_format(hist.total)}")
                lines.append(f"{name}_count{labels} {hist.count}")
        return "\n".join(lines) + "\n"

    def dump(self, path) -> None:
        """Write :meth:`render_prometheus` to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.render_prometheus())


def _format(value: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricsServer:
    """Serve live ``/metrics`` over a background stdlib HTTP thread.

    A scrape renders the registry *at scrape time*, so a Prometheus (or
    ``curl``) pull during a run sees the latest snapshot the service
    copied in — no file round-trip.  Binds ``127.0.0.1`` only (this is
    an introspection port, not an API); ``port=0`` picks a free port,
    read back from :attr:`port`.

    >>> registry = MetricsRegistry()
    >>> server = MetricsServer(registry, port=0)
    >>> server.start()          # doctest: +SKIP
    >>> server.url              # doctest: +SKIP
    'http://127.0.0.1:51234/metrics'
    >>> server.close()          # doctest: +SKIP
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self.registry = registry
        self.host = host
        self._requested_port = port
        self._httpd = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        """Bind and start serving on a daemon thread (idempotent)."""
        if self._httpd is not None:
            return self
        # Local import: http.server pulls in socketserver & friends,
        # which nothing else in the hot path needs.
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        registry = self.registry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib API name
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    self.send_error(404)
                    return
                body = registry.render_prometheus().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass  # scrapes are not stdout events

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the port (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
