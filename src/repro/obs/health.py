"""Tree-quality analytics and the index degradation score.

The paper's whole argument is structural: bulk loaders differ in the
MBR overlap, dead space and occupancy they leave behind, and those
properties — not the data — determine query I/O.  This module turns
"how structurally degraded is this index?" into one cache-neutral
peek-walk over the tree (``quiet_peek``: no counters, no cache
perturbation, no ghost-LRU noise) that aggregates per level:

* **occupancy** — entries per node over the fan-out (splits and
  condense-tree leave half-full nodes behind);
* **overlap** — pairwise intersection area of sibling child MBRs in
  directory nodes (the multi-path-descent driver);
* **dead space** — directory MBR area not covered by the sum of its
  children's areas (a lower-bound proxy: overlapping children can hide
  dead space it does not see);
* **perimeter** — mean directory-MBR margin (the R*-tree's "prefer
  squares" signal);

plus store **fragmentation** (freelist + pending-reclaim blocks over
every block ever allocated) and tree height.

:func:`quality_baseline` compresses a fresh pack's
:class:`TreeQuality` into a tiny JSON blob that
:func:`~repro.storage.paged.pack_tree` / ``shard_pack`` record in the
index descriptor / shard manifest; :func:`degradation_score` then
folds the live tree's *relative* drift from that baseline into one
normalized number — 0.0 for the freshly packed index, growing as
updates erode it.  It is the trigger input the ROADMAP's
degradation-triggered re-pack needs: cheap (one walk, no queries),
monotone under structural decay, and comparable across index sizes.

All arithmetic is plain Python floats over
:func:`~repro.geometry.kernels.table_row` rows, so the numbers are
bit-identical between the numpy and pure-Python kernel backends.

This module deliberately imports nothing from :mod:`repro.storage`
(which imports :mod:`repro.obs`): trees, stores and shard families are
duck-typed via the attributes they expose.
"""

from __future__ import annotations

import json
import math
from typing import Sequence
from dataclasses import dataclass

from repro.geometry import kernels

__all__ = [
    "LevelQuality",
    "TreeQuality",
    "tree_quality",
    "index_quality",
    "family_quality",
    "quality_baseline",
    "encode_baseline",
    "decode_baseline",
    "degradation_score",
    "DEGRADATION_WEIGHTS",
]

#: Relative-drift weights of :func:`degradation_score` (they sum to 1.0
#: for a single tree; ``imb`` only contributes for sharded families).
DEGRADATION_WEIGHTS = {
    "occ": 0.35,   # leaf occupancy drop
    "ovr": 0.25,   # directory overlap growth
    "dead": 0.15,  # directory dead-space growth
    "frag": 0.10,  # store fragmentation growth
    "height": 0.10,  # tree height growth
    "per": 0.05,   # mean directory margin growth
    "imb": 0.05,   # per-shard size imbalance growth (families only)
}

#: Floor for relative-growth denominators: a freshly packed index can
#: legitimately have ~zero overlap/dead space, and dividing drift by
#: that would explode the score.
_RATIO_FLOOR = 0.01


@dataclass(frozen=True)
class LevelQuality:
    """Aggregated structural quality of one tree level (0 = root)."""

    level: int
    nodes: int
    entries: int
    occupancy: float      #: entries / (nodes * fanout)
    area: float           #: sum of entry-MBR areas
    overlap: float        #: sum of pairwise sibling-entry intersections
    dead: float           #: sum of max(0, node area - covered area)
    perimeter: float      #: sum of entry-MBR margins
    leaf: bool


@dataclass(frozen=True)
class TreeQuality:
    """One quiet walk's structural summary of a (paged) R-tree."""

    height: int
    size: int
    fanout: int
    nodes: int
    levels: tuple[LevelQuality, ...]
    leaf_occupancy: float    #: leaf entries / (leaf nodes * fanout)
    overlap_ratio: float     #: directory overlap / directory entry area
    dead_ratio: float        #: directory dead space / directory node area
    mean_margin: float       #: mean directory-entry margin
    free_blocks: int         #: freelist slots (allocated_ever - live)
    pending_reclaim: int     #: blocks awaiting epoch-safe reclamation
    fragmentation: float     #: (free + pending) / allocated_ever
    shard_sizes: tuple[int, ...] = ()

    @property
    def imbalance(self) -> float:
        """Population coefficient of variation of per-shard sizes."""
        sizes = self.shard_sizes
        if len(sizes) < 2:
            return 0.0
        mean = sum(sizes) / len(sizes)
        if mean <= 0:
            return 0.0
        var = sum((s - mean) ** 2 for s in sizes) / len(sizes)
        return math.sqrt(var) / mean


def _row(table, i: int) -> tuple[float, ...]:
    return tuple(float(c) for c in kernels.table_row(table, i))


def _area(lo: tuple, hi: tuple) -> float:
    out = 1.0
    for a, b in zip(lo, hi):
        out *= b - a
    return out


def _margin(lo: tuple, hi: tuple) -> float:
    return sum(b - a for a, b in zip(lo, hi))


def _intersection_area(a_lo, a_hi, b_lo, b_hi) -> float:
    out = 1.0
    for al, ah, bl, bh in zip(a_lo, a_hi, b_lo, b_hi):
        lo = al if al > bl else bl
        hi = ah if ah < bh else bh
        if hi <= lo:
            return 0.0
        out *= hi - lo
    return out


class _LevelAcc:
    __slots__ = ("nodes", "entries", "area", "overlap", "dead", "perimeter", "leaf")

    def __init__(self) -> None:
        self.nodes = 0
        self.entries = 0
        self.area = 0.0
        self.overlap = 0.0
        self.dead = 0.0
        self.perimeter = 0.0
        self.leaf = False


def _quiet_reader(store):
    """The most side-effect-free node reader the store offers.

    :class:`~repro.storage.paged.PagedNodeStore` exposes ``quiet_peek``
    (no stats, no tracker, no MRU pin); the in-memory block store's
    ``peek`` is already silent.
    """
    return getattr(store, "quiet_peek", None) or store.peek


def tree_quality(tree) -> TreeQuality:
    """Compute the structural quality of one tree by a quiet peek-walk.

    Accepts any :class:`~repro.rtree.tree.RTree`-shaped object — the
    in-memory trees the bulk loaders build and
    :class:`~repro.storage.paged.PagedTree` handles alike.  The walk
    reads via the quiet peek path only, so neither
    :class:`~repro.storage.paged.PageCacheStats` nor the ghost-LRU
    tracker move, and deterministically: node order never affects the
    per-level sums.
    """
    read = _quiet_reader(tree.store)
    fanout = tree.fanout
    levels: dict[int, _LevelAcc] = {}
    stack: list[tuple[int, int]] = [(tree.root_id, 0)]
    while stack:
        block_id, level = stack.pop()
        frame = read(block_id).frame()
        acc = levels.get(level)
        if acc is None:
            acc = levels[level] = _LevelAcc()
        n = len(frame)
        acc.nodes += 1
        acc.entries += n
        acc.leaf = bool(frame.is_leaf)
        rects = [(_row(frame.lo, i), _row(frame.hi, i)) for i in range(n)]
        covered = 0.0
        node_lo: list[float] = []
        node_hi: list[float] = []
        for lo, hi in rects:
            covered += _area(lo, hi)
            acc.perimeter += _margin(lo, hi)
            if not node_lo:
                node_lo, node_hi = list(lo), list(hi)
            else:
                for k in range(len(lo)):
                    if lo[k] < node_lo[k]:
                        node_lo[k] = lo[k]
                    if hi[k] > node_hi[k]:
                        node_hi[k] = hi[k]
        acc.area += covered
        if node_lo:
            dead = _area(tuple(node_lo), tuple(node_hi)) - covered
            if dead > 0.0:
                acc.dead += dead
        for i in range(n):
            a_lo, a_hi = rects[i]
            for j in range(i + 1, n):
                b_lo, b_hi = rects[j]
                acc.overlap += _intersection_area(a_lo, a_hi, b_lo, b_hi)
        if not frame.is_leaf:
            child_level = level + 1
            for i in range(n):
                stack.append((int(frame.ptrs[i]), child_level))

    out = tuple(
        LevelQuality(
            level=level,
            nodes=acc.nodes,
            entries=acc.entries,
            occupancy=acc.entries / max(1, acc.nodes * fanout),
            area=acc.area,
            overlap=acc.overlap,
            dead=acc.dead,
            perimeter=acc.perimeter,
            leaf=acc.leaf,
        )
        for level, acc in sorted(levels.items())
    )
    leaf_levels = [l for l in out if l.leaf]
    dir_levels = [l for l in out if not l.leaf]
    leaf_entries = sum(l.entries for l in leaf_levels)
    leaf_slots = sum(l.nodes for l in leaf_levels) * fanout
    dir_entries = sum(l.entries for l in dir_levels)
    dir_area = sum(l.area for l in dir_levels)
    dir_overlap = sum(l.overlap for l in dir_levels)
    dir_dead = sum(l.dead for l in dir_levels)
    dir_perimeter = sum(l.perimeter for l in dir_levels)

    free_blocks, pending, frag = _store_fragmentation(tree.store)
    return TreeQuality(
        height=tree.height,
        size=tree.size,
        fanout=fanout,
        nodes=sum(l.nodes for l in out),
        levels=out,
        leaf_occupancy=leaf_entries / max(1, leaf_slots),
        overlap_ratio=dir_overlap / dir_area if dir_area > 0.0 else 0.0,
        dead_ratio=dir_dead / dir_area if dir_area > 0.0 else 0.0,
        mean_margin=dir_perimeter / dir_entries if dir_entries else 0.0,
        free_blocks=free_blocks,
        pending_reclaim=pending,
        fragmentation=frag,
    )


def _store_fragmentation(store) -> tuple[int, int, float]:
    """Freelist/pending-reclaim occupancy of the store behind a tree.

    Duck-typed: a :class:`~repro.storage.paged.PagedNodeStore` fronts a
    :class:`~repro.storage.filestore.FileBlockStore` with
    ``allocated_ever`` and ``pending_reclaim``; in-memory stores report
    zero fragmentation.
    """
    file_store = getattr(store, "file_store", None)
    target = file_store if file_store is not None else store
    allocated = getattr(target, "allocated_ever", None)
    if allocated is None or allocated <= 0:
        return 0, 0, 0.0
    live = len(target)
    free = max(0, allocated - live)
    pending = len(getattr(target, "pending_reclaim", ()))
    return free, pending, (free + pending) / allocated


def index_quality(index) -> tuple[TreeQuality, tuple[TreeQuality, ...]]:
    """Quality of a single tree *or* a sharded family.

    Returns ``(aggregate, per_shard)``; for a single tree the aggregate
    is its own quality and ``per_shard`` is empty.  A family (an object
    with a ``shards`` sequence of trees) aggregates per-level sums over
    all shards and carries the per-shard sizes for the imbalance term.
    """
    shards = getattr(index, "shards", None)
    if not shards:
        return tree_quality(index), ()
    per_shard = tuple(tree_quality(shard) for shard in shards)
    return family_quality(per_shard), per_shard


def family_quality(per_shard: Sequence[TreeQuality]) -> TreeQuality:
    """Merge per-shard qualities into one family-level aggregate."""
    fanout = per_shard[0].fanout
    # Align shard levels by distance from the leaves so equally deep
    # structure merges together even when shard heights differ.
    merged: dict[int, _LevelAcc] = {}
    for quality in per_shard:
        for lvl in quality.levels:
            from_leaf = (quality.height - 1) - lvl.level
            acc = merged.get(from_leaf)
            if acc is None:
                acc = merged[from_leaf] = _LevelAcc()
            acc.nodes += lvl.nodes
            acc.entries += lvl.entries
            acc.area += lvl.area
            acc.overlap += lvl.overlap
            acc.dead += lvl.dead
            acc.perimeter += lvl.perimeter
            acc.leaf = lvl.leaf
    height = max(q.height for q in per_shard)
    levels = tuple(
        LevelQuality(
            level=(height - 1) - from_leaf,
            nodes=acc.nodes,
            entries=acc.entries,
            occupancy=acc.entries / max(1, acc.nodes * fanout),
            area=acc.area,
            overlap=acc.overlap,
            dead=acc.dead,
            perimeter=acc.perimeter,
            leaf=acc.leaf,
        )
        for from_leaf, acc in sorted(merged.items(), reverse=True)
    )
    leaf_entries = sum(q.size for q in per_shard)
    leaf_nodes = sum(l.nodes for q in per_shard for l in q.levels if l.leaf)
    dir_entries = sum(l.entries for l in levels if not l.leaf)
    dir_area = sum(l.area for l in levels if not l.leaf)
    dir_overlap = sum(l.overlap for l in levels if not l.leaf)
    dir_dead = sum(l.dead for l in levels if not l.leaf)
    dir_perimeter = sum(l.perimeter for l in levels if not l.leaf)
    free = sum(q.free_blocks for q in per_shard)
    pending = sum(q.pending_reclaim for q in per_shard)
    frags = [q.fragmentation for q in per_shard]
    return TreeQuality(
        height=height,
        size=leaf_entries,
        fanout=fanout,
        nodes=sum(q.nodes for q in per_shard),
        levels=levels,
        leaf_occupancy=leaf_entries / max(1, leaf_nodes * fanout),
        overlap_ratio=dir_overlap / dir_area if dir_area > 0.0 else 0.0,
        dead_ratio=dir_dead / dir_area if dir_area > 0.0 else 0.0,
        mean_margin=dir_perimeter / dir_entries if dir_entries else 0.0,
        free_blocks=free,
        pending_reclaim=pending,
        fragmentation=sum(frags) / len(frags),
        shard_sizes=tuple(q.size for q in per_shard),
    )


# -- baseline (de)serialization ---------------------------------------


def quality_baseline(quality: TreeQuality) -> dict:
    """Compress a pack-time quality into the tiny persisted baseline.

    Rounded to 12 significant digits: small enough to live in the index
    descriptor's metadata region, stable across platforms.
    """
    def r(x: float) -> float:
        return float(f"{x:.12g}")

    base = {
        "v": 1,
        "h": quality.height,
        "n": quality.size,
        "occ": r(quality.leaf_occupancy),
        "ovr": r(quality.overlap_ratio),
        "dead": r(quality.dead_ratio),
        "per": r(quality.mean_margin),
        "frag": r(quality.fragmentation),
    }
    if quality.shard_sizes:
        base["imb"] = r(quality.imbalance)
    return base


def encode_baseline(baseline: dict) -> bytes:
    """The baseline as the compact JSON bytes the descriptor stores."""
    return json.dumps(
        baseline, separators=(",", ":"), sort_keys=True
    ).encode("ascii")


def decode_baseline(blob: bytes | str | dict | None) -> dict | None:
    """Parse a stored baseline; None for absent/foreign trailing bytes."""
    if blob is None:
        return None
    if isinstance(blob, dict):
        return blob if blob.get("v") == 1 else None
    if isinstance(blob, bytes):
        blob = blob.decode("ascii", errors="replace")
    blob = blob.strip()
    if not blob.startswith("{"):
        return None
    try:
        doc = json.loads(blob)
    except ValueError:
        return None
    return doc if isinstance(doc, dict) and doc.get("v") == 1 else None


# -- the degradation score --------------------------------------------


def degradation_score(
    quality: TreeQuality, baseline: dict | None
) -> float | None:
    """Normalized structural drift of ``quality`` from its baseline.

    0.0 for the freshly packed index; each component is the *relative*
    worsening of one structural metric (clamped at 0 so improvements
    never mask decay elsewhere), weighted per
    :data:`DEGRADATION_WEIGHTS`.  Every component is non-decreasing in
    its metric's decay, so the score is monotone under compounding
    structural degradation.  Returns None when the index carries no
    baseline (pre-PR-10 packs).
    """
    if baseline is None:
        return None
    w = DEGRADATION_WEIGHTS

    def growth(current: float, base: float, floor: float) -> float:
        return max(0.0, current - base) / max(base, floor)

    base_occ = float(baseline.get("occ", 0.0))
    occ_drop = (
        max(0.0, base_occ - quality.leaf_occupancy) / base_occ
        if base_occ > 0.0
        else 0.0
    )
    score = (
        w["occ"] * occ_drop
        + w["ovr"] * growth(
            quality.overlap_ratio, float(baseline.get("ovr", 0.0)), _RATIO_FLOOR
        )
        + w["dead"] * growth(
            quality.dead_ratio, float(baseline.get("dead", 0.0)), _RATIO_FLOOR
        )
        + w["frag"] * max(
            0.0, quality.fragmentation - float(baseline.get("frag", 0.0))
        )
        + w["height"] * growth(
            float(quality.height), float(baseline.get("h", quality.height)), 1.0
        )
        + w["per"] * growth(
            quality.mean_margin, float(baseline.get("per", 0.0)), _RATIO_FLOOR
        )
    )
    if quality.shard_sizes:
        score += w["imb"] * max(
            0.0, quality.imbalance - float(baseline.get("imb", 0.0))
        )
    return score
