"""Context-local I/O attribution taps.

The stores already keep the ground-truth accounting: one
:class:`~repro.iomodel.counters.IOCounters` increment per logical
``read``/``write``/``allocate`` and one
:class:`~repro.storage.paged.PageCacheStats` increment per physical
page event (hit/miss/eviction/flush).  What they cannot say is *on
whose behalf* an I/O happened — concurrent batches on shared paged
handles read one shared counter, so a delta taken around a batch bleeds
every other in-flight batch's traffic into it.

An :class:`IOTap` fixes attribution at the source instead of the
boundary: the active tap lives in a :mod:`contextvars` context
variable, and every store bumps it *adjacent to* the matching
``IOCounters`` / ``PageCacheStats`` increment — same call site, same
lock scope — so a tap's totals are exactly the slice of the shared
counters that this context caused.  Nothing is re-measured and nothing
is re-counted: summing every tap plus the untapped remainder always
reproduces the shared counters byte-for-byte
(``docs/io-accounting.md``).

Concurrency discipline: a tap's increments are plain integer adds and
are **not** thread-safe — each executing thread must own its tap.
Thread hops therefore install a fresh tap via :func:`scoped_tap`
(which folds into the parent, under the parent's lock, on exit) and
carry the parent context across the hop with
``contextvars.copy_context()``.  The query server, the sharded fan-out
pool and the async service all follow this pattern.

When no tap is installed the per-I/O cost is a single
``ContextVar.get`` returning ``None`` — the disabled path the
observability overhead benchmark (``benchmarks/results/obs_overhead``)
keeps honest.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.trace import Trace

__all__ = ["IOTap", "active_tap", "install_tap", "scoped_tap"]

#: The active attribution tap of the current context (None: no-op path).
_TAP: ContextVar["IOTap | None"] = ContextVar("repro-io-tap", default=None)


class IOTap:
    """One context's slice of the shared I/O accounting.

    ``reads``/``writes`` mirror the logical
    :class:`~repro.iomodel.counters.IOCounters` increments; ``hits`` /
    ``misses`` / ``evictions`` / ``flushes`` mirror the physical
    :class:`~repro.storage.paged.PageCacheStats` increments (misses are
    physical block reads, flushes physical block writes — the existing
    vocabulary).  ``trace`` optionally points at the
    :class:`~repro.obs.trace.Trace` this tap attributes for, so deep
    layers can reach the active trace through :func:`active_tap`.
    """

    __slots__ = (
        "reads",
        "writes",
        "hits",
        "misses",
        "evictions",
        "flushes",
        "trace",
        "_lock",
    )

    def __init__(self, trace: "Trace | None" = None) -> None:
        self.reads = 0
        self.writes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushes = 0
        self.trace = trace
        self._lock = threading.Lock()

    # -- physical aliases (io-accounting vocabulary) -------------------

    @property
    def physical_reads(self) -> int:
        """Blocks physically read (= page-cache misses)."""
        return self.misses

    @property
    def physical_writes(self) -> int:
        """Blocks physically written back (= dirty-page flushes)."""
        return self.flushes

    @property
    def logical_ios(self) -> int:
        """Total counted block transfers attributed to this context."""
        return self.reads + self.writes

    # -- folding -------------------------------------------------------

    def fold(self, child: "IOTap") -> None:
        """Add a finished child tap's totals into this tap.

        Locked: several child scopes (worker threads, shard fan-out
        tasks) may fold into one parent concurrently.  The child must be
        quiescent — its owning thread is done incrementing it.
        """
        with self._lock:
            self.reads += child.reads
            self.writes += child.writes
            self.hits += child.hits
            self.misses += child.misses
            self.evictions += child.evictions
            self.flushes += child.flushes

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy (trace args, metrics labels, tests)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "flushes": self.flushes,
        }

    def __repr__(self) -> str:
        return (
            f"IOTap(reads={self.reads}, writes={self.writes}, "
            f"misses={self.misses}, flushes={self.flushes})"
        )


def active_tap() -> IOTap | None:
    """The current context's tap (None when attribution is off).

    This is the store-side hook: called once per counted I/O and per
    page-cache event, immediately next to the shared-counter increment
    it attributes.
    """
    return _TAP.get()


@contextmanager
def install_tap(tap: IOTap | None) -> Iterator[IOTap | None]:
    """Make ``tap`` the context's active tap for the ``with`` body.

    Passing ``None`` suspends attribution (I/O inside the body belongs
    to nobody) — used to fence background work out of request taps.
    """
    token = _TAP.set(tap)
    try:
        yield tap
    finally:
        _TAP.reset(token)


@contextmanager
def scoped_tap(trace: "Trace | None" = None) -> Iterator[IOTap]:
    """A fresh tap for this scope, folded into the enclosing tap on exit.

    The thread-hop idiom: the hopping task copies its context, and the
    first thing it does on the far side is open a scoped tap — giving
    the new thread a tap it exclusively owns, while the totals still
    roll up to the parent (batch, request trace) when the scope closes.
    """
    parent = _TAP.get()
    child = IOTap(trace=trace if trace is not None else (parent.trace if parent else None))
    token = _TAP.set(child)
    try:
        yield child
    finally:
        _TAP.reset(token)
        if parent is not None:
            parent.fold(child)
        if child.trace is not None and (parent is None or parent.trace is not child.trace):
            # The scope crossed into a trace (or ran without a parent):
            # credit the trace's own ledger directly.
            child.trace.io.fold(child)
