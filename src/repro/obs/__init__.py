"""Observability: request tracing, metrics, I/O attribution, slow log.

The diagnostic substrate of the serving stack (``docs/observability.md``):

* :mod:`repro.obs.tap` — context-local :class:`IOTap` attribution,
  incremented by the stores adjacent to the shared counters, so
  per-request/per-batch I/O totals are exact slices of
  :class:`~repro.iomodel.counters.IOCounters` (attributed, never
  re-counted).
* :mod:`repro.obs.trace` — :class:`Trace`/:class:`Span` with head
  sampling and an always-trace-if-slow rule, exported in Chrome
  trace-event format for Perfetto.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of labeled
  counters/gauges/histograms with Prometheus-text exposition.
* :mod:`repro.obs.slowlog` — bounded :class:`SlowQueryLog` ring.
* :mod:`repro.obs.profiler` — wall-clock :class:`SamplingProfiler`
  attributing stack samples to the serving :func:`phase` (collapsed
  stacks + per-phase self time).
* :mod:`repro.obs.cachestats` — ghost-LRU
  :class:`ReuseDistanceTracker`: miss-ratio-vs-budget curves,
  leaf/internal access-frequency histograms, working-set estimates.
* :mod:`repro.obs.health` — cache-neutral tree-quality analytics
  (:class:`TreeQuality`) and the :func:`degradation_score` against the
  pack-time baseline that arms the self-maintenance trigger.

Everything is opt-in: with no tracer/tap/registry installed, the hooks
cost one ``ContextVar.get`` (or one ``None`` check) per event.
"""

from repro.obs.cachestats import (
    CacheCurvePoint,
    FrequencyBand,
    ReuseDistanceTracker,
    default_budgets,
)
from repro.obs.health import (
    LevelQuality,
    TreeQuality,
    degradation_score,
    index_quality,
    tree_quality,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    HistogramMetric,
    MetricsRegistry,
    MetricsServer,
)
from repro.obs.profiler import (
    PhaseSelfTime,
    SamplingProfiler,
    current_phase,
    phase,
    profiling_active,
)
from repro.obs.slowlog import SlowQueryLog, SlowQueryRecord
from repro.obs.tap import IOTap, active_tap, install_tap, scoped_tap
from repro.obs.trace import (
    Span,
    Trace,
    Tracer,
    TraceWriter,
    activate_trace,
    check_span_nesting,
    current_trace,
    load_trace_events,
)

__all__ = [
    "CacheCurvePoint",
    "FrequencyBand",
    "ReuseDistanceTracker",
    "default_budgets",
    "LevelQuality",
    "TreeQuality",
    "degradation_score",
    "index_quality",
    "tree_quality",
    "PhaseSelfTime",
    "SamplingProfiler",
    "current_phase",
    "phase",
    "profiling_active",
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "MetricsServer",
    "SlowQueryLog",
    "SlowQueryRecord",
    "IOTap",
    "active_tap",
    "install_tap",
    "scoped_tap",
    "Span",
    "Trace",
    "Tracer",
    "TraceWriter",
    "activate_trace",
    "check_span_nesting",
    "current_trace",
    "load_trace_events",
]
