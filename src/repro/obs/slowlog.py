"""Slow-query log: a bounded ring of the worst recent requests.

Traces answer "why was *this* request slow" when you already hold the
trace; the slow-query log answers "which requests were slow at all"
without keeping every trace.  Any completed request whose end-to-end
latency reaches ``threshold_s`` is recorded — kind, per-phase split
(queue vs engine), batch context, attributed I/O, and the trace id when
the request was traced (so the Perfetto row is one search away).

The log is a fixed-capacity ring (:class:`collections.deque`): memory
is bounded forever, the most recent ``capacity`` slow queries win, and
``total`` still counts every threshold crossing.  Recording is locked
(service completions may race); the fast path for a request under the
threshold is one float compare.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["SlowQueryRecord", "SlowQueryLog"]


@dataclass(frozen=True)
class SlowQueryRecord:
    """One slow request, as the service saw it complete."""

    kind: str
    latency_s: float
    #: Time spent queued before the batch drained (async path; 0 sync).
    queue_s: float
    #: Time inside the engine proper.
    engine_s: float
    batch_size: int
    #: ``repr`` of the request (bounded — see ``SlowQueryLog.note``).
    detail: str
    #: Attributed I/O snapshot, when a tap/trace covered the request.
    io: dict[str, int] | None = None
    #: Trace id when the request was traced (None otherwise).
    trace_id: int | None = None
    #: Compact EXPLAIN summary (``QueryPlan.summary()``) when the
    #: server ran the request with plan capture on; None otherwise.
    explain: str | None = None
    #: Wall-clock seconds (``time.time``) at recording.
    at: float = field(default_factory=time.time)


class SlowQueryLog:
    """Bounded ring of :class:`SlowQueryRecord`, newest last."""

    def __init__(self, threshold_s: float, capacity: int = 256) -> None:
        if threshold_s < 0:
            raise ValueError("threshold_s must be >= 0")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.threshold_s = threshold_s
        self.capacity = capacity
        self.total = 0
        self._ring: deque[SlowQueryRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def note(
        self,
        kind: str,
        latency_s: float,
        *,
        queue_s: float = 0.0,
        engine_s: float = 0.0,
        batch_size: int = 1,
        detail: str = "",
        io: dict[str, int] | None = None,
        trace_id: int | None = None,
        explain: str | None = None,
    ) -> bool:
        """Record the request if it crossed the threshold.

        Returns True when recorded.  ``detail`` is truncated to 200
        characters so a pathological request repr cannot bloat the ring.
        """
        if latency_s < self.threshold_s:
            return False
        record = SlowQueryRecord(
            kind=kind,
            latency_s=latency_s,
            queue_s=queue_s,
            engine_s=engine_s,
            batch_size=batch_size,
            detail=detail[:200],
            io=io,
            trace_id=trace_id,
            explain=explain,
        )
        with self._lock:
            self.total += 1
            self._ring.append(record)
        return True

    def records(self) -> list[SlowQueryRecord]:
        """The retained records, oldest first."""
        with self._lock:
            return list(self._ring)

    def render(self, limit: int = 20) -> str:
        """Human-readable tail of the log (worst-first within the tail)."""
        records = self.records()[-limit:]
        if not records:
            return (
                f"slow-query log: empty "
                f"(threshold {self.threshold_s * 1000:.1f} ms)\n"
            )
        records.sort(key=lambda r: r.latency_s, reverse=True)
        lines = [
            f"slow-query log: {self.total} over "
            f"{self.threshold_s * 1000:.1f} ms "
            f"(showing {len(records)} of {len(self._ring)} retained)"
        ]
        for r in records:
            trace = f" trace=#{r.trace_id}" if r.trace_id is not None else ""
            io = ""
            if r.io:
                io = (
                    f" io[r={r.io.get('reads', 0)} w={r.io.get('writes', 0)}"
                    f" miss={r.io.get('misses', 0)}]"
                )
            plan = f" plan[{r.explain}]" if r.explain else ""
            lines.append(
                f"  {r.latency_s * 1000:8.2f} ms  {r.kind:<12} "
                f"queue={r.queue_s * 1000:.2f}ms "
                f"engine={r.engine_s * 1000:.2f}ms "
                f"batch={r.batch_size}{io}{trace}{plan}  {r.detail}"
            )
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"SlowQueryLog(threshold={self.threshold_s * 1000:.1f}ms, "
            f"total={self.total}, retained={len(self)})"
        )
