"""Request tracing: spans, head sampling, Chrome trace-event export.

A :class:`Trace` follows one request through the serving stack and
collects **spans** — named, timestamped intervals (admission → queue →
coalesce/quiesce → execute, with the engine's execution and per-shard
fan-out nested inside) — plus instant events and an exact I/O ledger
(:class:`~repro.obs.tap.IOTap`) attributed by the storage layers at
each counted I/O.  Spans partition the request's end-to-end latency,
so "where did the time go" is answerable per request, not per batch.

Propagation is by :mod:`contextvars`: the server activates a request's
trace (and its tap) in whatever thread executes it — the asyncio →
thread-pool hop included — so :func:`current_trace` works from the
engines and the page/file stores without any layer passing the trace
explicitly.

Sampling follows two rules (``docs/observability.md``):

* **Head sampling** — :class:`Tracer` keeps every trace with
  probability ``sample_rate`` (decided at begin, deterministic under a
  seed).
* **Always-trace-if-over-threshold** — a trace that head sampling
  dropped is still *recorded* while tracing is enabled, and is emitted
  anyway when its end-to-end duration reaches ``slow_threshold_s``:
  the tail is never sampled away.  With no tracer installed the whole
  machinery is a no-op (one ``None`` check per layer).

Emitted traces are written by :class:`TraceWriter` in the Chrome
trace-event JSON format — one event per line, a valid JSON array once
closed — which Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``
load directly.  ``repro trace`` produces such a file from a live
workload; :func:`load_trace_events` / :func:`check_span_nesting` are
the programmatic readers the CI smoke uses.
"""

from __future__ import annotations

import json
import random
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.tap import IOTap

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "TraceWriter",
    "current_trace",
    "activate_trace",
    "load_trace_events",
    "check_span_nesting",
]

#: The active trace of the current context (None: not tracing).
_TRACE: ContextVar["Trace | None"] = ContextVar("repro-trace", default=None)


def current_trace() -> "Trace | None":
    """The trace the current context executes on behalf of, if any."""
    return _TRACE.get()


@contextmanager
def activate_trace(trace: "Trace | None") -> Iterator["Trace | None"]:
    """Make ``trace`` current for the ``with`` body.

    This is the thread-hop entry point: the server calls it in the
    executor thread around a request's execution, so deeper layers (the
    sharded fan-out, the slow log) reach the trace via
    :func:`current_trace`.  I/O attribution is separate — open a
    :func:`~repro.obs.tap.scoped_tap` with the trace, and the scope's
    totals fold into ``trace.io`` (under its lock) on exit; the trace's
    ledger is never installed as a shared mutable tap across threads.
    """
    if trace is None:
        yield None
        return
    token = _TRACE.set(trace)
    try:
        yield trace
    finally:
        _TRACE.reset(token)


@dataclass
class Span:
    """One named interval inside a trace (seconds, ``perf_counter``).

    ``track`` selects the trace's sub-row in the export: track 0 is the
    request's main timeline (whose spans must nest), while concurrent
    work — the sharded fan-out running shards in parallel — goes on
    per-shard tracks so simultaneous spans never share a row.
    """

    name: str
    cat: str
    start_s: float
    end_s: float
    args: dict[str, Any] = field(default_factory=dict)
    track: int = 0

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)


class Trace:
    """One request's spans, events, and exact I/O ledger.

    Created by :meth:`Tracer.begin`; layers add spans/events while the
    trace is active; :meth:`Tracer.finish` closes it and decides
    emission.  ``io`` is the trace's :class:`~repro.obs.tap.IOTap` —
    the storage layers increment it adjacent to the shared counters, so
    its totals are exactly this request's slice of
    :class:`~repro.iomodel.counters.IOCounters` /
    :class:`~repro.storage.paged.PageCacheStats`.
    """

    __slots__ = (
        "trace_id",
        "name",
        "kind",
        "sampled",
        "slow",
        "start_s",
        "end_s",
        "spans",
        "events",
        "io",
        "args",
    )

    def __init__(
        self,
        trace_id: int,
        name: str,
        kind: str,
        sampled: bool,
        start_s: float | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.name = name
        self.kind = kind
        self.sampled = sampled
        self.slow = False
        self.start_s = time.perf_counter() if start_s is None else start_s
        self.end_s: float | None = None
        self.spans: list[Span] = []
        self.events: list[tuple[str, float, dict]] = []
        self.io = IOTap(trace=None)
        self.io.trace = self  # type: ignore[assignment]
        self.args: dict[str, Any] = {}

    @property
    def duration_s(self) -> float:
        """Seconds from begin to finish (0.0 while still open)."""
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    def add_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        cat: str = "service",
        track: int = 0,
        **args: Any,
    ) -> Span:
        """Record a span from explicit timestamps (list append: safe to
        call from any thread under CPython)."""
        span = Span(name, cat, start_s, end_s, dict(args), track)
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, cat: str = "engine", **args: Any) -> Iterator[Span]:
        """Time the ``with`` body as a span."""
        start = time.perf_counter()
        span = Span(name, cat, start, start, dict(args))
        try:
            yield span
        finally:
            span.end_s = time.perf_counter()
            self.spans.append(span)

    def event(self, name: str, **args: Any) -> None:
        """Record an instant event at the current time."""
        self.events.append((name, time.perf_counter(), dict(args)))

    def __repr__(self) -> str:
        return (
            f"Trace(#{self.trace_id} {self.name!r}, kind={self.kind}, "
            f"spans={len(self.spans)}, io={self.io!r})"
        )


class Tracer:
    """Begin/finish traces, apply the sampling rules, count outcomes.

    Parameters
    ----------
    writer:
        Destination for emitted traces (None: traces are still built
        and finished — useful in tests via ``keep_finished``).
    sample_rate:
        Head-sampling probability in [0, 1]; 1.0 traces everything.
    slow_threshold_s:
        When set, a head-dropped trace is still emitted if its
        end-to-end duration reaches this bound (and every emitted trace
        at least this slow is flagged ``slow``).
    seed:
        Makes the head-sampling coin reproducible.
    keep_finished:
        Retain emitted traces on ``tracer.finished`` (tests and the
        ``repro trace`` summary; unbounded — not for long services).
    """

    def __init__(
        self,
        writer: "TraceWriter | None" = None,
        sample_rate: float = 1.0,
        slow_threshold_s: float | None = None,
        seed: int = 0,
        keep_finished: bool = False,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if slow_threshold_s is not None and slow_threshold_s < 0:
            raise ValueError("slow_threshold_s must be >= 0")
        self.writer = writer
        self.sample_rate = sample_rate
        self.slow_threshold_s = slow_threshold_s
        self.epoch_s = time.perf_counter()
        self.started = 0
        self.emitted = 0
        self.slow = 0
        self.finished: list[Trace] = []
        self._keep = keep_finished
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def begin(
        self, name: str, kind: str = "?", start_s: float | None = None
    ) -> Trace | None:
        """Start a trace, or return None when sampling drops it outright.

        A trace is built whenever it has *any* chance of emission: head
        sampling hit, or a slow threshold is armed (the trace may yet
        earn emission by being slow).
        """
        with self._lock:
            sampled = (
                self.sample_rate >= 1.0
                or self._rng.random() < self.sample_rate
            )
            if not sampled and self.slow_threshold_s is None:
                return None
            self.started += 1
            trace_id = self.started
        return Trace(trace_id, name, kind, sampled, start_s=start_s)

    def finish(self, trace: Trace | None, end_s: float | None = None) -> bool:
        """Close a trace and emit it if the sampling rules say so.

        Returns True when the trace was emitted.  Safe to call with
        ``None`` (a begin that was dropped).
        """
        if trace is None:
            return False
        trace.end_s = time.perf_counter() if end_s is None else end_s
        threshold = self.slow_threshold_s
        trace.slow = threshold is not None and trace.duration_s >= threshold
        emit = trace.sampled or trace.slow
        with self._lock:
            if trace.slow:
                self.slow += 1
            if not emit:
                return False
            self.emitted += 1
            if self._keep:
                self.finished.append(trace)
        if self.writer is not None:
            self.writer.emit(trace, epoch_s=self.epoch_s)
        return True

    def __repr__(self) -> str:
        return (
            f"Tracer(started={self.started}, emitted={self.emitted}, "
            f"slow={self.slow}, sample_rate={self.sample_rate})"
        )


class TraceWriter:
    """Chrome trace-event JSON writer, one event per line.

    The output is the "JSON Array Format": a ``[`` line, one event
    object per line, and a closing ``]`` written by :meth:`close` — a
    valid JSON document that Perfetto and ``chrome://tracing`` load
    as-is (the format also tolerates a missing close bracket, so a
    crashed run's file still loads).  Each trace gets its own ``tid``
    row named after the request, so concurrent requests render as
    parallel tracks; ``pid`` is always 1.  Thread-safe.
    """

    def __init__(self, path) -> None:
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")
        self._fh.write("[\n")
        self._first = True
        self._closed = False
        self._lock = threading.Lock()
        self._next_tid = 1
        self.events_written = 0
        self.traces_written = 0

    # -- emission ------------------------------------------------------

    def _write_event(self, event: dict) -> None:
        if self._first:
            self._first = False
        else:
            self._fh.write(",\n")
        self._fh.write(json.dumps(event, separators=(",", ":"), default=str))
        self.events_written += 1

    @staticmethod
    def _ts(seconds: float, epoch_s: float) -> float:
        return round((seconds - epoch_s) * 1e6, 3)

    def emit(self, trace: Trace, epoch_s: float) -> None:
        """Write one finished trace's events.

        Each distinct span track gets its own ``tid`` row (allocated
        writer-wide, so rows are unique across traces): track 0 is the
        request's main timeline, other tracks carry concurrent work
        such as parallel shard fan-out spans.
        """
        spans = sorted(trace.spans, key=lambda s: (s.track, s.start_s))
        tracks = sorted({0} | {s.track for s in spans})
        end_s = trace.end_s if trace.end_s is not None else trace.start_s
        with self._lock:
            if self._closed:
                return
            tids = {}
            for track in tracks:
                tids[track] = self._next_tid
                self._next_tid += 1
            label = f"{trace.name}#{trace.trace_id}"
            for track in tracks:
                self._write_event(
                    {
                        "ph": "M",
                        "pid": 1,
                        "tid": tids[track],
                        "name": "thread_name",
                        "args": {
                            "name": label
                            if track == 0
                            else f"{label}/track{track}"
                        },
                    }
                )
            # The whole-request span every main-track span nests inside.
            self._write_event(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": tids[0],
                    "name": f"request:{trace.kind}",
                    "cat": "request",
                    "ts": self._ts(trace.start_s, epoch_s),
                    "dur": round((end_s - trace.start_s) * 1e6, 3),
                    "args": {
                        "trace_id": trace.trace_id,
                        "sampled": trace.sampled,
                        "slow": trace.slow,
                        "io": trace.io.snapshot(),
                        **trace.args,
                    },
                }
            )
            for span in spans:
                self._write_event(
                    {
                        "ph": "X",
                        "pid": 1,
                        "tid": tids[span.track],
                        "name": span.name,
                        "cat": span.cat,
                        "ts": self._ts(span.start_s, epoch_s),
                        "dur": round(span.duration_s * 1e6, 3),
                        "args": span.args,
                    }
                )
            for name, at_s, args in trace.events:
                self._write_event(
                    {
                        "ph": "i",
                        "s": "t",
                        "pid": 1,
                        "tid": tids[0],
                        "name": name,
                        "cat": "event",
                        "ts": self._ts(at_s, epoch_s),
                        "args": args,
                    }
                )
            self.traces_written += 1

    def close(self) -> None:
        """Finalize the JSON array and close the file (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._fh.write("\n]\n")
            self._fh.close()
            self._closed = True

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_trace_events(path) -> list[dict]:
    """Load a :class:`TraceWriter` file back into a list of event dicts.

    Accepts both a finalized file (valid JSON array) and a truncated
    one (missing close bracket, e.g. from a crashed run) — the same
    tolerance Chrome's own loader has.
    """
    text = open(path, "r", encoding="utf-8").read()
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return json.loads(text.rstrip().rstrip(",") + "\n]")


def check_span_nesting(events: list[dict]) -> list[str]:
    """Verify the duration events of each (pid, tid) row nest properly.

    Two spans on one row must either be disjoint or one must contain
    the other — partial overlap means broken timestamps.  Returns one
    message per violation (empty: all good).  Instant and metadata
    events are ignored.  Spans sort parent-first at equal starts, and a
    2 ns tolerance absorbs the float dust of the microsecond rounding
    in the export (adjacent spans share a boundary timestamp).
    """
    eps = 2e-3  # microseconds
    rows: dict[tuple, list[tuple[float, float, str]]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        key = (event.get("pid"), event.get("tid"))
        start = float(event["ts"])
        rows.setdefault(key, []).append(
            (start, start + float(event.get("dur", 0)), event.get("name", "?"))
        )
    errors = []
    for key, spans in rows.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        open_stack: list[tuple[float, float, str]] = []
        for start, end, name in spans:
            while open_stack and open_stack[-1][1] <= start + eps:
                open_stack.pop()
            if open_stack and end > open_stack[-1][1] + eps:
                errors.append(
                    f"tid {key[1]}: span {name!r} [{start}, {end}] "
                    f"partially overlaps {open_stack[-1][2]!r} "
                    f"[{open_stack[-1][0]}, {open_stack[-1][1]}]"
                )
                continue
            open_stack.append((start, end, name))
    return errors
