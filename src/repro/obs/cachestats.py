"""Page-cache analytics: reuse distances, frequency, working sets.

`PageCacheStats` says what the cache *did* at its configured budget.
This module says what it *would* do at any other budget, from the same
access stream, in one pass — the input the ROADMAP's cache-policy
experiments (2Q, CLOCK, budget sizing) need before any policy is worth
implementing.

The core is a **ghost LRU** (Mattson's stack algorithm, SIGMOD's
favorite 1970 result): keep the accessed block ids in exact LRU order
*without their data*, and on each access record the block's stack
depth — its reuse distance.  An LRU cache of capacity C hits exactly
the accesses with distance <= C, so one pass yields the hit count for
*every* capacity simultaneously.

A naive stack costs O(depth) per access.  `ReuseDistanceTracker`
buckets the stack instead: a chain of ordered dicts with capacities
equal to the gaps between the requested budget boundaries.  An access
only needs to know *which bucket* the block sits in (a dict lookup),
then the block moves to the MRU bucket and each overfull bucket demotes
its own LRU tail to the next — O(#buckets) dict operations per access,
independent of stack depth, while preserving the exact global LRU
order.  Hit counts at the boundary budgets are therefore *exact*
(verified against a brute-force stack oracle in the tests); only
between boundaries does the curve interpolate.

On top of the distance histogram the tracker keeps:

* per-block access frequency, split leaf vs internal (geometric
  buckets: how skewed is the access distribution?);
* a working-set estimate — unique blocks touched in the trailing
  window of accesses (Denning's W(t, τ) with τ in accesses);
* cold (first-touch) misses, which no budget can save.

The tracker hooks into ``PagedNodeStore`` under the store lock, so it
observes exactly the lookup sequence the real cache serves — counted
reads *and* kind-probe peeks, each tagged with the real hit/miss
outcome — and the curve's point at the configured capacity lands on
the measured ``PageCacheStats`` hit ratio (the engines' peek-then-read
idiom makes the ghost's insert-on-access model agree with the real
peek-around/insert-on-read behavior; only the MRU pin and peeks never
followed by a read can diverge, both marginal).  When disabled (the
default) the hook is one ``is None`` check per lookup.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "ReuseDistanceTracker",
    "CacheCurvePoint",
    "FrequencyBand",
    "default_budgets",
]

#: Trailing-window sizes (in accesses) for the working-set estimate.
WSS_WINDOWS = (1_000, 10_000, 100_000)


def default_budgets(capacity: int) -> tuple[int, ...]:
    """Budget boundaries bracketing ``capacity`` geometrically.

    Powers-of-two fractions and multiples of the configured capacity —
    the budgets a sizing decision actually compares — deduplicated and
    cleaned of non-positive values.
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    raw = [
        capacity // 8,
        capacity // 4,
        capacity // 2,
        capacity,
        capacity * 2,
        capacity * 4,
        capacity * 8,
    ]
    return tuple(sorted({b for b in raw if b >= 1}))


@dataclass(frozen=True)
class CacheCurvePoint:
    """One point of the miss-ratio curve: an LRU cache of ``budget``
    pages would have served this access stream with these counts."""

    budget: int
    hits: int
    misses: int

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class FrequencyBand:
    """Blocks accessed between ``lo`` and ``hi`` times (inclusive)."""

    lo: int
    hi: int
    leaf_blocks: int
    internal_blocks: int

    @property
    def blocks(self) -> int:
        return self.leaf_blocks + self.internal_blocks


class _GhostStack:
    """Exact LRU stack bucketed at the budget boundaries.

    ``_buckets[i]`` holds the blocks at stack depths
    ``(boundary[i-1], boundary[i]]`` in LRU order (first = shallowest).
    A hit in bucket ``i`` means reuse distance <= ``boundary[i]``:
    charge ``hits_within[i]``, move the block to the MRU end of bucket
    0, and cascade — every bucket that is now over capacity demotes its
    least-recent entry to the head of the next.  Entries demoted past
    the last boundary leave the ghost entirely (bounded memory: the
    ghost never holds more than ``boundary[-1]`` ids).
    """

    __slots__ = ("boundaries", "capacities", "_buckets", "hits_within", "ghost_evictions")

    def __init__(self, boundaries: Sequence[int]) -> None:
        self.boundaries = tuple(boundaries)
        prev = 0
        self.capacities = []
        for b in self.boundaries:
            self.capacities.append(b - prev)
            prev = b
        self._buckets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in self.boundaries
        ]
        self.hits_within = [0] * len(self.boundaries)
        self.ghost_evictions = 0

    def touch(self, block_id: int) -> bool:
        """Record an access; True if the block was in the ghost."""
        hit_bucket = -1
        for i, bucket in enumerate(self._buckets):
            if block_id in bucket:
                del bucket[block_id]
                hit_bucket = i
                break
        if hit_bucket >= 0:
            self.hits_within[hit_bucket] += 1
        buckets = self._buckets
        buckets[0][block_id] = None
        buckets[0].move_to_end(block_id)
        # Cascade demotions: stop at the bucket the hit came from (it
        # just lost an entry and cannot overflow) or when a bucket has
        # room.  Each demotion moves one LRU tail one bucket deeper,
        # preserving the global LRU order across the chain.
        limit = hit_bucket if hit_bucket >= 0 else len(buckets)
        for i in range(limit):
            if len(buckets[i]) <= self.capacities[i]:
                break
            demoted, _ = buckets[i].popitem(last=False)
            if i + 1 < len(buckets):
                # The demoted entry was the deepest of bucket i, hence
                # shallower than all of bucket i+1: append at the
                # shallow (most-recent) end.
                buckets[i + 1][demoted] = None
            else:
                self.ghost_evictions += 1
        return hit_bucket >= 0

    def size(self) -> int:
        return sum(len(b) for b in self._buckets)


class _BlockInfo:
    __slots__ = ("count", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.count = 0
        self.is_leaf = is_leaf


class ReuseDistanceTracker:
    """One-pass ghost-LRU cache model of a page-access stream.

    Parameters
    ----------
    capacity:
        The real cache's page budget; anchors the default boundary set
        so the curve always has an exact point at the configured size.
    budgets:
        Explicit boundary budgets (ascending after dedup).  Overrides
        ``capacity``-derived defaults.
    keep_log:
        Retain the raw ``(block_id, is_leaf)`` access sequence for
        oracle replay in tests.  Never enable in production paths —
        memory grows with the trace.

    Thread safety: :meth:`record` takes the tracker's own lock, so one
    tracker may serve a store reached from several worker threads; the
    observed order is the order the callers acquired it in (for
    `PagedNodeStore` the store lock already serializes callers, making
    the ghost order identical to the real cache's).
    """

    def __init__(
        self,
        capacity: int = 1024,
        budgets: Iterable[int] | None = None,
        keep_log: bool = False,
    ) -> None:
        bounds = (
            tuple(sorted({int(b) for b in budgets if int(b) >= 1}))
            if budgets is not None
            else default_budgets(capacity)
        )
        if not bounds:
            raise ValueError("at least one positive budget required")
        self.capacity = capacity
        self._stack = _GhostStack(bounds)
        self._blocks: dict[int, _BlockInfo] = {}
        self.accesses = 0
        self.cold_misses = 0
        #: Accesses the *real* cache served as hits (reported by the
        #: caller per :meth:`record`).  ``observed_hits / accesses`` is
        #: the measured hit ratio over exactly the tracked stream — the
        #: ground truth the curve's point at the configured capacity is
        #: validated against.
        self.observed_hits = 0
        self._clock = 0
        #: access index -> block id ring buffers for working sets.
        self._recent: OrderedDict[int, int] = OrderedDict()  # block -> last access idx
        self._lock = threading.Lock()
        self.log: list[tuple[int, bool]] | None = [] if keep_log else None

    # -- recording -----------------------------------------------------

    def record(self, block_id: int, is_leaf: bool, hit: bool = False) -> None:
        """Observe one page-table lookup; ``hit`` is the real outcome."""
        with self._lock:
            self.accesses += 1
            self._clock += 1
            if hit:
                self.observed_hits += 1
            info = self._blocks.get(block_id)
            if info is None:
                info = self._blocks[block_id] = _BlockInfo(is_leaf)
                self.cold_misses += 1
            info.count += 1
            self._stack.touch(block_id)
            self._recent[block_id] = self._clock
            self._recent.move_to_end(block_id)
            # Age out entries no working-set window can still see.
            horizon = self._clock - max(WSS_WINDOWS)
            while self._recent:
                oldest_block = next(iter(self._recent))
                if self._recent[oldest_block] > horizon:
                    break
                del self._recent[oldest_block]
            if self.log is not None:
                self.log.append((block_id, is_leaf))

    # -- derived views -------------------------------------------------

    @property
    def budgets(self) -> tuple[int, ...]:
        return self._stack.boundaries

    @property
    def unique_blocks(self) -> int:
        return len(self._blocks)

    @property
    def observed_hit_ratio(self) -> float:
        """Measured hit ratio of the real cache over the tracked stream."""
        return self.observed_hits / self.accesses if self.accesses else 0.0

    def predicted_hits(self, budget: int) -> int:
        """Exact LRU hits a ``budget``-page cache would have served.

        Exact when ``budget`` is one of the boundary budgets; otherwise
        the count for the largest boundary <= budget (a lower bound).
        """
        with self._lock:
            hits = 0
            for bound, h in zip(self._stack.boundaries, self._stack.hits_within):
                if bound <= budget:
                    hits += h
                else:
                    break
            return hits

    def miss_ratio_curve(self) -> list[CacheCurvePoint]:
        """Hit/miss counts at every boundary budget, ascending."""
        with self._lock:
            points = []
            cum_hits = 0
            for bound, h in zip(self._stack.boundaries, self._stack.hits_within):
                cum_hits += h
                points.append(
                    CacheCurvePoint(
                        budget=bound,
                        hits=cum_hits,
                        misses=self.accesses - cum_hits,
                    )
                )
            return points

    def frequency_histogram(self) -> list[FrequencyBand]:
        """Access-count distribution over blocks, split leaf/internal.

        Geometric bands (1, 2, 3-4, 5-8, ...): the shape answers "is
        the workload a few hot internal pages plus a long leaf tail?"
        without shipping per-block detail.
        """
        with self._lock:
            if not self._blocks:
                return []
            max_count = max(info.count for info in self._blocks.values())
            bands: list[FrequencyBand] = []
            lo = 1
            while lo <= max_count:
                hi = max(lo, lo * 2 - 1)
                leaf = internal = 0
                for info in self._blocks.values():
                    if lo <= info.count <= hi:
                        if info.is_leaf:
                            leaf += 1
                        else:
                            internal += 1
                if leaf or internal:
                    bands.append(FrequencyBand(lo, hi, leaf, internal))
                lo = hi + 1
            return bands

    def working_set_sizes(self) -> dict[int, int]:
        """Unique blocks touched in each trailing window of accesses.

        Denning's working set W(t, τ) sampled now, with τ given in
        accesses (not seconds — access counts are reproducible).
        Windows longer than the stream so far report the full unique
        count.
        """
        with self._lock:
            sizes: dict[int, int] = {}
            for window in WSS_WINDOWS:
                horizon = self._clock - window
                if horizon <= 0:
                    sizes[window] = len(self._blocks)
                else:
                    sizes[window] = sum(
                        1 for last in self._recent.values() if last > horizon
                    )
            return sizes

    def summary(self) -> dict:
        """JSON-ready snapshot of everything the tracker derives."""
        curve = self.miss_ratio_curve()
        return {
            "accesses": self.accesses,
            "unique_blocks": self.unique_blocks,
            "cold_misses": self.cold_misses,
            "observed_hits": self.observed_hits,
            "capacity": self.capacity,
            "curve": [
                {
                    "budget": p.budget,
                    "hits": p.hits,
                    "misses": p.misses,
                    "hit_ratio": p.hit_ratio,
                }
                for p in curve
            ],
            "working_set": self.working_set_sizes(),
        }

    def __repr__(self) -> str:
        return (
            f"ReuseDistanceTracker(capacity={self.capacity}, "
            f"accesses={self.accesses}, unique={self.unique_blocks}, "
            f"budgets={self._stack.boundaries})"
        )
