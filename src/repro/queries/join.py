"""R-tree spatial join: synchronized dual-tree traversal with plane sweep.

The classic algorithm of Brinkhoff, Kriegel and Seeger: starting from the
two roots, recursively visit every pair of nodes whose bounding boxes
intersect.  At each internal pair the intersecting child-entry pairs are
found with a plane sweep along the x axis (instead of the naive nested
loop), and at a leaf-leaf pair the same sweep reports the intersecting
data-rectangle pairs.  Trees of different heights are handled by fixing
the shallower node and descending only the deeper tree until the levels
meet.

I/O accounting follows the window engine's convention independently per
side: each tree gets its own internal-node LRU pool (warm pools make
internal reads free, exactly like repeated window queries), and every
leaf fetch hits the simulated disk and is counted.  A leaf that joins
with several partners is fetched once per visiting pair group — the
uncached-leaf model the paper's query experiments use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.geometry import kernels
from repro.geometry.rect import Rect
from repro.queries.base import QueryStats, TraversalEngine
from repro.rtree.node import Entry, Node, NodeFrame
from repro.rtree.tree import RTree

__all__ = [
    "JoinStats",
    "SpatialJoinEngine",
    "spatial_join",
    "sweep_pairs",
    "sweep_order",
    "brute_force_join",
]

#: One join result: ((rect, value) from the left tree, same from the right).
JoinPair = tuple[tuple[Rect, Any], tuple[Rect, Any]]


@dataclass
class JoinStats:
    """Access statistics for one spatial join (or an accumulated batch).

    Attributes
    ----------
    left, right:
        Per-tree read statistics, same shape as window-query stats.
    pairs:
        Intersecting data-rectangle pairs reported (the join's T).
    node_pairs:
        Node pairs visited by the synchronized traversal.
    joins:
        Number of joins accumulated into this object.
    """

    left: QueryStats = field(default_factory=QueryStats)
    right: QueryStats = field(default_factory=QueryStats)
    pairs: int = 0
    node_pairs: int = 0
    joins: int = 0

    @property
    def ios(self) -> int:
        """Join cost under the paper's convention: leaf reads, both trees."""
        return self.left.leaf_reads + self.right.leaf_reads

    @property
    def total_reads(self) -> int:
        """Cost with caching ignored (all disk reads, both trees)."""
        return self.left.total_reads + self.right.total_reads

    def merge(self, other: "JoinStats") -> None:
        """Accumulate another join's statistics into this object."""
        self.left.merge(other.left)
        self.right.merge(other.right)
        self.pairs += other.pairs
        self.node_pairs += other.node_pairs
        self.joins += other.joins


def sweep_pairs(
    left: Sequence[Entry],
    right: Sequence[Entry],
    left_order: Sequence[int] | None = None,
    right_order: Sequence[int] | None = None,
) -> Iterator[tuple[int, int]]:
    """Index pairs ``(i, j)`` with ``left[i]`` intersecting ``right[j]``.

    A forward plane sweep along axis 0: both entry lists are visited in
    ascending ``xmin`` order, and for each rectangle the other list is
    scanned forward while its rectangles can still overlap in x; the
    full intersection test settles the remaining axes.  Each
    intersecting pair is produced exactly once.

    ``left_order``/``right_order`` optionally supply the xmin-sorted
    index orders (as produced by :func:`sweep_order`); the join engine
    caches them per node so a node joined against many partners is
    sorted once, not once per partner.
    """
    a = sweep_order(left) if left_order is None else left_order
    b = sweep_order(right) if right_order is None else right_order
    i = j = 0
    while i < len(a) and j < len(b):
        ra = left[a[i]][0]
        rb = right[b[j]][0]
        if ra.lo[0] <= rb.lo[0]:
            # ra opens first: pair it with every right rect opening
            # before ra closes.
            jj = j
            while jj < len(b):
                rj = right[b[jj]][0]
                if rj.lo[0] > ra.hi[0]:
                    break
                if ra.intersects(rj):
                    yield a[i], b[jj]
                jj += 1
            i += 1
        else:
            ii = i
            while ii < len(a):
                ri = left[a[ii]][0]
                if ri.lo[0] > rb.hi[0]:
                    break
                if ri.intersects(rb):
                    yield a[ii], b[j]
                ii += 1
            j += 1


def sweep_order(entries: Sequence[Entry]) -> list[int]:
    """Entry indices in ascending ``xmin`` order (the sweep's sort key)."""
    return sorted(range(len(entries)), key=lambda i: entries[i][0].lo[0])


#: Per-node sweep state: (xmin-sorted row order, xmin column, xmax column).
_SweepState = tuple[list[int], list[float], list[float]]


def _sweep_state_of(frame: NodeFrame) -> _SweepState:
    """Sweep bookkeeping for one frame, computed once per node.

    The x columns are extracted as plain float lists (identical values
    to the historical ``entries[i][0].lo[0]`` accesses), and the order
    is the same stable sort :func:`sweep_order` produces.
    """
    xlo = kernels.table_column(frame.lo, 0)
    xhi = kernels.table_column(frame.hi, 0)
    order = sorted(range(len(xlo)), key=xlo.__getitem__)
    return order, xlo, xhi


def _sweep_frames(
    frame_a: NodeFrame,
    frame_b: NodeFrame,
    state_a: _SweepState,
    state_b: _SweepState,
    mask,
) -> Iterator[tuple[int, int]]:
    """:func:`sweep_pairs` over frames: same sweep, vectorized tests.

    ``mask`` is :func:`~repro.geometry.kernels.frame_pair_mask`'s full
    intersection matrix (or ``None`` under the fallback backend, where
    the sweep keeps per-pair scalar tests).  Pair production order is
    identical to the entry-based sweep.
    """
    order_a, xlo_a, xhi_a = state_a
    order_b, xlo_b, xhi_b = state_b
    lo_a, hi_a = frame_a.lo, frame_a.hi
    lo_b, hi_b = frame_b.lo, frame_b.hi
    na, nb = len(order_a), len(order_b)
    i = j = 0
    while i < na and j < nb:
        ia = order_a[i]
        ib = order_b[j]
        if xlo_a[ia] <= xlo_b[ib]:
            # ia opens first: pair it with every right rect opening
            # before ia closes.
            close = xhi_a[ia]
            jj = j
            while jj < nb:
                jb = order_b[jj]
                if xlo_b[jb] > close:
                    break
                if (
                    mask[ia, jb]
                    if mask is not None
                    else kernels.intersects(
                        lo_a[ia], hi_a[ia], lo_b[jb], hi_b[jb]
                    )
                ):
                    yield ia, jb
                jj += 1
            i += 1
        else:
            close = xhi_b[ib]
            ii = i
            while ii < na:
                ja = order_a[ii]
                if xlo_a[ja] > close:
                    break
                if (
                    mask[ja, ib]
                    if mask is not None
                    else kernels.intersects(
                        lo_a[ja], hi_a[ja], lo_b[ib], hi_b[ib]
                    )
                ):
                    yield ja, ib
                ii += 1
            j += 1


class SpatialJoinEngine:
    """Reusable intersection-join executor for a pair of trees.

    Parameters
    ----------
    left, right:
        The trees to join (any variants; they may differ in height,
        fan-out and build algorithm — or be the same tree for a
        self-join).
    cache_internal:
        When true (default) each side's internal nodes are cached in an
        unbounded LRU pool shared across joins.
    cache_capacity:
        Optional cap on each internal-node pool.
    """

    def __init__(
        self,
        left: RTree,
        right: RTree,
        cache_internal: bool = True,
        cache_capacity: float = math.inf,
    ) -> None:
        if left.dim != right.dim:
            raise ValueError(
                f"cannot join a {left.dim}-d tree with a {right.dim}-d tree"
            )
        self._left = TraversalEngine(left, cache_internal, cache_capacity)
        self._right = TraversalEngine(right, cache_internal, cache_capacity)
        # xmin-sorted row orders plus x-column extracts, keyed by block id
        # per side, so a node visited in many node pairs is sorted once.
        # Like the internal-node pools, this assumes the trees are not
        # mutated mid-join.
        self._orders_left: dict[int, _SweepState] = {}
        self._orders_right: dict[int, _SweepState] = {}
        self.totals = JoinStats()

    def join(self) -> tuple[list[JoinPair], JoinStats]:
        """Report every intersecting (left, right) data-rectangle pair.

        Returns the pairs plus this join's statistics; :attr:`totals`
        accumulate across calls.  A self-join (both sides the same tree)
        reports ordered pairs, including each rectangle with itself.
        """
        out: list[JoinPair] = []
        stats = self._run(out)
        return out, stats

    def pair_count(self) -> tuple[int, JoinStats]:
        """Join cardinality without materializing the pairs.

        Same traversal and I/O cost as :meth:`join`, but the O(T) pair
        list is never built; the count is also ``stats.pairs``.
        """
        stats = self._run(out=None)
        return stats.pairs, stats

    def _run(self, out: list[JoinPair] | None) -> JoinStats:
        stats = JoinStats(joins=1)
        left_root_id = self._left.tree.root_id
        right_root_id = self._right.tree.root_id
        left_root = self._read_left(left_root_id, stats)
        right_root = self._read_right(right_root_id, stats)
        if len(left_root) and len(right_root):
            if left_root.mbr().intersects(right_root.mbr()):
                self._join_pair(
                    left_root_id, left_root, right_root_id, right_root,
                    out, stats,
                )
        self.totals.merge(stats)
        return stats

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def _read_left(self, block_id: int, stats: JoinStats) -> Node:
        return self._left._read(block_id, stats.left)

    def _read_right(self, block_id: int, stats: JoinStats) -> Node:
        return self._right._read(block_id, stats.right)

    def _sweep_state(
        self, cache: dict[int, _SweepState], block_id: int, frame: NodeFrame
    ) -> _SweepState:
        state = cache.get(block_id)
        if state is None:
            state = _sweep_state_of(frame)
            cache[block_id] = state
        return state

    def _join_pair(
        self,
        id_a: int,
        node_a: Node,
        id_b: int,
        node_b: Node,
        out: list[JoinPair] | None,
        stats: JoinStats,
    ) -> None:
        stats.node_pairs += 1
        frame_a = node_a.frame()
        frame_b = node_b.frame()
        # EXPLAIN recorders (repro.queries.explain), one per side; a node
        # joined against several partners accumulates matches per visit
        # and the plan clamps to the node's entry count.
        rec_a = self._left._recorder
        rec_b = self._right._recorder
        if frame_a.is_leaf and frame_b.is_leaf:
            mask = kernels.frame_pair_mask(
                frame_a.lo, frame_a.hi, frame_b.lo, frame_b.hi
            )
            if out is None and mask is not None and rec_a is None:
                # Count-only: the mask already holds every intersecting
                # pair exactly once — no sweep needed.  (Under EXPLAIN
                # the sweep runs so per-side matched rows are known; the
                # pair count is identical.)
                stats.pairs += int(mask.sum())
                return
            left_objects = self._left.tree.objects
            right_objects = self._right.tree.objects
            pairs = _sweep_frames(
                frame_a,
                frame_b,
                self._sweep_state(self._orders_left, id_a, frame_a),
                self._sweep_state(self._orders_right, id_b, frame_b),
                mask,
            )
            if rec_a is not None:
                seen_a: set[int] = set()
                seen_b: set[int] = set()
                for i, j in pairs:
                    stats.pairs += 1
                    seen_a.add(i)
                    seen_b.add(j)
                    if out is not None:
                        out.append(
                            (
                                (
                                    frame_a.rect(i),
                                    left_objects.get(frame_a.ptrs[i]),
                                ),
                                (
                                    frame_b.rect(j),
                                    right_objects.get(frame_b.ptrs[j]),
                                ),
                            )
                        )
                rec_a.note_matched(id_a, len(seen_a))
                rec_b.note_matched(id_b, len(seen_b))
                return
            for i, j in pairs:
                stats.pairs += 1
                if out is not None:
                    out.append(
                        (
                            (
                                frame_a.rect(i),
                                left_objects.get(frame_a.ptrs[i]),
                            ),
                            (
                                frame_b.rect(j),
                                right_objects.get(frame_b.ptrs[j]),
                            ),
                        )
                    )
        elif frame_a.is_leaf:
            # Height mismatch: fix the left leaf, descend the right tree.
            mbr_a = frame_a.mbr()
            rows = kernels.frame_intersecting(
                frame_b.lo,
                frame_b.hi,
                kernels.as_coords(mbr_a.lo),
                kernels.as_coords(mbr_a.hi),
            )
            if rec_b is not None:
                rec_b.note_matched(id_b, len(rows))
            for row in rows:
                child_id = frame_b.ptrs[row]
                child = self._read_right(child_id, stats)
                self._join_pair(id_a, node_a, child_id, child, out, stats)
        elif frame_b.is_leaf:
            mbr_b = frame_b.mbr()
            rows = kernels.frame_intersecting(
                frame_a.lo,
                frame_a.hi,
                kernels.as_coords(mbr_b.lo),
                kernels.as_coords(mbr_b.hi),
            )
            if rec_a is not None:
                rec_a.note_matched(id_a, len(rows))
            for row in rows:
                child_id = frame_a.ptrs[row]
                child = self._read_left(child_id, stats)
                self._join_pair(child_id, child, id_b, node_b, out, stats)
        else:
            # Both internal: plane-sweep the entry pairs, then group by
            # left child so each left child is fetched once per visit.
            matches: dict[int, list[int]] = {}
            pairs = _sweep_frames(
                frame_a,
                frame_b,
                self._sweep_state(self._orders_left, id_a, frame_a),
                self._sweep_state(self._orders_right, id_b, frame_b),
                kernels.frame_pair_mask(
                    frame_a.lo, frame_a.hi, frame_b.lo, frame_b.hi
                ),
            )
            for i, j in pairs:
                matches.setdefault(i, []).append(j)
            if rec_a is not None:
                rec_a.note_matched(id_a, len(matches))
                rec_b.note_matched(
                    id_b, len({j for js in matches.values() for j in js})
                )
            for i in sorted(matches):
                child_a_id = frame_a.ptrs[i]
                child_a = self._read_left(child_a_id, stats)
                for j in matches[i]:
                    child_b_id = frame_b.ptrs[j]
                    child_b = self._read_right(child_b_id, stats)
                    self._join_pair(
                        child_a_id, child_a, child_b_id, child_b, out, stats
                    )

    def reset(self) -> None:
        """Clear accumulated totals (both caches stay warm)."""
        self.totals = JoinStats()


def spatial_join(left: RTree, right: RTree) -> list[JoinPair]:
    """One-off intersection join returning ``((rect, value), (rect, value))``.

    For measured experiments construct a :class:`SpatialJoinEngine`
    directly — it exposes per-tree I/O statistics and keeps both
    internal-node caches warm across repeated joins.
    """
    pairs, _ = SpatialJoinEngine(left, right).join()
    return pairs


def brute_force_join(
    left: Sequence[tuple[Rect, Any]], right: Sequence[tuple[Rect, Any]]
) -> list[tuple[Any, Any]]:
    """Reference implementation: nested-loop join returning value pairs.

    The correctness oracle for the join tests.
    """
    return [
        (va, vb)
        for ra, va in left
        for rb, vb in right
        if ra.intersects(rb)
    ]
