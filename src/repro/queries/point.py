"""Point (stabbing), containment and count queries.

Three small relatives of the window query, all running the same
depth-first traversal with the window engine's I/O accounting:

* :meth:`PointQueryEngine.point_query` — all data rectangles containing a
  query point (the stabbing query).  Prunes harder than a degenerate
  window query: a subtree is descended only when its bounding box
  *contains* the point.
* :meth:`PointQueryEngine.containment_query` — all data rectangles lying
  entirely inside a query window.  Pruning still uses intersection (a
  child box need not be contained for its rectangles to be), but
  reporting checks full containment.
* :meth:`PointQueryEngine.count` — window-query cardinality without
  materializing matches; ``stats.reported`` carries the count.

Each returns the same ``(result, QueryStats)`` shape as
:class:`~repro.rtree.query.QueryEngine.query`, and one engine instance
shares a single warm internal-node pool across all three operators.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.geometry import kernels
from repro.geometry.rect import Rect
from repro.queries.base import QueryStats, TraversalEngine

__all__ = [
    "PointQueryEngine",
    "point_query",
    "containment_query",
    "count_query",
    "brute_force_point_query",
    "brute_force_containment",
]


class PointQueryEngine(TraversalEngine):
    """Reusable executor for point / containment / count queries."""

    def point_query(
        self, point: Sequence[float]
    ) -> tuple[list[tuple[Rect, Any]], QueryStats]:
        """All stored rectangles containing ``point`` (stabbing query)."""
        point = tuple(float(c) for c in point)
        if len(point) != self.tree.dim:
            raise ValueError(
                f"{len(point)}-d point against a {self.tree.dim}-d tree"
            )
        p = kernels.as_coords(point)

        def stabbing(frame):
            return kernels.frame_containing_point(frame.lo, frame.hi, p)

        # A subtree is descended only when its box contains the point —
        # the same kernel prunes and reports.
        return self._run(descend_rows=stabbing, report_rows=stabbing)

    def containment_query(
        self, window: Rect
    ) -> tuple[list[tuple[Rect, Any]], QueryStats]:
        """All stored rectangles lying entirely inside ``window``."""
        if window.dim != self.tree.dim:
            raise ValueError(
                f"{window.dim}-d window against a {self.tree.dim}-d tree"
            )
        q_lo = kernels.as_coords(window.lo)
        q_hi = kernels.as_coords(window.hi)
        # Pruning still uses intersection (a child box need not be
        # contained for its rectangles to be); reporting checks full
        # containment.
        return self._run(
            descend_rows=lambda frame: kernels.frame_intersecting(
                frame.lo, frame.hi, q_lo, q_hi
            ),
            report_rows=lambda frame: kernels.frame_contained_in(
                frame.lo, frame.hi, q_lo, q_hi
            ),
        )

    def count(self, window: Rect) -> tuple[int, QueryStats]:
        """Number of stored rectangles intersecting ``window``.

        Same traversal as the window query; the count is also available
        as ``stats.reported``.
        """
        if window.dim != self.tree.dim:
            raise ValueError(
                f"{window.dim}-d window against a {self.tree.dim}-d tree"
            )
        q_lo = kernels.as_coords(window.lo)
        q_hi = kernels.as_coords(window.hi)
        _, stats = self._run(
            descend_rows=lambda frame: kernels.frame_intersecting(
                frame.lo, frame.hi, q_lo, q_hi
            ),
            report_rows=None,
            count_rows=lambda frame: kernels.frame_count_intersecting(
                frame.lo, frame.hi, q_lo, q_hi
            ),
        )
        return stats.reported, stats

    def _run(
        self,
        descend_rows: Callable[..., list[int]],
        report_rows: Callable[..., list[int]] | None,
        count_rows: Callable[..., int] | None = None,
    ) -> tuple[list[tuple[Rect, Any]], QueryStats]:
        """Depth-first traversal with whole-frame evaluation.

        ``descend_rows(frame)`` returns the internal rows to push,
        ``report_rows(frame)`` the leaf rows to materialize; a count-only
        operator passes ``count_rows`` instead so leaves never build an
        index list (or a ``Rect``) at all.
        """
        tree = self.tree
        recorder = self._recorder
        stats = QueryStats(queries=1)
        matches: list[tuple[Rect, Any]] = []
        stack = [tree.root_id]
        while stack:
            block_id = stack.pop()
            node = self._read(block_id, stats)
            frame = node.frame()
            if frame.is_leaf:
                if report_rows is None:
                    kept = count_rows(frame)
                    stats.reported += kept
                    if recorder is not None:
                        recorder.note_matched(block_id, kept)
                    continue
                rows = report_rows(frame)
                stats.reported += len(rows)
                if recorder is not None:
                    recorder.note_matched(block_id, len(rows))
                entries = node.cached_entries()
                if entries is None:
                    for i in rows:
                        matches.append(
                            (frame.rect(i), tree.objects.get(frame.ptrs[i]))
                        )
                else:
                    # Report existing Rect objects when the node has a
                    # materialized entry list (identical values).
                    for i in rows:
                        rect, pointer = entries[i]
                        matches.append((rect, tree.objects.get(pointer)))
            else:
                ptrs = frame.ptrs
                rows = descend_rows(frame)
                if recorder is not None:
                    recorder.note_matched(block_id, len(rows))
                for i in rows:
                    stack.append(ptrs[i])
        self.totals.merge(stats)
        return matches, stats


def point_query(tree, point: Sequence[float]) -> list[tuple[Rect, Any]]:
    """One-off stabbing query returning ``(rect, value)`` matches.

    For measured experiments construct a :class:`PointQueryEngine`
    directly — it exposes I/O statistics and keeps its internal-node
    cache warm across a query workload.
    """
    matches, _ = PointQueryEngine(tree).point_query(point)
    return matches


def containment_query(tree, window: Rect) -> list[tuple[Rect, Any]]:
    """One-off containment query returning ``(rect, value)`` matches."""
    matches, _ = PointQueryEngine(tree).containment_query(window)
    return matches


def count_query(tree, window: Rect) -> int:
    """One-off count of stored rectangles intersecting ``window``."""
    count, _ = PointQueryEngine(tree).count(window)
    return count


def brute_force_point_query(
    data: Sequence[tuple[Rect, Any]], point: Sequence[float]
) -> list[tuple[Rect, Any]]:
    """Reference stabbing query: scan everything (the test oracle)."""
    return [(rect, value) for rect, value in data if rect.contains_point(point)]


def brute_force_containment(
    data: Sequence[tuple[Rect, Any]], window: Rect
) -> list[tuple[Rect, Any]]:
    """Reference containment query: scan everything (the test oracle)."""
    return [
        (rect, value) for rect, value in data if window.contains_rect(rect)
    ]
