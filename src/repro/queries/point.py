"""Point (stabbing), containment and count queries.

Three small relatives of the window query, all running the same
depth-first traversal with the window engine's I/O accounting:

* :meth:`PointQueryEngine.point_query` — all data rectangles containing a
  query point (the stabbing query).  Prunes harder than a degenerate
  window query: a subtree is descended only when its bounding box
  *contains* the point.
* :meth:`PointQueryEngine.containment_query` — all data rectangles lying
  entirely inside a query window.  Pruning still uses intersection (a
  child box need not be contained for its rectangles to be), but
  reporting checks full containment.
* :meth:`PointQueryEngine.count` — window-query cardinality without
  materializing matches; ``stats.reported`` carries the count.

Each returns the same ``(result, QueryStats)`` shape as
:class:`~repro.rtree.query.QueryEngine.query`, and one engine instance
shares a single warm internal-node pool across all three operators.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.geometry.rect import Rect
from repro.queries.base import QueryStats, TraversalEngine

__all__ = [
    "PointQueryEngine",
    "point_query",
    "containment_query",
    "count_query",
    "brute_force_point_query",
    "brute_force_containment",
]


class PointQueryEngine(TraversalEngine):
    """Reusable executor for point / containment / count queries."""

    def point_query(
        self, point: Sequence[float]
    ) -> tuple[list[tuple[Rect, Any]], QueryStats]:
        """All stored rectangles containing ``point`` (stabbing query)."""
        point = tuple(float(c) for c in point)
        if len(point) != self.tree.dim:
            raise ValueError(
                f"{len(point)}-d point against a {self.tree.dim}-d tree"
            )
        return self._run(
            descend=lambda box: box.contains_point(point),
            report=lambda rect: rect.contains_point(point),
        )

    def containment_query(
        self, window: Rect
    ) -> tuple[list[tuple[Rect, Any]], QueryStats]:
        """All stored rectangles lying entirely inside ``window``."""
        if window.dim != self.tree.dim:
            raise ValueError(
                f"{window.dim}-d window against a {self.tree.dim}-d tree"
            )
        return self._run(
            descend=window.intersects,
            report=lambda rect: window.contains_rect(rect),
        )

    def count(self, window: Rect) -> tuple[int, QueryStats]:
        """Number of stored rectangles intersecting ``window``.

        Same traversal as the window query; the count is also available
        as ``stats.reported``.
        """
        if window.dim != self.tree.dim:
            raise ValueError(
                f"{window.dim}-d window against a {self.tree.dim}-d tree"
            )
        _, stats = self._run(
            descend=window.intersects,
            report=window.intersects,
            materialize=False,
        )
        return stats.reported, stats

    def _run(
        self,
        descend: Callable[[Rect], bool],
        report: Callable[[Rect], bool],
        materialize: bool = True,
    ) -> tuple[list[tuple[Rect, Any]], QueryStats]:
        tree = self.tree
        stats = QueryStats(queries=1)
        matches: list[tuple[Rect, Any]] = []
        stack = [tree.root_id]
        while stack:
            node = self._read(stack.pop(), stats)
            if node.is_leaf:
                for rect, oid in node.entries:
                    if report(rect):
                        stats.reported += 1
                        if materialize:
                            matches.append((rect, tree.objects.get(oid)))
            else:
                for rect, child_id in node.entries:
                    if descend(rect):
                        stack.append(child_id)
        self.totals.merge(stats)
        return matches, stats


def point_query(tree, point: Sequence[float]) -> list[tuple[Rect, Any]]:
    """One-off stabbing query returning ``(rect, value)`` matches.

    For measured experiments construct a :class:`PointQueryEngine`
    directly — it exposes I/O statistics and keeps its internal-node
    cache warm across a query workload.
    """
    matches, _ = PointQueryEngine(tree).point_query(point)
    return matches


def containment_query(tree, window: Rect) -> list[tuple[Rect, Any]]:
    """One-off containment query returning ``(rect, value)`` matches."""
    matches, _ = PointQueryEngine(tree).containment_query(window)
    return matches


def count_query(tree, window: Rect) -> int:
    """One-off count of stored rectangles intersecting ``window``."""
    count, _ = PointQueryEngine(tree).count(window)
    return count


def brute_force_point_query(
    data: Sequence[tuple[Rect, Any]], point: Sequence[float]
) -> list[tuple[Rect, Any]]:
    """Reference stabbing query: scan everything (the test oracle)."""
    return [(rect, value) for rect, value in data if rect.contains_point(point)]


def brute_force_containment(
    data: Sequence[tuple[Rect, Any]], window: Rect
) -> list[tuple[Rect, Any]]:
    """Reference containment query: scan everything (the test oracle)."""
    return [
        (rect, value) for rect, value in data if window.contains_rect(rect)
    ]
