"""Best-first k-nearest-neighbor search (Hjaltason & Samet).

The engine keeps a priority queue ordered by MINDIST — the distance from
the query target to the nearest point of an entry's bounding box.  Nodes
and data rectangles share the queue: popping a node expands it (its
entries are pushed with their own distances), popping a data rectangle
*reports* it.  Because a node's MINDIST lower-bounds the distance of
everything inside it, rectangles pop in exactly nondecreasing distance
order, which gives three operations for the price of one traversal:

* :meth:`KNNEngine.nearest` — an incremental iterator producing neighbors
  one at a time (distance browsing); stop whenever you have enough.
* :meth:`KNNEngine.knn` — the batched top-k.
* :func:`knn` — one-shot convenience wrapper.

The traversal is branch-and-bound optimal in the number of nodes touched:
it only ever reads nodes whose MINDIST is below the distance of the last
neighbor consumed.  I/O accounting follows the window engine exactly
(leaf reads counted, internal nodes LRU-cached), so kNN cost is directly
comparable with the paper's window-query figures.

The query target may be a point (any coordinate sequence) or a
:class:`~repro.geometry.rect.Rect` — the engine switches between
point-to-box and box-to-box MINDIST automatically.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from typing import Any, Iterator, NamedTuple, Sequence

from repro.geometry import kernels
from repro.geometry.rect import Rect
from repro.queries.base import QueryStats, TraversalEngine

__all__ = ["Neighbor", "KNNEngine", "knn", "brute_force_knn"]

#: Queue entry tags: expand me (node) vs report me (data rectangle).
_NODE, _DATA = 0, 1


class Neighbor(NamedTuple):
    """One kNN result: Euclidean distance, data rectangle, caller value."""

    distance: float
    rect: Rect
    value: Any


def _dist_sq(rect: Rect, target: Rect | Sequence[float]) -> float:
    """Squared MINDIST from a query target (point or box) to ``rect``."""
    if isinstance(target, Rect):
        return rect.dist_sq_to_rect(target)
    return rect.dist_sq_to_point(target)


class KNNEngine(TraversalEngine):
    """Reusable best-first kNN executor for one tree.

    Construction matches :class:`~repro.rtree.query.QueryEngine`:
    internal nodes are cached across queries (the paper's setup) and
    leaf reads are the reported cost.
    """

    def nearest(self, target: Rect | Sequence[float]) -> Iterator[Neighbor]:
        """Incrementally yield neighbors in nondecreasing distance order.

        The traversal is lazy: nodes are read only when the queue head
        requires expanding them, so consuming the first j neighbors costs
        only the I/O needed to *prove* they are the nearest j.  Statistics
        accumulate into :attr:`totals` as the iterator is consumed; the
        query is counted once, when iteration starts.
        """
        # Validate eagerly, before the lazy generator is first advanced.
        target_dim = target.dim if isinstance(target, Rect) else len(target)
        if target_dim != self.tree.dim:
            raise ValueError(
                f"{target_dim}-d target against a {self.tree.dim}-d tree"
            )
        return self._nearest(target)

    def _nearest(self, target: Rect | Sequence[float]) -> Iterator[Neighbor]:
        self.totals.queries += 1
        # Every popped node's per-row MINDISTs come from one frame kernel
        # call; data rows go on the heap as (frame, row) so the Rect is
        # only materialized if the row is actually reported.
        if isinstance(target, Rect):
            q_lo = kernels.as_coords(target.lo)
            q_hi = kernels.as_coords(target.hi)

            def frame_dists(frame):
                return kernels.frame_dist_sq_to_rect(
                    frame.lo, frame.hi, q_lo, q_hi
                )
        else:
            p = kernels.as_coords(target)

            def frame_dists(frame):
                return kernels.frame_dist_sq_to_point(frame.lo, frame.hi, p)

        # (squared distance, insertion counter, kind, payload); the counter
        # breaks ties so heapq never compares frames or Nodes.
        heap: list[tuple[float, int, int, Any]] = []
        counter = 0
        heap.append((0.0, counter, _NODE, self.tree.root_id))
        while heap:
            dist_sq, _, kind, payload = heapq.heappop(heap)
            if kind == _DATA:
                frame, i = payload
                self.totals.reported += 1
                yield Neighbor(
                    math.sqrt(dist_sq),
                    frame.rect(i),
                    self.tree.objects.get(frame.ptrs[i]),
                )
                continue
            node = self._read(payload, self.totals)
            frame = node.frame()
            if self._recorder is not None:
                # Best-first search prunes at node granularity (entries
                # of a read node all become live candidates); unread
                # nodes are the pruning the plan's per-level node counts
                # show.
                self._recorder.note_matched(payload, len(frame))
            dists = frame_dists(frame)
            if frame.is_leaf:
                for i, d in enumerate(dists):
                    counter += 1
                    heapq.heappush(heap, (d, counter, _DATA, (frame, i)))
            else:
                ptrs = frame.ptrs
                for i, d in enumerate(dists):
                    counter += 1
                    heapq.heappush(heap, (d, counter, _NODE, ptrs[i]))

    def knn(
        self, target: Rect | Sequence[float], k: int
    ) -> tuple[list[Neighbor], QueryStats]:
        """The k nearest neighbors of ``target`` (fewer if the tree is small).

        Returns the neighbors in nondecreasing distance order plus this
        query's statistics; :attr:`totals` accumulate across calls.
        """
        if k < 0:
            raise ValueError("k must be >= 0")
        before = _snapshot(self.totals)
        neighbors: list[Neighbor] = []
        it = self.nearest(target)  # validates the target even when k == 0
        if k > 0:
            for neighbor in it:
                neighbors.append(neighbor)
                if len(neighbors) == k:
                    break
        else:
            self.totals.queries += 1  # count the (empty) query anyway
        return neighbors, _delta(self.totals, before)


def _snapshot(stats: QueryStats) -> QueryStats:
    return dataclasses.replace(stats)


def _delta(after: QueryStats, before: QueryStats) -> QueryStats:
    return QueryStats(
        **{
            f.name: getattr(after, f.name) - getattr(before, f.name)
            for f in dataclasses.fields(QueryStats)
        }
    )


def knn(tree, target: Rect | Sequence[float], k: int) -> list[Neighbor]:
    """One-off kNN returning :class:`Neighbor` tuples.

    For measured experiments construct a :class:`KNNEngine` directly —
    it exposes I/O statistics and keeps its internal-node cache warm
    across a query workload.
    """
    neighbors, _ = KNNEngine(tree).knn(target, k)
    return neighbors


def brute_force_knn(
    data: Sequence[tuple[Rect, Any]],
    target: Rect | Sequence[float],
    k: int,
) -> list[Neighbor]:
    """Reference implementation: score and sort everything.

    The correctness oracle for the kNN tests.  Ties are broken by input
    order, so compare *distances* (not values) against the engine when a
    dataset may contain equidistant rectangles.
    """
    scored = sorted(
        (
            Neighbor(math.sqrt(_dist_sq(rect, target)), rect, value)
            for rect, value in data
        ),
        key=lambda nb: nb.distance,
    )
    return scored[:k]
