"""Shared I/O-accounted traversal plumbing for every query operator.

The window engine established the accounting convention this package
follows: internal nodes are served through an LRU pool (the paper caches
"all internal nodes since they never occupied more than 6MB", footnote
5) while every leaf access hits the simulated disk and is counted
individually.  Reported query cost is therefore the number of *leaf*
blocks read, with internal cache misses tracked separately.

The implementation lives in :mod:`repro.rtree.query` as
:class:`~repro.rtree.query.TraversalEngine`, which both the window
engine and every operator engine here — kNN, spatial join,
point/containment/count — derive from, so all of them count I/O through
the identical code path and their numbers are directly comparable.  The
engines work on any :class:`~repro.rtree.tree.RTree` handle regardless
of how it was built: a PR-tree, a packed Hilbert tree and a TGS tree are
all just block-resident R-trees, queried "exactly as on an R-tree"
(paper Section 2.2).
"""

from repro.rtree.query import QueryStats, TraversalEngine

__all__ = ["TraversalEngine", "QueryStats"]
