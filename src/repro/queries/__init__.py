"""Query operators beyond the paper's window query.

The paper evaluates its trees on one operation — the window query — but
every tree in this reproduction is an ordinary block-resident R-tree
(the PR-tree is queried "exactly as on an R-tree"), so the classic
R-tree query repertoire applies unchanged.  This package supplies it:

* :mod:`repro.queries.knn` — best-first k-nearest-neighbor search with
  an incremental ``nearest()`` iterator (Hjaltason & Samet).
* :mod:`repro.queries.join` — intersection spatial join by synchronized
  dual-tree traversal with leaf-level plane sweep (Brinkhoff et al.).
* :mod:`repro.queries.point` — point (stabbing), containment and count
  queries.

All engines derive from :class:`repro.queries.base.TraversalEngine` and
report I/O with the window engine's convention (leaf reads counted,
internal nodes LRU-cached), so operator costs are directly comparable
with the paper's figures.
"""

from repro.queries.base import TraversalEngine
from repro.queries.knn import KNNEngine, Neighbor, brute_force_knn, knn
from repro.queries.join import (
    JoinStats,
    SpatialJoinEngine,
    brute_force_join,
    spatial_join,
    sweep_order,
    sweep_pairs,
)
from repro.queries.point import (
    PointQueryEngine,
    brute_force_containment,
    brute_force_point_query,
    containment_query,
    count_query,
    point_query,
)

__all__ = [
    "TraversalEngine",
    "KNNEngine",
    "Neighbor",
    "knn",
    "brute_force_knn",
    "JoinStats",
    "SpatialJoinEngine",
    "spatial_join",
    "sweep_pairs",
    "sweep_order",
    "brute_force_join",
    "PointQueryEngine",
    "point_query",
    "containment_query",
    "count_query",
    "brute_force_point_query",
    "brute_force_containment",
]
