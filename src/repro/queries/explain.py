"""Per-query EXPLAIN: plan capture for every operator.

An opt-in :class:`PlanRecorder` threads through
:class:`~repro.rtree.query.TraversalEngine` — the shared ``_read`` path
every operator (window/point-family, kNN, join) counts I/O through —
and attributes each visited node to its tree level (the root is level
0; an internal node at level L registers its children at L+1, and
children are always read after their parent within one query).  The
result is a :class:`QueryPlan`: per-level nodes visited, entries
examined, entries matched (the rest were pruned by the node's MBR
test), physical page reads, plus the query's logical I/O split and a
**pruning efficiency** — the paper's leaf-I/O lower bound
``ceil(T/B)`` (Section 1.1's Θ(N/B) query bound's output term) over
the leaf reads actually paid, so 1.0 means the traversal read only
leaves that were required to report the answer.

Recording is per-engine and explicitly installed/uninstalled by the
server around one request; the disabled path costs one attribute load
and branch per node (measured inside the 2 % envelope of
``benchmarks/test_obs_overhead.py``).  Sharded engines degrade
gracefully: :func:`install` returns None for engines without the
single-tree traversal shape and the request simply carries no plan.

``repro explain`` renders plans as an indented tree;
:meth:`QueryPlan.summary` is the compact one-liner the
:class:`~repro.obs.slowlog.SlowQueryLog` attaches to slow entries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry import kernels

__all__ = [
    "LevelPlan",
    "QueryPlan",
    "JoinPlan",
    "PlanRecorder",
    "install",
    "uninstall",
]


@dataclass(frozen=True)
class LevelPlan:
    """What one traversal did at one tree level (0 = root)."""

    level: int
    nodes: int              #: nodes visited
    entries: int            #: entries examined (all rows of each node)
    matched: int            #: entries the query predicate kept
    physical_reads: int     #: page-cache misses attributed to this level
    leaf: bool

    @property
    def pruned(self) -> int:
        """Entries the node-level predicate eliminated."""
        return max(0, self.entries - self.matched)


@dataclass(frozen=True)
class QueryPlan:
    """One query's captured plan over a single tree."""

    kind: str
    backend: str            #: frame-kernel backend ("numpy" | "python")
    height: int
    fanout: int
    levels: tuple[LevelPlan, ...]
    leaf_reads: int
    internal_reads: int
    internal_visits: int
    reported: int
    physical_reads: int

    @property
    def nodes_visited(self) -> int:
        return sum(l.nodes for l in self.levels)

    @property
    def entries_examined(self) -> int:
        return sum(l.entries for l in self.levels)

    @property
    def entries_pruned(self) -> int:
        return sum(l.pruned for l in self.levels)

    @property
    def leaf_lower_bound(self) -> int:
        """Fewest leaf reads that could report this answer: ceil(T/B)."""
        if self.reported <= 0:
            return 0
        return math.ceil(self.reported / max(1, self.fanout))

    @property
    def pruning_efficiency(self) -> float:
        """Leaf-I/O lower bound over leaf reads paid (1.0 = optimal).

        Both zero (an empty answer found without touching a leaf) is
        optimal by convention.
        """
        if self.leaf_reads <= 0:
            return 1.0
        return self.leaf_lower_bound / self.leaf_reads

    def summary(self) -> str:
        """The compact form slow-query log entries carry."""
        return (
            f"nodes={self.nodes_visited} leaf_ios={self.leaf_reads} "
            f"pruned={self.entries_pruned}/{self.entries_examined} "
            f"eff={self.pruning_efficiency:.2f}"
        )

    def render(self) -> str:
        """The indented plan tree ``repro explain`` prints."""
        lines = [
            f"plan: {self.kind}  backend={self.backend}  "
            f"height={self.height}  fanout={self.fanout}"
        ]
        for lvl in self.levels:
            label = "leaf" if lvl.leaf else ("root" if lvl.level == 0 else "internal")
            lines.append(
                f"{'  ' * (lvl.level + 1)}L{lvl.level} {label:<8} "
                f"nodes={lvl.nodes:<5} entries={lvl.entries:<7} "
                f"matched={lvl.matched:<7} pruned={lvl.pruned:<7} "
                f"physical={lvl.physical_reads}"
            )
        lines.append(
            f"  leaf I/O={self.leaf_reads} (lower bound "
            f"{self.leaf_lower_bound}, pruning efficiency "
            f"{self.pruning_efficiency:.2f})  internal reads="
            f"{self.internal_reads} visits={self.internal_visits}  "
            f"physical={self.physical_reads}  reported={self.reported}"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class JoinPlan:
    """A spatial join's plan: one sub-plan per input tree."""

    kind: str
    left: QueryPlan
    right: QueryPlan
    pairs: int

    @property
    def nodes_visited(self) -> int:
        return self.left.nodes_visited + self.right.nodes_visited

    @property
    def pruning_efficiency(self) -> float:
        return min(
            self.left.pruning_efficiency, self.right.pruning_efficiency
        )

    def summary(self) -> str:
        return (
            f"nodes={self.nodes_visited} pairs={self.pairs} "
            f"eff={self.pruning_efficiency:.2f}"
        )

    def render(self) -> str:
        return "\n".join(
            [
                f"plan: {self.kind}  pairs={self.pairs}",
                "left:",
                self.left.render(),
                "right:",
                self.right.render(),
            ]
        )


class _LevelAcc:
    __slots__ = ("nodes", "entries", "matched", "physical", "leaf")

    def __init__(self) -> None:
        self.nodes = 0
        self.entries = 0
        self.matched = 0
        self.physical = 0
        self.leaf = False


class PlanRecorder:
    """Collects one engine's per-level traversal while installed.

    Level attribution needs no per-node tree metadata: the root is
    seeded at level 0 and every visited internal node registers its
    children one level down before any of them can be read.
    """

    def __init__(self, tree) -> None:
        self.tree = tree
        self._level: dict[int, int] = {tree.root_id: 0}
        self._acc: dict[int, _LevelAcc] = {}

    def on_node(self, block_id: int, node, physical: int) -> None:
        """Called by ``TraversalEngine._read`` after every node access."""
        level = self._level.get(block_id, 0)
        acc = self._acc.get(level)
        if acc is None:
            acc = self._acc[level] = _LevelAcc()
        frame = node.frame()
        n = len(frame)
        acc.nodes += 1
        acc.entries += n
        acc.physical += physical
        if frame.is_leaf:
            acc.leaf = True
        else:
            child_level = level + 1
            ptrs = frame.ptrs
            levels = self._level
            for i in range(n):
                levels[int(ptrs[i])] = child_level

    def note_matched(self, block_id: int, count: int) -> None:
        """Entries of ``block_id`` the operator's predicate kept."""
        acc = self._acc.get(self._level.get(block_id, 0))
        if acc is not None:
            acc.matched += count

    def plan(self, kind: str, stats, reported: int | None = None) -> QueryPlan:
        """Freeze the recording into a :class:`QueryPlan`.

        ``stats`` is the operator's :class:`~repro.rtree.query.QueryStats`
        for the recorded query (or accumulated queries); ``reported``
        overrides its output count when the operator tracks output
        elsewhere (the join's pair count lives on ``JoinStats``).
        """
        levels = tuple(
            LevelPlan(
                level=level,
                nodes=acc.nodes,
                entries=acc.entries,
                matched=min(acc.matched, acc.entries),
                physical_reads=acc.physical,
                leaf=acc.leaf,
            )
            for level, acc in sorted(self._acc.items())
        )
        return QueryPlan(
            kind=kind,
            backend=kernels.BACKEND,
            height=self.tree.height,
            fanout=self.tree.fanout,
            levels=levels,
            leaf_reads=stats.leaf_reads,
            internal_reads=stats.internal_reads,
            internal_visits=stats.internal_visits,
            reported=stats.reported if reported is None else reported,
            physical_reads=sum(l.physical_reads for l in levels),
        )


def install(engine):
    """Arm plan capture on ``engine`` for the next executed query.

    Returns the recorder handle to pass to :func:`uninstall` — a
    single :class:`PlanRecorder` for ``TraversalEngine`` subclasses, a
    ``(left, right)`` recorder pair for the spatial join, or None for
    engines without the single-tree traversal shape (the sharded
    facades), which simply produce no plan.
    """
    left = getattr(engine, "_left", None)
    right = getattr(engine, "_right", None)
    if left is not None and right is not None:
        pair = (PlanRecorder(left.tree), PlanRecorder(right.tree))
        left._recorder, right._recorder = pair
        return pair
    if hasattr(engine, "_read") and hasattr(engine, "tree"):
        recorder = PlanRecorder(engine.tree)
        engine._recorder = recorder
        return recorder
    return None


def uninstall(engine, recorder, kind: str, stats):
    """Disarm capture and build the plan for the executed request.

    ``stats`` is whatever the operator returned —
    :class:`~repro.rtree.query.QueryStats` or a join's ``JoinStats``.
    Returns a :class:`QueryPlan`, :class:`JoinPlan`, or None when
    ``recorder`` is None.
    """
    if recorder is None:
        return None
    if isinstance(recorder, tuple):
        left_rec, right_rec = recorder
        engine._left._recorder = None
        engine._right._recorder = None
        pairs = getattr(stats, "pairs", 0)
        # Each side's output term is the join's pair count: the leaf-I/O
        # lower bound of reporting T pairs is ceil(T/B) per tree.
        return JoinPlan(
            kind=kind,
            left=left_rec.plan("join:left", stats.left, reported=pairs),
            right=right_rec.plan("join:right", stats.right, reported=pairs),
            pairs=pairs,
        )
    engine._recorder = None
    return recorder.plan(kind, stats)
