"""The pseudo-PR-tree (paper Section 2.1).

Definition, for a set S of N rectangles in the plane (generalized to d
dimensions per Section 2.3):

* if S contains at most B rectangles, the tree is a single leaf;
* otherwise the root node ν has 2d + 2 children: 2d **priority leaves**
  and two recursive pseudo-PR-trees.  Priority leaf ``ν_p^{xmin}`` holds
  the B rectangles with minimal xmin; from the remainder, ``ν_p^{ymin}``
  takes the B with minimal ymin; then ``ν_p^{xmax}`` the B with *maximal*
  xmax; then ``ν_p^{ymax}`` the B with maximal ymax (in d dimensions the
  2d directions cycle min-axes first, then max-axes, matching the corner
  mapping's axis order).  The remaining rectangles are split into two
  halves S_< and S_> by the median of one corner coordinate, round-robin
  through the 2d coordinates by depth, "as if we were building a
  four-dimensional kd-tree on S*".

The priority leaves hold the "extreme" rectangles — leftmost left edges,
bottommost bottom edges, rightmost right edges, topmost top edges — which
is what makes the query bound work (Lemma 2): a visited node whose
priority leaves are *not* fully reported pins the query's boundary
hyperplanes to the node's kd-cell, and a kd-tree argument bounds how many
cells a (2d−2)-dimensional plane can cut.

The class below is a faithful in-memory construction.  It is both a
queryable index in its own right (used by the Lemma 2 tests) and the
building block of the real PR-tree: :meth:`PseudoPRTree.leaves` yields
exactly the leaf set (priority and normal) that becomes one level of the
PR-tree.

To reach the near-100 % space utilization the paper reports, the split
index is snapped to a multiple of B ("we can make slightly unbalanced
divisions, so that we have a multiple of B points on one side of each
dividing hyperplane") — every leaf except at most one per subtree is
full.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.geometry.rect import Rect, mbr_of

#: A working item: (rectangle, opaque pointer).
Item = tuple[Rect, int]


class PseudoLeaf:
    """A leaf of the pseudo-PR-tree: at most B items.

    ``kind`` records provenance: ``"priority:<k>"`` for the priority leaf
    in corner-axis direction k, ``"normal"`` for a recursion-bottom leaf.
    """

    __slots__ = ("items", "kind", "_mbr")

    def __init__(self, items: list[Item], kind: str):
        if not items:
            raise ValueError("pseudo-PR-tree leaves are never empty")
        self.items = items
        self.kind = kind
        self._mbr = mbr_of(rect for rect, _ in items)

    @property
    def mbr(self) -> Rect:
        """Minimal bounding box of the leaf's rectangles."""
        return self._mbr

    @property
    def is_priority(self) -> bool:
        """True for priority leaves."""
        return self.kind.startswith("priority")

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return f"PseudoLeaf({self.kind}, {len(self.items)} items)"


class PseudoNode:
    """An internal pseudo-PR-tree node: 2d priority leaves + ≤2 subtrees.

    ``split_axis`` is the corner-coordinate axis (0..2d-1) used to divide
    the remainder, recorded for the structural tests of the round-robin
    discipline.
    """

    __slots__ = ("priority_leaves", "subtrees", "split_axis", "_mbr")

    def __init__(
        self,
        priority_leaves: list[PseudoLeaf],
        subtrees: list["PseudoNode | PseudoLeaf"],
        split_axis: int,
    ):
        self.priority_leaves = priority_leaves
        self.subtrees = subtrees
        self.split_axis = split_axis
        boxes = [leaf.mbr for leaf in priority_leaves]
        boxes.extend(child.mbr for child in subtrees)
        self._mbr = mbr_of(boxes)

    @property
    def mbr(self) -> Rect:
        """Minimal bounding box of everything below this node."""
        return self._mbr

    @property
    def children(self) -> list["PseudoNode | PseudoLeaf"]:
        """All children: priority leaves first, then the subtrees."""
        return [*self.priority_leaves, *self.subtrees]

    def __repr__(self) -> str:
        return (
            f"PseudoNode(axis={self.split_axis}, "
            f"{len(self.priority_leaves)}p+{len(self.subtrees)}s)"
        )


def _snap_to_multiple(value: int, base: int, lo: int, hi: int) -> int:
    """Nearest multiple of ``base`` to ``value`` within [lo, hi]."""
    snapped = max(base, round(value / base) * base)
    return max(lo, min(hi, snapped))


class PseudoPRTree:
    """A pseudo-PR-tree over items, built per the paper's definition.

    Parameters
    ----------
    items:
        ``(Rect, pointer)`` pairs (pointers are opaque to the structure).
    capacity:
        B — the priority-leaf and leaf capacity.
    dim:
        Spatial dimension d (corner space has 2d axes).
    snap_splits:
        Snap kd split positions to multiples of B for near-full leaves
        (the paper's space-utilization refinement).  Disable to get the
        textbook exact-median structure.
    priority_size:
        Capacity of the priority leaves only; defaults to ``capacity``.
        Agarwal et al. [2] "used priority leaves of size one rather than
        B" — the ablation benchmark explores this knob.
    """

    def __init__(
        self,
        items: Sequence[Item],
        capacity: int,
        dim: int | None = None,
        snap_splits: bool = True,
        priority_size: int | None = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        items = list(items)
        if not items:
            raise ValueError("cannot build a pseudo-PR-tree on no items")
        self.capacity = capacity
        self.priority_size = priority_size if priority_size is not None else capacity
        if self.priority_size < 1:
            raise ValueError("priority_size must be >= 1")
        self.dim = dim if dim is not None else items[0][0].dim
        self.snap_splits = snap_splits
        self.size = len(items)
        self.root = self._build(items, depth=0)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _extract_extreme(
        self, items: list[Item], axis: int
    ) -> tuple[list[Item], list[Item]]:
        """Remove and return the B most extreme items in direction ``axis``.

        Axes 0..d-1 are min-coordinates (most extreme = smallest), axes
        d..2d-1 are max-coordinates (most extreme = largest).
        """
        b = self.priority_size
        reverse = axis >= self.dim
        items.sort(key=lambda item: (item[0].corner_coord(axis), item[1]), reverse=reverse)
        return items[:b], items[b:]

    def _build(self, items: list[Item], depth: int) -> PseudoNode | PseudoLeaf:
        b = self.capacity
        if len(items) <= b:
            return PseudoLeaf(items, kind="normal")

        axes = 2 * self.dim
        priority_leaves: list[PseudoLeaf] = []
        remaining = items
        for axis in range(axes):
            if not remaining:
                break
            extreme, remaining = self._extract_extreme(remaining, axis)
            priority_leaves.append(PseudoLeaf(extreme, kind=f"priority:{axis}"))

        split_axis = depth % axes
        subtrees: list[PseudoNode | PseudoLeaf] = []
        n_rest = len(remaining)
        if n_rest:
            if n_rest <= b:
                subtrees.append(PseudoLeaf(remaining, kind="normal"))
            else:
                remaining.sort(
                    key=lambda item: (item[0].corner_coord(split_axis), item[1])
                )
                half = n_rest // 2
                if self.snap_splits:
                    half = _snap_to_multiple(half, b, 1, n_rest - 1)
                # The median split: each side gets at most half the
                # remainder (plus snapping slack), preserving the kd-tree
                # depth argument of Lemma 2.
                subtrees.append(self._build(remaining[:half], depth + 1))
                subtrees.append(self._build(remaining[half:], depth + 1))
        return PseudoNode(priority_leaves, subtrees, split_axis)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def leaves(self) -> Iterator[PseudoLeaf]:
        """All leaves (priority and normal) — one level of a PR-tree."""
        stack: list[PseudoNode | PseudoLeaf] = [self.root]
        while stack:
            node = stack.pop()
            if isinstance(node, PseudoLeaf):
                yield node
            else:
                stack.extend(node.children)

    def nodes(self) -> Iterator[PseudoNode]:
        """All internal (kd) nodes."""
        stack: list[PseudoNode | PseudoLeaf] = [self.root]
        while stack:
            node = stack.pop()
            if isinstance(node, PseudoNode):
                yield node
                stack.extend(node.subtrees)

    # ------------------------------------------------------------------
    # Querying (the Lemma 2 object of study)
    # ------------------------------------------------------------------

    def query(self, window: Rect) -> tuple[list[Item], "PseudoQueryStats"]:
        """Window query, visiting every child whose box intersects.

        Returns matches and the visit counts Lemma 2 bounds: on N items
        with capacity B, ``leaves_visited`` is O(sqrt(N/B) + T/B) in 2D.
        """
        stats = PseudoQueryStats()
        matches: list[Item] = []
        stack: list[PseudoNode | PseudoLeaf] = []
        if self.root.mbr.intersects(window):
            stack.append(self.root)
        while stack:
            node = stack.pop()
            if isinstance(node, PseudoLeaf):
                stats.leaves_visited += 1
                for rect, pointer in node.items:
                    if rect.intersects(window):
                        matches.append((rect, pointer))
                        stats.reported += 1
            else:
                stats.nodes_visited += 1
                for child in node.children:
                    if child.mbr.intersects(window):
                        stack.append(child)
        return matches, stats

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"PseudoPRTree(size={self.size}, B={self.capacity}, d={self.dim})"


class PseudoQueryStats:
    """Visit counts for one pseudo-PR-tree query."""

    __slots__ = ("nodes_visited", "leaves_visited", "reported")

    def __init__(self) -> None:
        self.nodes_visited = 0
        self.leaves_visited = 0
        self.reported = 0

    @property
    def total_visited(self) -> int:
        """kd nodes plus leaves touched."""
        return self.nodes_visited + self.leaves_visited

    def __repr__(self) -> str:
        return (
            f"PseudoQueryStats(nodes={self.nodes_visited}, "
            f"leaves={self.leaves_visited}, reported={self.reported})"
        )
