"""The Priority R-tree — the paper's contribution.

* :mod:`repro.prtree.pseudo` — the **pseudo-PR-tree** (Section 2.1): a
  kd-tree over the 2d-dimensional corner mapping of the input rectangles
  in which every internal node carries 2d *priority leaves* holding the B
  most extreme rectangles in each axis direction.  It answers window
  queries in O((N/B)^(1-1/d) + T/B) I/Os but is not a real R-tree (leaves
  sit at different levels, degree is 2d+2).
* :mod:`repro.prtree.prtree` — the **PR-tree** (Sections 2.2–2.3): a real
  R-tree (fan-out Θ(B), all leaves level) obtained by building
  pseudo-PR-trees bottom-up, level by level, keeping only their leaves.
* :mod:`repro.prtree.gridbuild` — the I/O-efficient bulk-loading
  algorithm (Section 2.1, "Efficient construction"): grid-partitioned
  kd-node construction, streaming priority-leaf filtering, and sorted-list
  distribution, in O((N/B) log_{M/B} (N/B)) I/Os.
* :mod:`repro.prtree.logmethod` — the dynamic PR-tree via the external
  logarithmic method (Section 1.2): optimal queries preserved under
  insertions and deletions.
"""

from repro.prtree.pseudo import PseudoPRTree, PseudoNode, PseudoLeaf
from repro.prtree.prtree import build_prtree, prtree_query_bound
from repro.prtree.gridbuild import build_prtree_external
from repro.prtree.logmethod import LogMethodPRTree

__all__ = [
    "PseudoPRTree",
    "PseudoNode",
    "PseudoLeaf",
    "build_prtree",
    "prtree_query_bound",
    "build_prtree_external",
    "LogMethodPRTree",
]
