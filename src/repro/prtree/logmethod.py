"""Dynamic PR-tree via the external logarithmic method (paper Section 1.2).

"Alternatively, the external logarithmic method [4, 20] can be used to
develop a structure that supports insertions and deletions in
O(log_B (N/M) + (1/B)(log_{M/B} (N/B))(log2 (N/M))) and O(log_B (N/M))
I/Os amortized, respectively, while maintaining the optimal query
performance."

The classic construction: maintain O(log N) *components*, component i
being either empty or a static (bulk-loaded) PR-tree of at most ``base^i``
rectangles.  An insertion finds the smallest level whose cumulative
capacity absorbs all smaller components plus the new record and rebuilds
that single component from scratch; since bulk-loading is sort-cost, each
record is rebuilt O(log N) times, giving the amortized insertion bound.
Deletions mark a tombstone (weak delete); once half the stored records are
tombstones the whole structure is rebuilt, which keeps both the space and
the query bound: a window query runs on every live component — O(log N)
of them, each worst-case optimal — and filters tombstones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.rtree.query import QueryEngine, QueryStats
from repro.rtree.tree import RTree


@dataclass
class _Component:
    """One static PR-tree plus the records it was built from."""

    tree: RTree
    records: list[tuple[Rect, int]]  # (rect, sequence id)
    engine: QueryEngine


class LogMethodPRTree:
    """A dynamic spatial index with PR-tree query optimality.

    Parameters
    ----------
    store:
        Block store for all component trees.
    fanout:
        B — node capacity of every component PR-tree.
    dim:
        Spatial dimension.
    base:
        Component growth factor (2 is the textbook choice; larger bases
        trade fewer components against more frequent rebuilds).

    Examples
    --------
    >>> from repro.iomodel import BlockStore
    >>> index = LogMethodPRTree(BlockStore(), fanout=8)
    >>> key = index.insert(Rect((0, 0), (1, 1)), "a")
    >>> [value for _, value in index.query(Rect((0, 0), (2, 2)))]
    ['a']
    >>> index.delete(Rect((0, 0), (1, 1)), "a")
    True
    >>> index.query(Rect((0, 0), (2, 2)))
    []
    """

    def __init__(
        self, store: BlockStore, fanout: int, dim: int = 2, base: int = 2
    ) -> None:
        if base < 2:
            raise ValueError("base must be >= 2")
        self.store = store
        self.fanout = fanout
        self.dim = dim
        self.base = base
        self._components: dict[int, _Component] = {}
        #: sequence id -> (rect, value); removed on delete.
        self._live: dict[int, tuple[Rect, Any]] = {}
        self._dead: set[int] = set()
        self._next_seq = 0
        self.rebuilds = 0

    # ------------------------------------------------------------------
    # Sizing helpers
    # ------------------------------------------------------------------

    def _capacity(self, level: int) -> int:
        """Maximum records of component ``level``."""
        return self.base**level

    @property
    def live_count(self) -> int:
        """Records inserted and not deleted."""
        return len(self._live)

    @property
    def stored_count(self) -> int:
        """Records physically present in components (incl. tombstoned)."""
        return sum(len(c.records) for c in self._components.values())

    def __len__(self) -> int:
        return self.live_count

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, rect: Rect, value: Any) -> int:
        """Insert a rectangle; returns its sequence key."""
        if rect.dim != self.dim:
            raise ValueError(f"rect dim {rect.dim} != index dim {self.dim}")
        seq = self._next_seq
        self._next_seq += 1
        self._live[seq] = (rect, value)

        # Gather components 0..j whose records, plus the new one, fit in
        # level j; rebuild them as a single component at level j.
        pending: list[tuple[Rect, int]] = [(rect, seq)]
        level = 0
        while True:
            component = self._components.get(level)
            extra = len(component.records) if component else 0
            if len(pending) + extra <= self._capacity(level):
                if component:
                    pending.extend(component.records)
                    del self._components[level]
                break
            if component:
                pending.extend(component.records)
                del self._components[level]
            level += 1
        self._build_component(level, pending)
        return seq

    def delete(self, rect: Rect, value: Any) -> bool:
        """Weak-delete one record matching ``(rect, value)``.

        Returns True when found.  Triggers a global rebuild once
        tombstones reach half of the stored records.
        """
        target = None
        for seq, (stored_rect, stored_value) in self._live.items():
            if stored_rect == rect and stored_value == value:
                target = seq
                break
        if target is None:
            return False
        del self._live[target]
        self._dead.add(target)
        if self._dead and self._dead_fraction() >= 0.5:
            self._global_rebuild()
        return True

    def _dead_fraction(self) -> float:
        stored = self.stored_count
        return len(self._dead) / stored if stored else 0.0

    def _build_component(self, level: int, records: list[tuple[Rect, int]]) -> None:
        """(Re)build one component as a static PR-tree."""
        # Drop tombstoned records for free while rebuilding anyway — and
        # retire their tombstones, since the records no longer exist
        # anywhere (keeps the dead-fraction accounting exact).
        dropped = {seq for _, seq in records if seq in self._dead}
        if dropped:
            self._dead -= dropped
            records = [(r, seq) for r, seq in records if seq not in dropped]
        if not records:
            return
        tree = build_prtree(
            self.store, [(r, seq) for r, seq in records], self.fanout
        )
        self._components[level] = _Component(
            tree=tree, records=records, engine=QueryEngine(tree)
        )
        self.rebuilds += 1

    def _global_rebuild(self) -> None:
        """Rebuild everything from the live set; clears all tombstones."""
        records = [(rect, seq) for seq, (rect, _) in self._live.items()]
        self._components.clear()
        self._dead.clear()
        if not records:
            return
        level = 0
        while self._capacity(level) < len(records):
            level += 1
        self._build_component(level, records)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, window: Rect) -> list[tuple[Rect, Any]]:
        """Window query across all components, tombstones filtered."""
        matches, _ = self.query_with_stats(window)
        return matches

    def query_with_stats(self, window: Rect) -> tuple[list[tuple[Rect, Any]], QueryStats]:
        """Window query returning summed per-component I/O statistics."""
        totals = QueryStats(queries=1)
        matches: list[tuple[Rect, Any]] = []
        for component in self._components.values():
            found, stats = component.engine.query(window)
            totals.leaf_reads += stats.leaf_reads
            totals.internal_reads += stats.internal_reads
            totals.internal_visits += stats.internal_visits
            for rect, seq in found:
                if seq in self._live:
                    matches.append((rect, self._live[seq][1]))
                    totals.reported += 1
        return matches, totals

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def components(self) -> Iterator[tuple[int, int]]:
        """Yield ``(level, record_count)`` for every live component."""
        for level in sorted(self._components):
            yield level, len(self._components[level].records)

    def check_invariants(self) -> None:
        """Assert the logarithmic-method size discipline."""
        for level, component in self._components.items():
            if not component.records:
                raise AssertionError(f"empty component at level {level}")
            if len(component.records) > self._capacity(level):
                raise AssertionError(
                    f"component {level} holds {len(component.records)} "
                    f"records, capacity {self._capacity(level)}"
                )
        if self.stored_count:
            if len(self._dead) / self.stored_count > 0.5:
                raise AssertionError("tombstones exceed half the stored records")

    def __repr__(self) -> str:
        comps = ", ".join(f"{lvl}:{cnt}" for lvl, cnt in self.components())
        return f"LogMethodPRTree(live={self.live_count}, components=[{comps}])"
