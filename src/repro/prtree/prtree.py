"""The PR-tree: a real R-tree from pseudo-PR-trees (paper Section 2.2).

"The PR-tree is built in stages bottom-up: In stage 0 we construct the
leaves V_0 of the tree from the set S_0 = S of N input rectangles; in
stage i ≥ 1 we construct the nodes V_i on level i of the tree from a set
S_i of O(N/B^i) rectangles, consisting of the minimal bounding boxes of
all nodes in V_{i-1}.  Stage i consists of constructing a pseudo-PR-tree
T_{S_i} on S_i; V_i then simply consists of the (priority as well as
normal) leaves of T_{S_i}; the internal nodes are discarded.  The
bottom-up construction ends when the set S_i is small enough so that the
rectangles in S_i and the pointers to the corresponding subtrees fit into
one block, which is then the root of the PR-tree."

The result has all leaves on one level and fan-out Θ(B), is queried by the
standard engine, and inherits the pseudo-PR-tree's query bound
(Theorem 1): O((N/B)^(1-1/d) + T/B) I/Os per window query.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.geometry.rect import Rect, mbr_of
from repro.iomodel.blockstore import BlockStore
from repro.prtree.pseudo import Item, PseudoPRTree
from repro.rtree.node import Node
from repro.rtree.tree import RTree


def build_prtree(
    store: BlockStore,
    data: Sequence[tuple[Rect, Any]],
    fanout: int,
    snap_splits: bool = True,
    priority_size: int | None = None,
) -> RTree:
    """Bulk-load a PR-tree (in-memory construction).

    Parameters
    ----------
    store:
        Block store receiving one block per node.
    data:
        ``(Rect, value)`` pairs to index.
    fanout:
        B — node capacity (and pseudo-tree leaf/priority-leaf capacity).
    snap_splits:
        Snap kd splits to multiples of B for near-full leaves (paper's
        space-utilization refinement); the ablation benches toggle this.
    priority_size:
        Override the priority-leaf capacity (defaults to ``fanout``).
        Setting it to 1 recovers the structure of Agarwal et al. [2],
        which the ablation benchmark compares against.

    Footnote 3 of the paper notes the leaf and internal fan-outs may
    differ by a constant; this implementation uses the same B for both,
    which the paper says "does not matter" for the analysis.
    """
    dim = data[0][0].dim if data else 2
    tree = RTree(store, root_id=-1, dim=dim, fanout=fanout, height=1, size=len(data))
    items: list[Item] = [(rect, tree.register_object(value)) for rect, value in data]
    if not items:
        tree.root_id = store.allocate(Node(is_leaf=True))
        return tree

    # Stage 0 packs data rectangles into leaves; stages i > 0 pack the
    # previous level's (mbr, block_id) entries into internal nodes.
    level_items = items
    is_leaf = True
    height = 1
    while len(level_items) > fanout:
        pseudo = PseudoPRTree(
            level_items,
            capacity=fanout,
            dim=dim,
            snap_splits=snap_splits,
            priority_size=priority_size,
        )
        next_level: list[Item] = []
        for leaf in pseudo.leaves():
            block_id = store.allocate(Node(is_leaf, list(leaf.items)))
            next_level.append((leaf.mbr, block_id))
        level_items = next_level
        is_leaf = False
        height += 1

    tree.root_id = store.allocate(Node(is_leaf, list(level_items)))
    tree.height = height
    return tree


def prtree_query_bound(
    n: int, fanout: int, reported: int, dim: int = 2, constant: float = 6.0
) -> float:
    """The Theorem 2 bound: ``c·((N/B)^(1-1/d) + T/B)`` leaf visits.

    Used by tests and the Theorem-3 benchmark to assert the PR-tree's
    measured query cost stays within a constant of optimal while the
    heuristic R-trees blow up to Θ(N/B).  The default constant absorbs
    the 2d priority-leaf factor and the kd-tree constants of Lemma 2.
    """
    leaves = max(1.0, n / fanout)
    return constant * (leaves ** (1.0 - 1.0 / dim) + reported / fanout + 1.0)


def stage_sets(
    data: Sequence[tuple[Rect, Any]], fanout: int, dim: int = 2
) -> list[int]:
    """Sizes |S_i| of the bottom-up stages for a dataset of this size.

    Diagnostic helper mirroring the proof of Theorem 1: |S_i| shrinks by
    a factor Θ(B) per stage, which is why construction totals
    O((N/B) log_{M/B} (N/B)) I/Os.
    """
    sizes = []
    n = len(data)
    while n > fanout:
        sizes.append(n)
        n = math.ceil(n / fanout)
    sizes.append(n)
    return sizes
