"""I/O-efficient external PR-tree bulk loading (paper Section 2.1).

The paper's efficient construction algorithm pre-sorts the corner-mapped
points 2d ways, then builds the pseudo-PR-tree top-down: a z^(2d) grid of
cell counts (z = Θ(M^(1/2d))) lets it place Θ(log M) kd levels per scan;
priority leaves are filled by streaming every point through the partial
kd-tree with replacement ("filtering"); finally the sorted lists are
distributed to the recursive subproblems.  Total:
O((N/B) log_{M/B} (N/B)) I/Os.

This implementation keeps the same skeleton — 2d pre-sorted streams,
streamed priority-leaf extraction, exact-median distribution, in-memory
construction below M — with one simplification: it places *one* kd level
per distribution pass instead of batching Θ(log M) levels through the
in-memory grid.  Costs are therefore

    sort(N) + O((N/B) · log2 (N/M))   instead of   sort(N) + O((N/B) · log_M/B (N/B)),

a log factor more on the above-memory levels.  The structure produced is
a bona-fide pseudo-PR-tree per stage (priority leaves exactly, median
splits exactly — the split key is found *during* the distribution scan by
counting, so no grid-granularity slack is introduced), and the measured
bulk-loading cost keeps the paper's ordering H < PR < TGS (Figure 9).
The substitution is recorded in DESIGN.md §5 and EXPERIMENTS.md.

Two properties worth noting:

* Priority-leaf extraction reads only the first O(1 + B/B_blk) blocks of
  each sorted stream (max-direction streams are sorted descending so
  "most extreme first" holds for all 2d of them) — the same trick that
  makes the paper's filtering cheap.
* Like the paper's in-memory tail ("once the number of points in a
  recursive call gets smaller than M, we can simply construct the rest of
  the tree in internal memory"), subproblems of at most M records are
  loaded and finished with the in-memory :class:`PseudoPRTree`, with
  splits snapped to multiples of B for near-100 % utilization.
"""

from __future__ import annotations

from typing import Any

from repro.bulk.base import BuildStats, timed
from repro.external.memory import MemoryModel
from repro.external.sort import external_sort
from repro.external.stream import BlockStream, StreamWriter
from repro.geometry.rect import Rect, mbr_of
from repro.iomodel.blockstore import BlockStore
from repro.prtree.pseudo import Item, PseudoPRTree
from repro.rtree.node import Node
from repro.rtree.tree import RTree


def _axis_key(axis: int, dim: int):
    """Total order putting the most extreme item of ``axis`` first.

    Min axes ascend; max axes descend (negated coordinate).  The object id
    breaks ties so all 2d orders are total.
    """
    if axis < dim:
        return lambda item: (item[0].corner_coord(axis), item[1])
    return lambda item: (-item[0].corner_coord(axis), item[1])


def _extract_priority(
    streams: list[BlockStream], capacity: int
) -> tuple[list[list[Item]], set[int]]:
    """Streamed priority-leaf extraction.

    Reads each sorted stream from the front, skipping items already
    claimed by an earlier direction, until B items are collected — the
    sequential definition of the paper ("the second ν_p^ymin contains the
    B rectangles *among the remaining* ...").  Returns the per-direction
    item lists (possibly fewer than 2d non-empty) and the claimed ids.
    """
    claimed: set[int] = set()
    leaves: list[list[Item]] = []
    total = len(streams[0])
    for stream in streams:
        if len(claimed) >= total:
            break
        take: list[Item] = []
        for item in stream:
            if item[1] in claimed:
                continue
            take.append(item)
            claimed.add(item[1])
            if len(take) == capacity:
                break
        if take:
            leaves.append(take)
    return leaves, claimed


def _distribute(
    streams: list[BlockStream],
    skip: set[int],
    split_axis: int,
    left_count: int,
    dim: int,
) -> tuple[list[BlockStream], list[BlockStream]]:
    """Median distribution: first ``left_count`` survivors go left.

    The split-axis stream is scanned first; the boundary *key* observed at
    position ``left_count`` then routes the remaining 2d−1 streams by
    comparison, so the division is an exact rank split with O(1) memory —
    the role the paper's grid refinement plays.  Consumes the inputs.
    """
    store = streams[0].store
    block_records = streams[0].block_records
    key = _axis_key(split_axis, dim)

    left_streams: list[BlockStream | None] = [None] * len(streams)
    right_streams: list[BlockStream | None] = [None] * len(streams)

    # Pass 1: the split axis itself, by counting.
    left_writer = StreamWriter(store, block_records)
    right_writer = StreamWriter(store, block_records)
    threshold = None
    seen = 0
    for item in streams[split_axis]:
        if item[1] in skip:
            continue
        seen += 1
        if seen <= left_count:
            left_writer.append(item)
            if seen == left_count:
                threshold = key(item)
        else:
            right_writer.append(item)
    streams[split_axis].free()
    left_streams[split_axis] = left_writer.finish()
    right_streams[split_axis] = right_writer.finish()

    # Pass 2: every other ordering, by key comparison against the boundary.
    for axis, stream in enumerate(streams):
        if axis == split_axis:
            continue
        left_writer = StreamWriter(store, block_records)
        right_writer = StreamWriter(store, block_records)
        for item in stream:
            if item[1] in skip:
                continue
            if key(item) <= threshold:
                left_writer.append(item)
            else:
                right_writer.append(item)
        stream.free()
        left_streams[axis] = left_writer.finish()
        right_streams[axis] = right_writer.finish()
    return left_streams, right_streams  # type: ignore[return-value]


def _build_pseudo_external(
    store: BlockStore,
    streams: list[BlockStream],
    capacity: int,
    memory: MemoryModel,
    dim: int,
    depth: int,
    is_leaf: bool,
    level_writer: StreamWriter,
    snap_splits: bool,
) -> None:
    """Emit the leaves of a pseudo-PR-tree on the streamed items.

    Every leaf (priority or normal) is materialized as one R-tree node
    block at the current PR level and appended to ``level_writer`` as an
    ``(mbr, block_id)`` record.
    """
    n = len(streams[0])
    if n == 0:
        for stream in streams:
            stream.free()
        return

    if memory.fits_in_memory(n):
        items = streams[0].read_all()
        for stream in streams:
            stream.free()
        pseudo = PseudoPRTree(
            items, capacity=capacity, dim=dim, snap_splits=snap_splits
        )
        for leaf in pseudo.leaves():
            block_id = store.allocate(Node(is_leaf, list(leaf.items)))
            level_writer.append((leaf.mbr, block_id))
        return

    priority, claimed = _extract_priority(streams, capacity)
    for take in priority:
        block_id = store.allocate(Node(is_leaf, list(take)))
        level_writer.append((mbr_of(r for r, _ in take), block_id))

    remaining = n - len(claimed)
    if remaining == 0:
        for stream in streams:
            stream.free()
        return

    split_axis = depth % (2 * dim)
    half = remaining // 2
    if snap_splits:
        half = max(capacity, round(half / capacity) * capacity)
        half = min(half, remaining - 1)
    half = max(1, half)
    left, right = _distribute(streams, claimed, split_axis, half, dim)
    _build_pseudo_external(
        store, left, capacity, memory, dim, depth + 1, is_leaf, level_writer, snap_splits
    )
    _build_pseudo_external(
        store, right, capacity, memory, dim, depth + 1, is_leaf, level_writer, snap_splits
    )


def build_prtree_external(
    store: BlockStore,
    input_stream: BlockStream,
    fanout: int,
    memory: MemoryModel,
    snap_splits: bool = True,
) -> tuple[RTree, BuildStats]:
    """External PR-tree bulk load with I/O accounting.

    The input stream holds ``(Rect, value)`` records.  Each bottom-up
    stage (Section 2.2) sorts the stage set 2d ways and runs the external
    pseudo-PR-tree construction; since |S_i| shrinks by Θ(B) per stage the
    first stage dominates the cost, exactly as in the proof of Theorem 1.
    """
    before = store.counters.snapshot()

    def run() -> RTree:
        n = len(input_stream)
        dim: int | None = None
        tree = RTree(store, root_id=-1, dim=2, fanout=fanout, height=1, size=n)
        writer = StreamWriter(store, input_stream.block_records)
        for rect, value in input_stream:
            if dim is None:
                dim = rect.dim
                tree.dim = dim
            writer.append((rect, tree.register_object(value)))
        level = writer.finish()
        if n == 0:
            level.free()
            tree.root_id = store.allocate(Node(is_leaf=True))
            return tree
        assert dim is not None

        is_leaf = True
        height = 1
        while len(level) > fanout:
            streams = [
                external_sort(level, key=_axis_key(axis, dim), memory=memory)
                for axis in range(2 * dim)
            ]
            level.free()
            level_writer = StreamWriter(store, input_stream.block_records)
            _build_pseudo_external(
                store,
                streams,
                fanout,
                memory,
                dim,
                depth=0,
                is_leaf=is_leaf,
                level_writer=level_writer,
                snap_splits=snap_splits,
            )
            level = level_writer.finish()
            is_leaf = False
            height += 1

        tree.root_id = store.allocate(Node(is_leaf, level.read_all()))
        level.free()
        tree.height = height
        return tree

    tree, seconds = timed(run)
    io = store.counters.snapshot() - before
    return tree, BuildStats(io=io, cpu_seconds=seconds, levels=tree.height)
