"""Streaming latency statistics for the serving layer.

Serving systems are judged on *tail* latency — the SIGMOD 2014 contest
analyses score sustained throughput and p99, not means — so the async
service needs percentiles it can maintain in O(1) per observation
without storing every sample.  :class:`LatencyHistogram` is a
fixed-bucket geometric histogram (stdlib only): bucket boundaries grow
by a constant factor (1.2, i.e. 120 buckets from a microsecond to ~45
minutes), so any percentile estimate is off by at most half a bucket's
relative width (~9%) — plenty for latency reporting, bounded memory
forever.

:class:`ServiceStats` aggregates one histogram per request kind plus a
service-wide one, along with the queue/admission counters the async
front end maintains: submitted/completed/rejected per lane, batches
executed, live and high-water queue depth.  The same vocabulary serves
the synchronous path: ``serve-bench`` feeds each
:class:`~repro.server.server.BatchReport`'s per-request latencies
through :meth:`ServiceStats.observe_batch`, so sync and async tables
report identical percentile semantics (see ``docs/async-serving.md``).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

__all__ = ["LatencyHistogram", "KindSummary", "ServiceStats"]

#: Smallest latency (seconds) with its own bucket; everything below
#: lands in bucket 0.  1 µs is far under Python's timer resolution.
_FLOOR_S = 1e-6
#: Geometric growth factor between bucket upper bounds.  1.2**119
#: spans 1 µs → ~2600 s across 120 buckets of ≤ 20% relative width
#: (≤ ~9.5% error reporting the geometric midpoint).
_GROWTH = 1.2
#: Total buckets (the last one is open-ended).
_BUCKETS = 120
_LOG_GROWTH = math.log(_GROWTH)


class LatencyHistogram:
    """Fixed-bucket geometric histogram over seconds.

    ``observe`` is O(1); ``percentile`` walks the (fixed, small) bucket
    array and returns the geometric midpoint of the bucket holding the
    requested rank, so the estimate's relative error is bounded by half
    a bucket's width.  Exact ``count``/``total``/``min``/``max`` ride
    along for means and ranges.
    """

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * _BUCKETS
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    @staticmethod
    def _bucket(latency_s: float) -> int:
        if latency_s <= _FLOOR_S:
            return 0
        index = int(math.log(latency_s / _FLOOR_S) / _LOG_GROWTH) + 1
        return min(index, _BUCKETS - 1)

    @staticmethod
    def _midpoint(bucket: int) -> float:
        """Geometric midpoint of a bucket's (lo, hi] latency range."""
        if bucket == 0:
            return _FLOOR_S / 2
        lo = _FLOOR_S * _GROWTH ** (bucket - 1)
        return lo * math.sqrt(_GROWTH)

    def observe(self, latency_s: float) -> None:
        """Record one latency sample (seconds)."""
        if latency_s < 0:
            raise ValueError("latency must be >= 0")
        self.counts[self._bucket(latency_s)] += 1
        self.count += 1
        self.total += latency_s
        self.min = min(self.min, latency_s)
        self.max = max(self.max, latency_s)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's samples into this one."""
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        """Exact mean of the observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (p in [0, 100]) in seconds.

        Returns 0.0 for an empty histogram.  The estimate is the
        geometric midpoint of the bucket containing the rank, clamped
        to the exact observed ``min``/``max`` so single-bucket
        histograms report sane values.
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(self.count * p / 100.0))
        seen = 0
        for bucket, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                if bucket == _BUCKETS - 1:
                    # The overflow bucket is open-ended; the observed
                    # max is the only honest estimate inside it.
                    return self.max
                return min(max(self._midpoint(bucket), self.min), self.max)
        return self.max  # pragma: no cover - rank <= count always hits

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        if not self.count:
            return "LatencyHistogram(empty)"
        return (
            f"LatencyHistogram(n={self.count}, "
            f"p50={self.percentile(50) * 1000:.2f}ms, "
            f"p99={self.percentile(99) * 1000:.2f}ms)"
        )


@dataclass(frozen=True)
class KindSummary:
    """One request kind's latency digest, in milliseconds."""

    kind: str
    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float


@dataclass
class ServiceStats:
    """Aggregated serving statistics: latency, throughput, admission.

    One :class:`LatencyHistogram` per request kind plus an overall one.
    The admission counters are maintained by the
    :class:`~repro.service.service.AsyncQueryService`; the histograms
    are shared vocabulary with the synchronous ``serve-bench`` path via
    :meth:`observe_batch`.
    """

    overall: LatencyHistogram = field(default_factory=LatencyHistogram)
    by_kind: dict[str, LatencyHistogram] = field(default_factory=dict)
    #: Requests accepted into a lane (rejections are not submitted).
    submitted: int = 0
    #: Requests answered (a response future resolved with a result).
    completed: int = 0
    #: Requests refused by admission control, per lane.
    rejected_reads: int = 0
    rejected_writes: int = 0
    #: Batches handed to the executor.
    batches: int = 0
    #: Live queued-request count across lanes, and its high-water mark.
    queue_depth: int = 0
    max_queue_depth: int = 0
    #: Wall-clock of the first/last observation (throughput window).
    started_at: float = 0.0
    finished_at: float = 0.0
    #: Page-cache traffic folded from batch-attributed taps
    #: (:meth:`observe_cache`): counted-read hits and misses across the
    #: run.  Zero until a batch with page-cache traffic is observed.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Group commits executed (``sync_every_n``/``sync_interval_s``
    #: cadence plus the final commit at close) and the write batches
    #: they made durable; ``sync_writes=True`` commits inline instead
    #: and leaves these at zero.
    commits: int = 0
    committed_batches: int = 0
    #: Seconds spent inside group commits, total — off the write
    #: window, so this is concurrent-with-reads time, not stall.
    commit_seconds: float = 0.0
    #: Group commits that raised (the dirty batches stay pending and
    #: the next cadence point retries).
    commit_failures: int = 0

    @property
    def rejected(self) -> int:
        """Total requests refused by admission control."""
        return self.rejected_reads + self.rejected_writes

    @property
    def elapsed_s(self) -> float:
        """Seconds between the first and last observation."""
        return max(0.0, self.finished_at - self.started_at)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of the observation window."""
        elapsed = self.elapsed_s
        return self.completed / elapsed if elapsed > 0 else 0.0

    @property
    def cache_hit_ratio(self) -> float | None:
        """Run-wide page-cache hit ratio (None without cache traffic)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else None

    # -- recording -----------------------------------------------------

    def _clock(self) -> None:
        now = time.perf_counter()
        if not self.started_at:
            self.started_at = now
        self.finished_at = now

    def histogram(self, kind: str) -> LatencyHistogram:
        """The (created-on-demand) histogram of one request kind."""
        histogram = self.by_kind.get(kind)
        if histogram is None:
            histogram = self.by_kind[kind] = LatencyHistogram()
        return histogram

    def observe(self, kind: str, latency_s: float) -> None:
        """Record one completed request's latency under its kind."""
        self.overall.observe(latency_s)
        self.histogram(kind).observe(latency_s)
        self.completed += 1
        self._clock()

    def observe_batch(self, report) -> None:
        """Fold a :class:`~repro.server.server.BatchReport` in.

        Every executed (non-deduplicated) request's latency is recorded
        under its kind; duplicates cost nothing and are skipped, exactly
        as they cost the server nothing.
        """
        self.observe_kind_latencies(report.kind_latencies())

    def observe_kind_latencies(
        self, by_kind: dict[str, list[float]]
    ) -> None:
        """Fold one batch's kind → latencies mapping in (one batch)."""
        self.batches += 1
        for kind, latencies in by_kind.items():
            histogram = self.histogram(kind)
            for latency in latencies:
                self.overall.observe(latency)
                histogram.observe(latency)
                self.completed += 1
        self._clock()

    def observe_cache(self, io: dict[str, int]) -> None:
        """Fold one batch's attributed I/O tap snapshot in.

        Only the page-cache lookup counts are kept — logical I/O totals
        already live on the shared counters and the per-batch reports.
        """
        self.cache_hits += io.get("hits", 0)
        self.cache_misses += io.get("misses", 0)

    def note_queue_depth(self, depth: int) -> None:
        """Track the live queue depth and its high-water mark."""
        self.queue_depth = depth
        self.max_queue_depth = max(self.max_queue_depth, depth)

    # -- reporting -----------------------------------------------------

    def kind_summaries(self) -> list[KindSummary]:
        """Per-kind latency digests, sorted by kind name."""
        return [
            KindSummary(
                kind=kind,
                count=histogram.count,
                mean_ms=histogram.mean * 1000.0,
                p50_ms=histogram.percentile(50) * 1000.0,
                p95_ms=histogram.percentile(95) * 1000.0,
                p99_ms=histogram.percentile(99) * 1000.0,
            )
            for kind, histogram in sorted(self.by_kind.items())
        ]

    def __repr__(self) -> str:
        return (
            f"ServiceStats(completed={self.completed}, "
            f"rejected={self.rejected}, batches={self.batches}, "
            f"p50={self.overall.percentile(50) * 1000:.2f}ms, "
            f"p99={self.overall.percentile(99) * 1000:.2f}ms, "
            f"max_queue={self.max_queue_depth})"
        )
