"""Open-loop load generation against an :class:`AsyncQueryService`.

Closed-loop drivers (issue, await, repeat) measure a system that is
never overloaded by construction: when the server slows, the client
slows with it.  Realistic serving is judged *open loop* — requests
arrive on their own schedule whether or not earlier ones finished — so
queueing delay and admission behaviour become visible exactly at the
arrival rates where they matter (the SIGMOD 2014 contest analyses make
the same point about sustained-throughput scoring).

:func:`open_loop` submits a request stream at a target arrival rate
(Poisson by default, deterministic spacing on request), never awaiting
a response before the next arrival, and returns a :class:`LoadReport`
of what came back: completions, admission rejections, errors, achieved
throughput, and the service's streaming percentiles.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.server.requests import Request
from repro.service.service import (
    AdmissionError,
    AsyncQueryService,
    ServiceResponse,
)
from repro.service.stats import ServiceStats

__all__ = ["LoadReport", "open_loop"]


@dataclass
class LoadReport:
    """What one open-loop run offered and what came back.

    ``offered`` counts every arrival; each was either ``completed``,
    ``rejected`` by admission control, or failed with an unexpected
    ``error``.  ``stats`` is the serving-side view (percentiles include
    queue wait; see :class:`~repro.service.stats.ServiceStats`).
    """

    offered: int = 0
    completed: int = 0
    rejected: int = 0
    errors: int = 0
    elapsed_s: float = 0.0
    target_rps: float = 0.0
    stats: ServiceStats = field(default_factory=ServiceStats)
    #: Reprs of the first few unexpected errors, for diagnosis.
    error_samples: list[str] = field(default_factory=list)

    @property
    def offered_rps(self) -> float:
        """Arrival rate actually generated."""
        return self.offered / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def achieved_rps(self) -> float:
        """Completion rate over the run."""
        return self.completed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def rejection_frac(self) -> float:
        """Fraction of arrivals shed by admission control."""
        return self.rejected / self.offered if self.offered else 0.0

    def __repr__(self) -> str:
        return (
            f"LoadReport(offered={self.offered} @ {self.offered_rps:,.0f}/s, "
            f"completed={self.completed}, rejected={self.rejected}, "
            f"errors={self.errors})"
        )


async def open_loop(
    service: AsyncQueryService,
    requests: Sequence[Request],
    rate: float,
    seed: int = 0,
    poisson: bool = True,
) -> LoadReport:
    """Drive ``requests`` at ``rate`` arrivals/second, open loop.

    Each arrival immediately spawns ``service.submit`` as its own task
    and the generator moves on — responses are only gathered after the
    last arrival, so a slow service accumulates queue depth (and, past
    the admission bound, rejections) instead of slowing the generator.

    ``poisson=True`` draws exponential inter-arrival gaps (memoryless
    arrivals, the standard open-loop model, reproducible via ``seed``);
    ``poisson=False`` spaces arrivals exactly ``1/rate`` apart.
    """
    if rate <= 0:
        raise ValueError("rate must be > 0 requests/second")
    rng = random.Random(seed)
    loop = asyncio.get_running_loop()
    report = LoadReport(target_rps=rate, stats=service.stats)

    async def _one(request: Request) -> ServiceResponse | None:
        try:
            return await service.submit(request)
        except AdmissionError:
            report.rejected += 1
        except Exception as exc:  # noqa: BLE001 - counted and sampled
            report.errors += 1
            if len(report.error_samples) < 5:
                report.error_samples.append(f"{type(exc).__name__}: {exc}")
        return None

    started = loop.time()
    next_at = started
    tasks: list[asyncio.Task] = []
    for request in requests:
        next_at += (
            rng.expovariate(rate) if poisson else 1.0 / rate
        )
        delay = next_at - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(loop.create_task(_one(request)))
        report.offered += 1

    responses = await asyncio.gather(*tasks)
    report.elapsed_s = loop.time() - started
    report.completed = sum(1 for r in responses if r is not None)
    return report
