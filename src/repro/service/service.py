"""The asyncio serving layer: individual requests in, batches out.

The batched :class:`~repro.server.QueryServer` is a throughput machine
but a synchronous one — independent clients serialize behind each
other's batches.  :class:`AsyncQueryService` puts an asyncio front end
in front of the same stack so *many concurrent clients* each submit
individual requests and await individual responses, while the service
recovers the batch efficiencies underneath:

* **Coalescing.**  Accepted requests queue in two priority lanes
  (reads vs writes) and are shipped as batches when one fills to
  ``max_batch`` or the oldest queued request has waited
  ``flush_interval`` seconds — the classic size-or-time window.
* **Overlapping reads, ordered writes.**  Read batches execute on a
  thread-pool executor, each on its own warm
  :class:`~repro.server.QueryServer` from a fixed pool, so several
  read batches are in flight at once.  Write batches are *exclusive*:
  the dispatcher quiesces in-flight reads, applies the writes in
  admission (FIFO) order on a dedicated writer server, invalidates the
  read servers' warm engines for the mutated indexes, and only then
  lets reads resume — so writes retain submission order globally and a
  client that awaited its write always reads its own writes.
* **Group commit.**  With ``sync_every_n``/``sync_interval_s`` the
  service turns durability into a background cadence: every N write
  batches (or every T seconds), all mutated indexes ``sync()`` on the
  executor *concurrently with reads* — the atomic header-slot commit
  of the storage layer (``docs/durability.md``) means readers never
  see a half-published state — and the dispatcher only stalls a write
  batch that catches an in-flight commit.
* **Admission control.**  Each lane has a queue-depth bound.  Past it,
  ``admission="reject"`` fails fast with :class:`AdmissionError`
  (load-shedding, the open-loop benchmark's mode) and
  ``admission="backpressure"`` suspends the submitting coroutine until
  space frees (closed-loop clients slow down instead of piling up).

Every response is a :class:`ServiceResponse` carrying the request's
own end-to-end latency split into queue wait and execution; the
service-wide :class:`~repro.service.stats.ServiceStats` maintains
streaming p50/p95/p99 per request kind, throughput, queue depth and
rejection counts.  ``docs/async-serving.md`` walks through the model.

Thread-safety contract (audited in ``storage/``): the paged read path
(:class:`~repro.storage.paged.PagedNodeStore`) and the file layer
(:class:`~repro.storage.filestore.FileBlockStore`) are fully locked, so
any number of pool servers may read one shared tree handle
concurrently.  A :class:`~repro.server.QueryServer` *instance* is
single-batch — warm engines accumulate per-query statistics — which is
exactly why the pool hands each in-flight batch its own server.  Tree
mutation (``insert``/``delete``/``sync``) is not safe against
concurrent readers — an update can split pages mid-descent — which is
why write batches run with the read lanes quiesced.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.obs import health
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Trace, Tracer
from repro.rtree.tree import RTree
from repro.server.requests import DeleteRequest, InsertRequest, Request
from repro.server.server import QueryServer
from repro.service.stats import ServiceStats
from repro.storage.shard import ShardedTree

__all__ = [
    "AdmissionError",
    "ServiceClosed",
    "ServiceResponse",
    "AsyncQueryService",
]

#: Request kinds that go down the write lane.
_WRITE_KINDS = (InsertRequest, DeleteRequest)


def _page_stores(tree: Any):
    """Yield ``(shard_label, PagedNodeStore)`` for an index's page layers.

    A sharded family contributes one store per shard (labelled by shard
    number), a single paged tree contributes one (labelled ``"-"``);
    simulated in-memory trees have no page layer and yield nothing.
    """
    if isinstance(tree, ShardedTree):
        for i, shard in enumerate(tree.shards):
            yield str(i), shard.page_store
    else:
        store = getattr(tree, "page_store", None)
        if store is not None:
            yield "-", store


class AdmissionError(RuntimeError):
    """The request was refused: its lane is at the admission bound.

    Raised by :meth:`AsyncQueryService.submit` in ``"reject"`` mode —
    the fast-fail half of admission control.  ``lane`` is ``"read"`` or
    ``"write"``.
    """

    def __init__(self, lane: str, bound: int) -> None:
        super().__init__(
            f"{lane} lane is at its admission bound ({bound} queued)"
        )
        self.lane = lane
        self.bound = bound


class ServiceClosed(RuntimeError):
    """The service is shut (or shutting) down and accepts no requests."""


@dataclass
class ServiceResponse:
    """One answered request, with its own latency breakdown.

    Attributes
    ----------
    request:
        The request this response answers.
    value:
        The operator payload, exactly as
        :attr:`~repro.server.requests.RequestResult.value` defines it.
    stats:
        The operator's statistics object for this request.
    latency_s:
        End-to-end seconds from admission to response — queue wait plus
        batch execution.  This is what the service percentiles are made
        of.
    queue_s:
        Seconds the request waited in its lane before its batch
        started.
    engine_s:
        Seconds the executing engine spent on this request inside the
        batch (0.0 when it was answered from the batch dedup table).
    batch_size:
        How many requests shared the batch.
    """

    request: Request
    value: Any
    stats: Any
    latency_s: float
    queue_s: float
    engine_s: float
    batch_size: int


class _Pending:
    """A queued request and the future its client awaits."""

    __slots__ = ("request", "future", "enqueued_at", "drained_at", "trace")

    def __init__(
        self, request: Request, future: "asyncio.Future[ServiceResponse]"
    ) -> None:
        self.request = request
        self.future = future
        self.enqueued_at = time.perf_counter()
        #: Stamped when the request leaves its lane for a batch.
        self.drained_at = self.enqueued_at
        self.trace: Trace | None = None


class AsyncQueryService:
    """Asyncio front end over a pool of batched query servers.

    Parameters
    ----------
    indexes:
        One tree or a name → tree mapping, exactly as
        :class:`~repro.server.QueryServer` accepts.  The same tree
        handles are shared by every pool server (the paged read path is
        locked).
    max_batch:
        Most requests coalesced into one batch.
    flush_interval:
        Seconds the oldest queued read may wait before a partial batch
        ships anyway.  Writes always ship at the next dispatch round —
        they are latency-critical for read-your-writes clients.
    max_pending_reads / max_pending_writes:
        Admission bound per lane: the most requests that may be queued
        (not yet batched) before admission control engages.
    admission:
        ``"reject"`` fails fast with :class:`AdmissionError` at the
        bound; ``"backpressure"`` suspends the submitter until space
        frees.
    executor_workers:
        Thread-pool width *and* read-server pool size — the number of
        read batches that can be in flight at once.
    dedup / reorder:
        Passed through to the underlying servers (see
        :class:`~repro.server.QueryServer`).
    sync_writes:
        Unlike the batch server, the service defaults to **False**:
        syncing every write batch (dirty-page flush on every mutated
        index plus, for a sharded family, an atomic manifest rewrite)
        puts filesystem latency on the serving path while reads are
        quiesced — measured spikes of 100 ms stall every lane.  With
        write-back deferred, readers still observe every write
        immediately (dirty pages are served from the page cache, under
        its lock); durability points are the index owner's ``sync()`` /
        ``close()``.  Set True to make every write batch a consistency
        point, accepting the tail.
    sync_every_n / sync_interval_s:
        **Group commit** — the middle ground the all-or-nothing
        ``sync_writes`` lacks.  After every ``sync_every_n``-th
        un-synced write batch (or once ``sync_interval_s`` seconds
        have passed since the last commit, whichever is configured and
        fires first), the service ``sync()``s every mutated index *off
        the exclusive write window*: the commit runs as an executor
        task concurrent with read batches (the flush path is fully
        locked and one atomic header-slot flip publishes it — see
        ``docs/durability.md``), never concurrent with writes — the
        dispatcher awaits an in-flight commit before the next write
        batch mutates the trees.  Un-synced batches still pending at
        :meth:`aclose` get one final commit.  Mutually exclusive with
        ``sync_writes=True``.
    server_workers:
        ``workers`` for each pool server: >1 additionally fans one
        sharded request across its shards.
    batch_windows:
        Passed through to the pool servers: each coalesced batch's
        co-located window-query groups execute as one set-at-a-time
        batch×page traversal (see :class:`~repro.server.QueryServer`).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  When set, every
        request the tracer's sampling keeps (or that turns out slow)
        records admission/queue/coalesce-or-quiesce/execute spans plus
        the engine/shard spans the lower layers add, with exact
        per-request I/O attribution.  ``None`` (default) is the no-op
        fast path.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  A
        periodic snapshot task copies the service's counters, queue
        gauges, per-kind latency histograms and per-index/per-shard I/O
        totals into it every ``metrics_interval`` seconds (and once
        more at close).
    metrics_interval:
        Seconds between metric snapshots.
    slow_log:
        Optional :class:`~repro.obs.slowlog.SlowQueryLog`; every
        completed request at or over its threshold is recorded with its
        queue/engine split and attributed I/O (plus the compact EXPLAIN
        summary when ``explain`` is on).
    explain:
        Passed through to every pool server: each executed read
        captures a :mod:`repro.queries.explain` plan, attached to slow
        log entries in summary form and aggregated into the
        ``repro_explain_*`` metric families.  Off (default) keeps the
        traversal hot path at one branch per node.
    health_interval:
        Seconds between **index-health snapshots**: every cadence tick
        of the metrics loop past this interval walks each index
        cache-neutrally (:func:`repro.obs.health.index_quality`),
        compares against its pack-time baseline and exports the
        ``repro_health_*`` families, including the normalized
        degradation score that arms the self-maintenance trigger.
        ``None`` (default) disables the walk — it reads the whole tree,
        so pick a cadence that amortizes it.

    Use as an async context manager, or call :meth:`start` /
    :meth:`aclose` explicitly.  :meth:`submit` starts the dispatcher
    lazily, so short scripts can skip :meth:`start`.
    """

    def __init__(
        self,
        indexes: RTree | ShardedTree | Mapping[str, Any],
        max_batch: int = 64,
        flush_interval: float = 0.002,
        max_pending_reads: int = 1024,
        max_pending_writes: int = 256,
        admission: str = "reject",
        executor_workers: int = 4,
        dedup: bool = True,
        reorder: bool = True,
        sync_writes: bool = False,
        sync_every_n: int | None = None,
        sync_interval_s: float | None = None,
        server_workers: int = 1,
        batch_windows: bool = False,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        metrics_interval: float = 1.0,
        slow_log: SlowQueryLog | None = None,
        explain: bool = False,
        health_interval: float | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if flush_interval < 0:
            raise ValueError("flush_interval must be >= 0")
        if max_pending_reads < 1 or max_pending_writes < 1:
            raise ValueError("admission bounds must be >= 1")
        if admission not in ("reject", "backpressure"):
            raise ValueError(
                "admission must be 'reject' or 'backpressure', "
                f"not {admission!r}"
            )
        if executor_workers < 1:
            raise ValueError("executor_workers must be >= 1")
        if metrics_interval <= 0:
            raise ValueError("metrics_interval must be > 0")
        if health_interval is not None and health_interval <= 0:
            raise ValueError("health_interval must be > 0")
        if sync_every_n is not None and sync_every_n < 1:
            raise ValueError("sync_every_n must be >= 1")
        if sync_interval_s is not None and sync_interval_s <= 0:
            raise ValueError("sync_interval_s must be > 0")
        if sync_writes and (
            sync_every_n is not None or sync_interval_s is not None
        ):
            raise ValueError(
                "sync_writes=True already commits every write batch; "
                "group commit (sync_every_n/sync_interval_s) replaces it"
            )
        self.max_batch = max_batch
        self.flush_interval = flush_interval
        self.max_pending_reads = max_pending_reads
        self.max_pending_writes = max_pending_writes
        self.admission = admission
        self.executor_workers = executor_workers
        self.sync_every_n = sync_every_n
        self.sync_interval_s = sync_interval_s
        self.stats = ServiceStats()
        self.tracer = tracer
        self.metrics = metrics
        self.metrics_interval = metrics_interval
        self.slow_log = slow_log
        self.explain = explain
        self.health_interval = health_interval

        self._writer = QueryServer(
            indexes,
            dedup=dedup,
            reorder=reorder,
            workers=server_workers,
            sync_writes=sync_writes,
            batch_windows=batch_windows,
            explain=explain,
        )
        # Read pool members share the writer's (normalized) catalog and
        # tree handles; each in-flight read batch owns one member, so
        # warm engines are never shared between concurrent batches.
        self._read_pool = [
            QueryServer(
                self._writer.indexes,
                dedup=dedup,
                reorder=reorder,
                workers=server_workers,
                sync_writes=sync_writes,
                batch_windows=batch_windows,
                explain=explain,
            )
            for _ in range(executor_workers)
        ]
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers,
            thread_name_prefix="repro-service",
        )

        self._reads: deque[_Pending] = deque()
        self._writes: deque[_Pending] = deque()
        self._inflight: set[asyncio.Task] = set()
        self._idle_servers: deque[QueryServer] = deque(self._read_pool)
        self._wakeup = asyncio.Event()
        self._server_freed = asyncio.Event()
        self._space = asyncio.Condition()
        self._dispatcher: asyncio.Task | None = None
        self._metrics_task: asyncio.Task | None = None
        #: What this service has already added to each shared registry
        #: counter — service-lifetime totals are exported as *deltas*,
        #: so several services (e.g. one per rate in a sweep) can share
        #: one registry and the counters accumulate across all of them
        #: instead of regressing when a fresh service starts from zero.
        self._exported_totals: dict[tuple[str, ...], float] = {}
        #: EXPLAIN aggregates per request kind (resolved in the event
        #: loop after each batch, so plain mutation is safe):
        #: kind → [plans, nodes visited, summed pruning efficiency].
        self._explain_totals: dict[str, list[float]] = {}
        #: Wall clock of the last index-health walk (0.0 = never; the
        #: first metrics snapshot after start walks immediately).
        self._last_health = 0.0
        #: Group-commit state: write batches applied but not yet made
        #: durable, the indexes they touched, the in-flight commit (at
        #: most one — the dispatcher awaits it before the next write
        #: batch), and the wall clock of the last commit (the
        #: ``sync_interval_s`` cadence reference).
        self._unsynced_batches = 0
        self._unsynced_indexes: set[str] = set()
        self._sync_task: asyncio.Task | None = None
        self._last_sync = time.perf_counter()
        self._closing = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the dispatcher task (idempotent; needs a running loop)."""
        if self._closing:
            raise ServiceClosed("the service is shut down")
        if self._dispatcher is None:
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch(), name="repro-service-dispatcher"
            )
        if self.metrics is not None and self._metrics_task is None:
            self._metrics_task = asyncio.get_running_loop().create_task(
                self._metrics_loop(), name="repro-service-metrics"
            )

    async def aclose(self) -> None:
        """Drain queued requests, stop the dispatcher, free the executor.

        Requests already admitted are still answered; new submissions
        raise :class:`ServiceClosed`.  Idempotent.
        """
        if self._closed:
            return
        self._closing = True
        self._wakeup.set()
        async with self._space:
            self._space.notify_all()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        # Group commit: whatever the cadence left un-synced becomes
        # durable now, before the executor goes away.
        await self._await_sync()
        if self._unsynced_batches:
            await self._commit()
        if self._metrics_task is not None:
            self._metrics_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._metrics_task
            self._metrics_task = None
        if self.metrics is not None:
            # One final snapshot so the exported state includes the
            # last partial interval.
            self.snapshot_metrics()
        self._closed = True
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "AsyncQueryService":
        self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def queue_depth(self) -> int:
        """Requests currently queued (admitted, not yet batched)."""
        return len(self._reads) + len(self._writes)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def _lane(self, request: Request) -> tuple[deque, int, str]:
        if isinstance(request, _WRITE_KINDS):
            return self._writes, self.max_pending_writes, "write"
        return self._reads, self.max_pending_reads, "read"

    async def submit(self, request: Request) -> ServiceResponse:
        """Submit one request; await its :class:`ServiceResponse`.

        Applies admission control at the lane bound: ``"reject"`` mode
        raises :class:`AdmissionError` immediately, ``"backpressure"``
        mode suspends until the lane drains.  Raises
        :class:`ServiceClosed` once :meth:`aclose` has begun.
        """
        if self._closing:
            raise ServiceClosed("the service is shut down")
        self.start()
        admitted_from = time.perf_counter()
        lane, bound, name = self._lane(request)
        if len(lane) >= bound:
            if self.admission == "reject":
                if name == "write":
                    self.stats.rejected_writes += 1
                else:
                    self.stats.rejected_reads += 1
                raise AdmissionError(name, bound)
            async with self._space:
                await self._space.wait_for(
                    lambda: len(lane) < bound or self._closing
                )
            if self._closing:
                raise ServiceClosed("the service is shut down")
        pending = _Pending(
            request, asyncio.get_running_loop().create_future()
        )
        if self.tracer is not None:
            # The trace covers admission → response; its spans then
            # partition that window exactly (admission/queue/coalesce-
            # or-quiesce/execute), so per-span time accounts for the
            # reported end-to-end latency.
            trace = self.tracer.begin(
                request.kind, request.kind, start_s=admitted_from
            )
            if trace is not None:
                trace.add_span(
                    "admission",
                    admitted_from,
                    pending.enqueued_at,
                    cat="service",
                    lane=name,
                )
                pending.trace = trace
        lane.append(pending)
        self.stats.submitted += 1
        self.stats.note_queue_depth(self.queue_depth)
        self._wakeup.set()
        return await pending.future

    async def submit_many(
        self, requests: Sequence[Request]
    ) -> list[ServiceResponse]:
        """Submit several requests concurrently and await all responses.

        A convenience for closed-loop clients; rejections and errors
        propagate as the corresponding exception.
        """
        return list(
            await asyncio.gather(*(self.submit(r) for r in requests))
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _dispatch(self) -> None:
        """The single dispatcher: forms batches and schedules them.

        Being the only task that launches batches is what makes write
        exclusivity cheap: a write batch is simply awaited inline after
        the in-flight reads drain, so no lock protects the tree.
        """
        while True:
            self._maybe_schedule_sync()
            if not self._reads and not self._writes:
                if self._closing:
                    break
                self._wakeup.clear()
                # Re-check after clear: a submit between the check and
                # the clear must not be lost.
                if not self._reads and not self._writes and not self._closing:
                    timeout = self._sync_wait_timeout()
                    if timeout is None:
                        await self._wakeup.wait()
                    else:
                        # Un-synced batches and an interval cadence:
                        # wake at the commit deadline even when idle.
                        with contextlib.suppress(asyncio.TimeoutError):
                            await asyncio.wait_for(
                                self._wakeup.wait(), timeout
                            )
                continue

            if self._writes:
                batch = self._drain(self._writes)
                await self._notify_space()
                # Never mutate under an in-flight group commit: the
                # commit captures a consistent tree, so the next write
                # batch waits for the header flips (and the manifest
                # rename) to land.
                await self._await_sync()
                await self._quiesce()
                await self._run_batch(self._writer, batch, write=True)
                if self._group_commit:
                    self._unsynced_batches += 1
                    self._unsynced_indexes.update(
                        pending.request.index for pending in batch
                    )
                continue

            batch = await self._coalesce_reads()
            await self._notify_space()
            if not batch:
                continue
            server = await self._acquire_server()
            task = asyncio.get_running_loop().create_task(
                self._run_batch(server, batch, write=False)
            )
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

        await self._quiesce()

    def _drain(self, lane: deque) -> list[_Pending]:
        batch = []
        drained_at = time.perf_counter()
        while lane and len(batch) < self.max_batch:
            pending = lane.popleft()
            pending.drained_at = drained_at
            batch.append(pending)
        self.stats.note_queue_depth(self.queue_depth)
        return batch

    async def _coalesce_reads(self) -> list[_Pending]:
        """Wait for the read batch to fill or its flush window to lapse.

        Returns early (shipping a partial batch) when a write arrives —
        the write lane has priority and the dispatcher must get back to
        it — or when the service starts closing.
        """
        deadline = self._reads[0].enqueued_at + self.flush_interval
        while (
            len(self._reads) < self.max_batch
            and not self._writes
            and not self._closing
        ):
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            self._wakeup.clear()
            try:
                await asyncio.wait_for(self._wakeup.wait(), remaining)
            except asyncio.TimeoutError:
                break
        return self._drain(self._reads)

    async def _notify_space(self) -> None:
        """Wake backpressure waiters after a lane drained."""
        async with self._space:
            self._space.notify_all()

    async def _quiesce(self) -> None:
        """Wait until no read batch is in flight."""
        while self._inflight:
            await asyncio.gather(*list(self._inflight))

    # ------------------------------------------------------------------
    # Group commit
    # ------------------------------------------------------------------

    @property
    def _group_commit(self) -> bool:
        return self.sync_every_n is not None or self.sync_interval_s is not None

    def _sync_due(self) -> bool:
        if not self._unsynced_batches:
            return False
        if self._sync_task is not None and not self._sync_task.done():
            return False
        if (
            self.sync_every_n is not None
            and self._unsynced_batches >= self.sync_every_n
        ):
            return True
        return (
            self.sync_interval_s is not None
            and time.perf_counter() - self._last_sync >= self.sync_interval_s
        )

    def _sync_wait_timeout(self) -> float | None:
        """Idle-wait bound: seconds until the interval cadence is due."""
        if self.sync_interval_s is None or not self._unsynced_batches:
            return None
        if self._sync_task is not None and not self._sync_task.done():
            return None
        due = self._last_sync + self.sync_interval_s
        return max(0.0, due - time.perf_counter())

    def _maybe_schedule_sync(self) -> None:
        """Launch a group commit as a background task when one is due.

        Called only from the dispatcher, so at most one commit is ever
        in flight and it never overlaps a write batch (the dispatcher
        awaits it first); it *does* overlap read batches — the flush
        path is fully locked and publication is one atomic header-slot
        flip, so readers never see a half-commit.
        """
        if self._sync_due():
            self._sync_task = asyncio.get_running_loop().create_task(
                self._commit(), name="repro-service-commit"
            )

    async def _await_sync(self) -> None:
        if self._sync_task is not None:
            await self._sync_task
            self._sync_task = None

    async def _commit(self) -> None:
        """One group commit: sync every index mutated since the last.

        Runs on the executor so the event loop (and the read lanes)
        keep serving.  A failed commit re-queues its batches — the next
        cadence point retries them.
        """
        batches = self._unsynced_batches
        names = sorted(self._unsynced_indexes)
        self._unsynced_batches = 0
        self._unsynced_indexes.clear()
        started = time.perf_counter()
        try:
            await asyncio.get_running_loop().run_in_executor(
                self._executor,
                functools.partial(self._sync_indexes, names),
            )
        except Exception:
            self.stats.commit_failures += 1
            self._unsynced_batches += batches
            self._unsynced_indexes.update(names)
        else:
            self.stats.commits += 1
            self.stats.committed_batches += batches
            self.stats.commit_seconds += time.perf_counter() - started
        finally:
            self._last_sync = time.perf_counter()

    def _sync_indexes(self, names: list[str]) -> None:
        for name in names:
            sync = getattr(self._writer.indexes.get(name), "sync", None)
            if sync is not None:
                sync()

    async def _acquire_server(self) -> QueryServer:
        """Take an idle read server, waiting for one to free up."""
        while not self._idle_servers:
            self._server_freed.clear()
            if self._idle_servers:  # freed between check and clear
                break
            await self._server_freed.wait()
        return self._idle_servers.popleft()

    async def _run_batch(
        self, server: QueryServer, batch: list[_Pending], write: bool
    ) -> None:
        """Execute one batch on the executor and resolve its futures."""
        started = time.perf_counter()
        requests = [pending.request for pending in batch]
        # Traces ride along explicitly: run_in_executor does not carry
        # this task's contextvars, and one batch holds many traces — the
        # server activates each request's trace in the thread (and at
        # the moment) that request actually executes.
        traces: list[Trace | None] | None = None
        if any(pending.trace is not None for pending in batch):
            traces = [pending.trace for pending in batch]
        try:
            report = await asyncio.get_running_loop().run_in_executor(
                self._executor,
                functools.partial(server.submit, requests, traces),
            )
        except Exception as exc:
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
                if pending.trace is not None:
                    pending.trace.event(
                        "error", type=type(exc).__name__, message=str(exc)
                    )
                    self.tracer.finish(pending.trace)
            return
        finally:
            if not write:
                self._idle_servers.append(server)
                self._server_freed.set()
            elif requests:
                # The tree (possibly partially, on an error) mutated
                # under servers that did not execute the batch: their
                # warm engines pool pre-update nodes.
                for name in {request.index for request in requests}:
                    for member in self._read_pool:
                        member.invalidate(name)
            async with self._space:
                self._space.notify_all()

        done = time.perf_counter()
        self.stats.batches += 1
        self.stats.observe_cache(report.io)
        for pending, result in zip(batch, report.results):
            latency = done - pending.enqueued_at
            plan = result.plan
            if plan is not None and not result.deduped:
                acc = self._explain_totals.setdefault(
                    pending.request.kind, [0, 0, 0.0]
                )
                acc[0] += 1
                acc[1] += plan.nodes_visited
                acc[2] += plan.pruning_efficiency
            if pending.trace is not None:
                trace = pending.trace
                # These three spans partition enqueue → response
                # exactly; with the admission span they cover the whole
                # trace window.
                trace.add_span(
                    "queue",
                    pending.enqueued_at,
                    pending.drained_at,
                    cat="service",
                    lane="write" if write else "read",
                )
                trace.add_span(
                    "write-quiesce" if write else "coalesce",
                    pending.drained_at,
                    started,
                    cat="service",
                )
                trace.add_span(
                    "execute",
                    started,
                    done,
                    cat="service",
                    batch_size=len(batch),
                    deduped=result.deduped,
                )
                self.tracer.finish(trace, end_s=done)
            if self.slow_log is not None:
                self.slow_log.note(
                    pending.request.kind,
                    latency,
                    queue_s=pending.drained_at - pending.enqueued_at,
                    engine_s=result.latency_s,
                    batch_size=len(batch),
                    detail=repr(pending.request),
                    io=(
                        pending.trace.io.snapshot()
                        if pending.trace is not None
                        else None
                    ),
                    trace_id=(
                        pending.trace.trace_id
                        if pending.trace is not None
                        else None
                    ),
                    explain=plan.summary() if plan is not None else None,
                )
            if pending.future.done():
                # The client gave up (e.g. wait_for cancelled the
                # await) while the batch was in flight; the work is
                # done either way, only the delivery is moot.
                continue
            self.stats.observe(pending.request.kind, latency)
            pending.future.set_result(
                ServiceResponse(
                    request=pending.request,
                    value=result.value,
                    stats=result.stats,
                    latency_s=latency,
                    queue_s=started - pending.enqueued_at,
                    engine_s=result.latency_s,
                    batch_size=len(batch),
                )
            )

    # ------------------------------------------------------------------
    # Metrics snapshots
    # ------------------------------------------------------------------

    async def _metrics_loop(self) -> None:
        """Copy service state into the registry every interval."""
        while True:
            await asyncio.sleep(self.metrics_interval)
            self.snapshot_metrics()

    def snapshot_metrics(self) -> None:
        """Mirror the live counters/histograms into :attr:`metrics`.

        Exports the four label dimensions of the stack: ``lane``
        (admission/queue), ``kind`` (latency summaries), ``index`` and
        ``shard`` (attributed I/O totals).  The serving hot path never
        touches the registry — this copies already-maintained state, so
        it is safe to call at any time (the periodic task and the final
        :meth:`aclose` snapshot both land here).
        """
        registry = self.metrics
        if registry is None:
            return
        stats = self.stats

        def export(counter, key: tuple[str, ...], total: float) -> None:
            # Delta export: the registry counter may be shared with
            # other (earlier or concurrent) services, so this service
            # only ever adds what it has not yet contributed.
            previous = self._exported_totals.get(key, 0.0)
            if total > previous:
                counter.inc(total - previous)
                self._exported_totals[key] = total

        export(
            registry.counter(
                "repro_requests_submitted_total",
                "Requests admitted to a lane",
            ).labels(),
            ("submitted",),
            stats.submitted,
        )
        export(
            registry.counter(
                "repro_requests_completed_total", "Requests answered"
            ).labels(),
            ("completed",),
            stats.completed,
        )
        rejected = registry.counter(
            "repro_requests_rejected_total",
            "Requests refused by admission control",
            ("lane",),
        )
        export(rejected.labels("read"), ("rejected", "read"), stats.rejected_reads)
        export(
            rejected.labels("write"), ("rejected", "write"), stats.rejected_writes
        )
        export(
            registry.counter(
                "repro_batches_total", "Batches handed to the executor"
            ).labels(),
            ("batches",),
            stats.batches,
        )
        export(
            registry.counter(
                "repro_commits_total",
                "Group commits executed (cadence + final at close)",
            ).labels(),
            ("commits",),
            stats.commits,
        )
        export(
            registry.counter(
                "repro_commit_batches_total",
                "Write batches made durable by group commits",
            ).labels(),
            ("commit_batches",),
            stats.committed_batches,
        )
        export(
            registry.counter(
                "repro_commit_seconds_total",
                "Seconds spent inside group commits (off the write window)",
            ).labels(),
            ("commit_seconds",),
            stats.commit_seconds,
        )
        export(
            registry.counter(
                "repro_commit_failures_total",
                "Group commits that raised (batches re-queued)",
            ).labels(),
            ("commit_failures",),
            stats.commit_failures,
        )
        depth = registry.gauge(
            "repro_queue_depth", "Requests queued per lane", ("lane",)
        )
        depth.labels("read").set(len(self._reads))
        depth.labels("write").set(len(self._writes))
        registry.gauge(
            "repro_queue_depth_max", "High-water queued requests"
        ).labels().set(stats.max_queue_depth)
        registry.gauge(
            "repro_throughput_rps", "Completed requests per second"
        ).labels().set(stats.throughput_rps)
        latency = registry.histogram(
            "repro_request_latency_seconds",
            "End-to-end request latency by request kind",
            ("kind",),
        )
        for kind, histogram in list(stats.by_kind.items()):
            latency.labels(kind).set_from(histogram)

        logical = registry.counter(
            "repro_index_logical_ios_total",
            "Logical block I/Os per index",
            ("index", "op"),
        )
        shard_busy = registry.gauge(
            "repro_shard_busy_seconds_total",
            "Wall-clock seconds the sharded engines spent per shard",
            ("index", "shard"),
        )
        shard_reads = registry.counter(
            "repro_shard_logical_reads_total",
            "Logical block reads per shard",
            ("index", "shard"),
        )
        for name, tree in self._writer.indexes.items():
            snapshot = tree.store.counters.snapshot()
            logical.labels(name, "read").set_total(snapshot.reads)
            logical.labels(name, "write").set_total(snapshot.writes)
            if isinstance(tree, ShardedTree):
                for i, load in enumerate(tree.shard_loads()):
                    shard_busy.labels(name, str(i)).set(load.busy_s)
                    shard_reads.labels(name, str(i)).set_total(load.reads)
        self._snapshot_recovery_metrics(registry)
        self._snapshot_cache_metrics(registry)
        self._snapshot_explain_metrics(registry)
        self._snapshot_health_metrics(registry)

    def _snapshot_explain_metrics(self, registry: MetricsRegistry) -> None:
        """Export the ``repro_explain_*`` families per request kind.

        Populated only while the service runs with ``explain=True`` —
        the aggregates come from the captured plans themselves, so a
        plain service exports nothing here.
        """
        if not self._explain_totals:
            return
        plans = registry.counter(
            "repro_explain_plans_total",
            "Requests executed with an EXPLAIN plan captured",
            ("kind",),
        )
        nodes = registry.counter(
            "repro_explain_nodes_visited_total",
            "Tree nodes visited by explained requests",
            ("kind",),
        )
        efficiency = registry.gauge(
            "repro_explain_pruning_efficiency",
            "Mean pruning efficiency (leaf-I/O lower bound / leaf reads) "
            "of explained requests",
            ("kind",),
        )
        for kind, (count, visited, eff_sum) in list(
            self._explain_totals.items()
        ):
            previous = self._exported_totals.get(("explain_plans", kind), 0.0)
            if count > previous:
                plans.labels(kind).inc(count - previous)
                self._exported_totals[("explain_plans", kind)] = count
            previous = self._exported_totals.get(("explain_nodes", kind), 0.0)
            if visited > previous:
                nodes.labels(kind).inc(visited - previous)
                self._exported_totals[("explain_nodes", kind)] = visited
            if count:
                efficiency.labels(kind).set(eff_sum / count)

    def _snapshot_health_metrics(self, registry: MetricsRegistry) -> None:
        """Export the ``repro_health_*`` families on the health cadence.

        Each walk is cache-neutral (``quiet_peek`` reads) but touches
        every node of every index, so it runs at most once per
        :attr:`health_interval` — snapshots in between re-export the
        previous gauges untouched.  The headline is
        ``repro_health_score``: the normalized degradation score of each
        index against its pack-time baseline (absent for indexes packed
        without one, e.g. pre-baseline files).
        """
        if self.health_interval is None:
            return
        now = time.perf_counter()
        if self._last_health and now - self._last_health < self.health_interval:
            return
        self._last_health = now
        score_gauge = registry.gauge(
            "repro_health_score",
            "Normalized degradation vs the pack-time baseline "
            "(0 = as packed)",
            ("index",),
        )
        gauges = {
            "leaf_occupancy": registry.gauge(
                "repro_health_leaf_occupancy",
                "Leaf fill factor (entries / capacity)",
                ("index",),
            ),
            "overlap_ratio": registry.gauge(
                "repro_health_overlap_ratio",
                "Directory MBR overlap area over directory area",
                ("index",),
            ),
            "dead_ratio": registry.gauge(
                "repro_health_dead_ratio",
                "Directory dead space over directory area",
                ("index",),
            ),
            "fragmentation": registry.gauge(
                "repro_health_fragmentation",
                "Store blocks free or pending reclaim over allocated",
                ("index",),
            ),
            "height": registry.gauge(
                "repro_health_height", "Tree height (root = level 0)",
                ("index",),
            ),
            "nodes": registry.gauge(
                "repro_health_nodes", "Total tree nodes", ("index",),
            ),
        }
        for name, tree in self._writer.indexes.items():
            quality, _ = health.index_quality(tree)
            gauges["leaf_occupancy"].labels(name).set(quality.leaf_occupancy)
            gauges["overlap_ratio"].labels(name).set(quality.overlap_ratio)
            gauges["dead_ratio"].labels(name).set(quality.dead_ratio)
            gauges["fragmentation"].labels(name).set(quality.fragmentation)
            gauges["height"].labels(name).set(quality.height)
            gauges["nodes"].labels(name).set(quality.nodes)
            score = health.degradation_score(
                quality, getattr(tree, "health_baseline", None)
            )
            if score is not None:
                score_gauge.labels(name).set(score)

    def _snapshot_recovery_metrics(self, registry: MetricsRegistry) -> None:
        """Export the ``repro_recovery_*`` families per index file.

        Every file-backed store remembers how it was opened
        (:class:`~repro.storage.filestore.RecoveryInfo`): the committed
        epoch it recovered to, which of the two header slots carried it
        (``-1`` for a legacy v1 file), and how many trailing physical
        blocks of uncommitted shadow writes the open rolled back.
        Constant per open, so dashboards see at a glance whether the
        last process death cost anything (it never costs more than the
        un-synced tail) and which commit lineage is serving.
        """
        epoch = registry.gauge(
            "repro_recovery_epoch",
            "Committed epoch the index file recovered to at open",
            ("index", "shard"),
        )
        slot = registry.gauge(
            "repro_recovery_header_slot",
            "Header slot that carried the recovered epoch (-1: legacy v1)",
            ("index", "shard"),
        )
        rolled = registry.gauge(
            "repro_recovery_rolled_back_blocks",
            "Uncommitted physical blocks discarded by rollback at open",
            ("index", "shard"),
        )
        for name, tree in self._writer.indexes.items():
            for shard, store in _page_stores(tree):
                info = getattr(store.file_store, "recovery", None)
                if info is None:
                    continue
                epoch.labels(name, shard).set(info.epoch)
                slot.labels(name, shard).set(info.header_slot)
                rolled.labels(name, shard).set(info.rolled_back_blocks)

    def _snapshot_cache_metrics(self, registry: MetricsRegistry) -> None:
        """Export the ``repro_cache_*`` families per index page store.

        The event counters always export (every paged index maintains
        :class:`~repro.storage.paged.PageCacheStats`); the what-if
        families (predicted hit ratios per budget, working-set sizes)
        only appear when the store carries a
        :class:`~repro.obs.cachestats.ReuseDistanceTracker`
        (``cache_analytics=True`` at open time).
        """
        events = registry.counter(
            "repro_cache_events_total",
            "Page-cache events per index/shard "
            "(hit, miss, eviction, flush)",
            ("index", "shard", "event"),
        )
        ratio = registry.gauge(
            "repro_cache_hit_ratio",
            "Measured page-cache hit ratio per index/shard",
            ("index", "shard"),
        )
        predicted = registry.gauge(
            "repro_cache_predicted_hit_ratio",
            "Ghost-LRU predicted hit ratio at alternative page budgets",
            ("index", "shard", "budget"),
        )
        wss = registry.gauge(
            "repro_cache_working_set_blocks",
            "Distinct blocks touched in the trailing access window",
            ("index", "shard", "window"),
        )
        unique = registry.gauge(
            "repro_cache_unique_blocks",
            "Distinct blocks ever touched (tracker view)",
            ("index", "shard"),
        )
        for name, tree in self._writer.indexes.items():
            for shard, store in _page_stores(tree):
                stats = store.stats
                events.labels(name, shard, "hit").set_total(stats.hits)
                events.labels(name, shard, "miss").set_total(stats.misses)
                events.labels(name, shard, "eviction").set_total(
                    stats.evictions
                )
                events.labels(name, shard, "flush").set_total(stats.flushes)
                lookups = stats.hits + stats.misses
                if lookups:
                    ratio.labels(name, shard).set(stats.hits / lookups)
                tracker = store.tracker
                if tracker is None:
                    continue
                for point in tracker.miss_ratio_curve():
                    predicted.labels(name, shard, str(point.budget)).set(
                        point.hit_ratio
                    )
                for window, size in tracker.working_set_sizes().items():
                    wss.labels(name, shard, str(window)).set(size)
                unique.labels(name, shard).set(tracker.unique_blocks)

    def __repr__(self) -> str:
        return (
            f"AsyncQueryService(queued={self.queue_depth}, "
            f"inflight={len(self._inflight)}, "
            f"admission={self.admission!r}, {self.stats!r})"
        )
