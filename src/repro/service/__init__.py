"""The asyncio serving layer.

Puts an async front end — request queueing, batch coalescing,
admission control, streaming latency percentiles — in front of the
batched :class:`~repro.server.QueryServer` stack.  See
``docs/async-serving.md`` for the model and
:mod:`repro.service.service` for the mechanics.
"""

from repro.service.loadgen import LoadReport, open_loop
from repro.service.service import (
    AdmissionError,
    AsyncQueryService,
    ServiceClosed,
    ServiceResponse,
)
from repro.service.stats import KindSummary, LatencyHistogram, ServiceStats

__all__ = [
    "AdmissionError",
    "AsyncQueryService",
    "KindSummary",
    "LatencyHistogram",
    "LoadReport",
    "ServiceClosed",
    "ServiceResponse",
    "ServiceStats",
    "open_loop",
]
