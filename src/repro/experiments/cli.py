"""Command-line interface for the experiment harness.

Usage (installed or from a checkout)::

    python -m repro list
    python -m repro run figure12 --n 8000 --fanout 16
    python -m repro run theorem3 --n 16384
    python -m repro run all --out results/
    python -m repro pack index.pack --variant PR --n 50000
    python -m repro pack index.manifest --shards 4 --n 50000
    python -m repro serve-bench --index index.pack --requests 1000
    python -m repro serve-bench --shards 4 --workers 4 --requests 1000
    python -m repro serve-async --shards 4 --rates 200,1000,4000 --mmap
    python -m repro serve-async --trace out.jsonl --metrics out.prom
    python -m repro trace out.jsonl --requests 200 --rate 500
    python -m repro profile out.collapsed --requests 400 --shards 4
    python -m repro cache-report --cache-pages 64 --requests 2000
    python -m repro health --index index.pack
    python -m repro health --index index.pack --score-only
    python -m repro explain --index index.pack --kind window --queries 8
    python -m repro update-bench --updates 1000 --n 20000
    python -m repro crash-bench --variants file,shard --stride 2

``run all`` executes every experiment with its defaults and writes each
rendered table to the output directory (or stdout when none is given).
``pack`` bulk-loads a variant and writes it to an on-disk index file —
or, with ``--shards K``, to K Hilbert-range shard files behind a
manifest; ``serve-bench`` reopens either shape as a lazily paged tree
and drives a mixed batched workload through the query server;
``serve-async`` sweeps open-loop arrival rates through the asyncio
serving layer and reports p50/p95/p99 end-to-end latency per rate;
``trace`` captures one live workload as a Chrome trace-event file for
Perfetto (and exits non-zero when the capture fails its own health
checks — span nesting, full request coverage); ``profile`` captures a
collapsed-stack CPU profile attributed to serving phases;
``cache-report`` tabulates the ghost-LRU what-if analytics of the page
cache; ``health`` runs the cache-neutral tree-quality walk and reports
the degradation score against the pack-time baseline
(``--score-only`` prints just the number for scripting); ``explain``
runs a small workload with per-query plan capture and renders the
plans (``docs/observability.md``); ``crash-bench`` runs the
crash-recovery matrix of
``tools/crashtest.py`` (kill at every write offset, reopen, require the
last committed state back — exit 1 on any failure);
``update-bench`` measures dynamic inserts/deletes on a packed
index (dirty-page write-back) and the post-update query degradation
versus a fresh bulk-load.  The serving subcommands share ``--trace``,
``--metrics``, ``--sample-rate``, ``--slow-ms``, ``--profile`` and
``--cache-analytics`` (docs/observability.md).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Callable

from repro.experiments.figures import (
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
)
from repro.experiments.operators import (
    join_experiment,
    knn_experiment,
    point_experiment,
)
from repro.experiments.report import Table
from repro.experiments.serving import (
    DATASETS,
    cache_report,
    explain_report,
    health_report,
    health_score,
    pack_index,
    profile_capture,
    serve_async_bench,
    serve_bench,
    trace_capture,
    update_bench,
)
from repro.obs import check_span_nesting, load_trace_events
from repro.experiments.tables import table1, theorem3_demo
from repro.external.memory import MemoryModel

#: name -> (runner, accepted scale kwargs, description)
EXPERIMENTS: dict[str, tuple[Callable[..., Table], tuple[str, ...], str]] = {
    "figure9": (figure9, ("fanout",), "bulk-loading I/Os + time, TIGER-like data"),
    "figure10": (figure10, ("max_n", "fanout"), "bulk-loading I/Os vs dataset size"),
    "figure11": (figure11, ("n", "fanout"), "TGS bulk-load cost by distribution"),
    "figure12": (figure12, ("n", "fanout", "queries"), "query cost vs area, Western"),
    "figure13": (figure13, ("n", "fanout", "queries"), "query cost vs area, Eastern"),
    "figure14": (figure14, ("max_n", "fanout", "queries"), "query cost vs dataset size"),
    "figure15": (figure15, ("n", "fanout", "queries", "panel"), "extreme synthetic data"),
    "table1": (table1, ("n", "fanout", "queries"), "CLUSTER line queries"),
    "theorem3": (theorem3_demo, ("n", "fanout", "queries"), "worst-case lower bound"),
    "knn": (knn_experiment, ("n", "fanout", "k", "queries"), "best-first kNN cost by variant"),
    "join": (join_experiment, ("n", "fanout"), "spatial-join cost by variant"),
    "point": (point_experiment, ("n", "fanout", "queries"), "stabbing-query cost by variant"),
}


def _add_serving_index_args(
    parser: argparse.ArgumentParser,
    obs: bool = True,
    metrics: bool = True,
    profile: bool = False,
) -> None:
    """Arguments shared by the serving subcommands: which index to
    serve (or how to pack the temporary one), the page-cache budget,
    mmap, the workload seed, and the observability flags — ``obs``
    gates ``--trace``, ``metrics`` gates the metrics/sampling trio,
    ``profile`` adds ``--profile``/``--cache-analytics``."""
    parser.add_argument(
        "--index",
        type=pathlib.Path,
        help=(
            "a `repro pack` output (single file or shard manifest, "
            "auto-detected); omitted: pack a temporary index first"
        ),
    )
    parser.add_argument(
        "--cache-pages",
        dest="cache_pages",
        type=int,
        default=256,
        help="decoded-page budget of the LRU page cache",
    )
    parser.add_argument(
        "--variant", default="PR", choices=["H", "H4", "PR", "TGS", "STR"],
        help="variant for the temporary index (no --index)",
    )
    parser.add_argument(
        "--dataset", default="tiger-east", choices=sorted(DATASETS),
        help="dataset for the temporary index (no --index)",
    )
    parser.add_argument(
        "--n", type=int, default=20_000,
        help="size of the temporary index (no --index)",
    )
    parser.add_argument(
        "--block-size", dest="block_size", type=int, default=4096,
        help="block size of the temporary index (no --index)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="shard count of the temporary index (no --index)",
    )
    parser.add_argument(
        "--mmap",
        action="store_true",
        help="serve the index file(s) from memory mappings",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    if obs:
        parser.add_argument(
            "--trace",
            type=pathlib.Path,
            metavar="OUT.jsonl",
            help=(
                "write sampled request spans as a Chrome trace-event "
                "file (load at ui.perfetto.dev)"
            ),
        )
    if profile:
        parser.add_argument(
            "--profile",
            type=pathlib.Path,
            metavar="OUT.collapsed",
            help=(
                "sample the run with the phase-attributed wall-clock "
                "profiler and write collapsed stacks "
                "(flamegraph.pl/speedscope input)"
            ),
        )
        parser.add_argument(
            "--cache-analytics",
            dest="cache_analytics",
            action="store_true",
            help=(
                "attach the ghost-LRU reuse-distance tracker to every "
                "page store: miss-ratio-vs-budget and working-set "
                "footnotes (`repro cache-report` for the full table)"
            ),
        )
    if metrics:
        parser.add_argument(
            "--metrics",
            type=pathlib.Path,
            metavar="OUT.prom",
            help="dump final metrics in Prometheus text format",
        )
        parser.add_argument(
            "--sample-rate",
            dest="sample_rate",
            type=float,
            default=1.0,
            help="head-sampling fraction of requests to trace (default 1.0)",
        )
        parser.add_argument(
            "--slow-ms",
            dest="slow_ms",
            type=float,
            help=(
                "slow-query threshold in ms: over-threshold requests are "
                "logged and always traced, even below --sample-rate"
            ),
        )


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the PR-tree paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument("--n", type=int, help="dataset size")
    run.add_argument("--max-n", dest="max_n", type=int, help="largest subset size")
    run.add_argument("--fanout", type=int, help="node capacity B")
    run.add_argument("--queries", type=int, help="queries per measurement point")
    run.add_argument("--k", type=int, help="neighbors per query (knn experiment)")
    run.add_argument(
        "--panel",
        choices=["all", "size", "aspect", "skewed"],
        help="figure15 panel selection",
    )
    run.add_argument("--memory", type=int, help="M in records (external loads)")
    run.add_argument("--seed", type=int, default=0, help="generation seed")
    run.add_argument(
        "--out", type=pathlib.Path, help="directory to write rendered tables to"
    )
    run.add_argument(
        "--markdown", action="store_true", help="emit markdown instead of text"
    )

    pack = sub.add_parser(
        "pack", help="bulk-load a variant and write an on-disk index file"
    )
    pack.add_argument("out", type=pathlib.Path, help="index file to write")
    pack.add_argument(
        "--variant",
        default="PR",
        choices=["H", "H4", "PR", "TGS", "STR"],
        help="bulk loader (default PR)",
    )
    pack.add_argument(
        "--dataset",
        default="tiger-east",
        choices=sorted(DATASETS),
        help="dataset family",
    )
    pack.add_argument("--n", type=int, default=50_000, help="dataset size")
    pack.add_argument(
        "--fanout",
        type=int,
        help="node capacity B (default: derived from --block-size)",
    )
    pack.add_argument(
        "--block-size",
        dest="block_size",
        type=int,
        default=4096,
        help="bytes per block (default 4096, the paper's)",
    )
    pack.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "split into this many Hilbert-range shard files behind a "
            "manifest written at OUT (default 1: a single index file)"
        ),
    )
    pack.add_argument("--seed", type=int, default=0, help="generation seed")

    serve = sub.add_parser(
        "serve-bench",
        help="drive a mixed batched workload through a paged index",
    )
    serve.add_argument(
        "--requests", type=int, default=1000, help="total requests"
    )
    serve.add_argument(
        "--batch-size",
        dest="batch_size",
        type=int,
        default=250,
        help="requests per batch",
    )
    serve.add_argument(
        "--workers", type=int, default=1, help="request-group threads"
    )
    serve.add_argument(
        "--batch-windows",
        dest="batch_windows",
        action="store_true",
        help=(
            "evaluate each batch's co-located window queries "
            "set-at-a-time per decoded page (docs/query-engine.md)"
        ),
    )
    serve.add_argument(
        "--explain",
        action="store_true",
        help=(
            "arm per-request plan capture: footnotes digest mean "
            "pruning efficiency per kind (disables --batch-windows)"
        ),
    )
    _add_serving_index_args(serve, profile=True)

    serve_async = sub.add_parser(
        "serve-async",
        help=(
            "open-loop latency-vs-arrival-rate sweep through the asyncio "
            "serving layer (queueing, admission control, percentiles)"
        ),
    )
    serve_async.add_argument(
        "--rates",
        default="200,500,1000,2000",
        help="comma-separated arrival rates (requests/second) to sweep",
    )
    serve_async.add_argument(
        "--requests", type=int, default=500, help="requests per rate"
    )
    serve_async.add_argument(
        "--write-frac",
        dest="write_frac",
        type=float,
        default=None,
        help=(
            "fraction of the stream that is inserts/deletes (default "
            "0.1 for a temporary index, 0 when --index is given — "
            "writes permanently mutate the served index, so mutating "
            "a user-supplied file requires asking for it)"
        ),
    )
    serve_async.add_argument(
        "--max-batch",
        dest="max_batch",
        type=int,
        default=64,
        help="most requests coalesced into one batch",
    )
    serve_async.add_argument(
        "--flush-ms",
        dest="flush_ms",
        type=float,
        default=2.0,
        help="max milliseconds a queued read waits before a partial batch ships",
    )
    serve_async.add_argument(
        "--max-queue-reads",
        dest="max_pending_reads",
        type=int,
        default=256,
        help="read-lane admission bound (queued requests)",
    )
    serve_async.add_argument(
        "--max-queue-writes",
        dest="max_pending_writes",
        type=int,
        default=64,
        help="write-lane admission bound (queued requests)",
    )
    serve_async.add_argument(
        "--admission",
        choices=["reject", "backpressure"],
        default="reject",
        help="behaviour at the admission bound",
    )
    serve_async.add_argument(
        "--executor-workers",
        dest="executor_workers",
        type=int,
        default=4,
        help="thread-pool width = concurrently executing read batches",
    )
    serve_async.add_argument(
        "--sync-every-n",
        dest="sync_every_n",
        type=int,
        default=None,
        metavar="N",
        help=(
            "group commit: sync mutated indexes after every N write "
            "batches, off the exclusive write window (docs/durability.md)"
        ),
    )
    serve_async.add_argument(
        "--sync-interval-ms",
        dest="sync_interval_ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "group commit: sync mutated indexes at most MS milliseconds "
            "after the first un-synced write batch"
        ),
    )
    serve_async.add_argument(
        "--metrics-port",
        dest="metrics_port",
        type=int,
        metavar="PORT",
        help=(
            "serve the live registry over HTTP at /metrics for the "
            "duration of the sweep (0 picks a free port; 127.0.0.1 only)"
        ),
    )
    serve_async.add_argument(
        "--batch-windows",
        dest="batch_windows",
        action="store_true",
        help=(
            "evaluate coalesced window queries set-at-a-time per "
            "decoded page in the read servers (docs/query-engine.md)"
        ),
    )
    serve_async.add_argument(
        "--explain",
        action="store_true",
        help=(
            "arm per-request plan capture: repro_explain_* metric "
            "families and plan summaries on slow-log entries"
        ),
    )
    serve_async.add_argument(
        "--health-interval",
        dest="health_interval",
        type=float,
        metavar="SECONDS",
        help=(
            "export the repro_health_* tree-quality families with each "
            "metrics snapshot, re-walking the index at most every "
            "SECONDS seconds"
        ),
    )
    _add_serving_index_args(serve_async, profile=True)

    trace = sub.add_parser(
        "trace",
        help=(
            "capture a Chrome trace-event file (Perfetto-loadable) from "
            "a live async workload"
        ),
    )
    trace.add_argument(
        "out", type=pathlib.Path, help="trace-event file to write (.jsonl)"
    )
    trace.add_argument(
        "--requests", type=int, default=200, help="requests to trace"
    )
    trace.add_argument(
        "--rate",
        type=float,
        default=500.0,
        help="open-loop arrival rate (requests/second)",
    )
    trace.add_argument(
        "--write-frac",
        dest="write_frac",
        type=float,
        default=None,
        help=(
            "fraction of the stream that is inserts/deletes (default "
            "0.1 for a temporary index, 0 when --index is given)"
        ),
    )
    _add_serving_index_args(trace, obs=False)

    profile = sub.add_parser(
        "profile",
        help=(
            "capture a collapsed-stack CPU profile (flamegraph.pl/"
            "speedscope input) from a live async workload"
        ),
    )
    profile.add_argument(
        "out",
        type=pathlib.Path,
        help="collapsed-stack file to write (.collapsed)",
    )
    profile.add_argument(
        "--requests", type=int, default=400, help="requests to profile"
    )
    profile.add_argument(
        "--rate",
        type=float,
        default=500.0,
        help="open-loop arrival rate (requests/second)",
    )
    profile.add_argument(
        "--write-frac",
        dest="write_frac",
        type=float,
        default=None,
        help=(
            "fraction of the stream that is inserts/deletes (default "
            "0.1 for a temporary index, 0 when --index is given)"
        ),
    )
    _add_serving_index_args(profile, metrics=False)

    cache = sub.add_parser(
        "cache-report",
        help=(
            "ghost-LRU page-cache analytics: miss-ratio-vs-budget "
            "curve, access-frequency histogram, working-set sizes"
        ),
    )
    cache.add_argument(
        "--requests", type=int, default=2000, help="total requests"
    )
    cache.add_argument(
        "--batch-size",
        dest="batch_size",
        type=int,
        default=250,
        help="requests per batch",
    )
    cache.add_argument(
        "--workers", type=int, default=1, help="request-group threads"
    )
    _add_serving_index_args(cache, obs=False, metrics=False)

    health = sub.add_parser(
        "health",
        help=(
            "tree-quality analytics for a packed index: per-level "
            "occupancy/overlap/dead space and the degradation score "
            "against the pack-time baseline"
        ),
    )
    health.add_argument(
        "--index",
        type=pathlib.Path,
        required=True,
        help="a `repro pack` output (single file or shard manifest)",
    )
    health.add_argument(
        "--cache-pages",
        dest="cache_pages",
        type=int,
        default=64,
        help="decoded-page budget while walking (reads are quiet)",
    )
    health.add_argument(
        "--mmap",
        action="store_true",
        help="open the index file(s) from memory mappings",
    )
    health.add_argument(
        "--score-only",
        dest="score_only",
        action="store_true",
        help=(
            "print only the degradation score (or 'none' when the "
            "index has no baseline) — for scripts and CI"
        ),
    )

    explain = sub.add_parser(
        "explain",
        help=(
            "run a small workload with per-query plan capture and "
            "render the plans (nodes visited, pruning efficiency vs "
            "the leaf-I/O lower bound, physical reads)"
        ),
    )
    explain.add_argument(
        "--kind",
        default="window",
        choices=["window", "count", "containment", "point", "knn", "mixed"],
        help="request kind to explain (default window)",
    )
    explain.add_argument(
        "--queries", type=int, default=8, help="requests to run"
    )
    explain.add_argument(
        "--area-percent",
        dest="area_percent",
        type=float,
        default=1.0,
        help="query-window area as a percent of the data MBR",
    )
    explain.add_argument(
        "--k", type=int, default=10, help="neighbors per kNN request"
    )
    _add_serving_index_args(explain, metrics=False)

    update = sub.add_parser(
        "update-bench",
        help=(
            "measure dynamic inserts/deletes on a packed index "
            "(dirty-page write-back) and post-update query degradation"
        ),
    )
    update.add_argument(
        "--updates", type=int, default=1000, help="total inserts + deletes"
    )
    update.add_argument(
        "--queries",
        type=int,
        default=100,
        help="window queries per measurement phase",
    )
    update.add_argument(
        "--batch-size",
        dest="batch_size",
        type=int,
        default=250,
        help="updates per server batch",
    )
    update.add_argument(
        "--cache-pages",
        dest="cache_pages",
        type=int,
        default=256,
        help="decoded-page budget of the LRU page cache",
    )
    update.add_argument(
        "--variant", default="PR", choices=["H", "H4", "PR", "TGS", "STR"],
        help="bulk loader for the packed index (default PR)",
    )
    update.add_argument(
        "--dataset", default="tiger-east", choices=sorted(DATASETS),
        help="dataset family",
    )
    update.add_argument("--n", type=int, default=20_000, help="dataset size")
    update.add_argument(
        "--block-size", dest="block_size", type=int, default=4096,
        help="bytes per block (default 4096, the paper's)",
    )
    update.add_argument("--seed", type=int, default=0, help="workload seed")

    crash = sub.add_parser(
        "crash-bench",
        help=(
            "crash-recovery matrix: kill a scripted update workload at "
            "every write offset, reopen, require the last committed "
            "state back (exit 1 on any failure)"
        ),
    )
    crash.add_argument("--n", type=int, default=250, help="packed dataset size")
    crash.add_argument(
        "--updates", type=int, default=30, help="inserts+deletes to replay"
    )
    crash.add_argument(
        "--sync-every", dest="sync_every", type=int, default=10,
        help="updates per sync() commit point",
    )
    crash.add_argument("--fanout", type=int, default=12)
    crash.add_argument(
        "--block-size", dest="block_size", type=int, default=512,
        help="bytes per block (small blocks = more write offsets)",
    )
    crash.add_argument(
        "--shards", type=int, default=4,
        help="shard count for the family variant",
    )
    crash.add_argument(
        "--modes", default="clean,torn,omit",
        help="comma-separated subset of clean,torn,omit",
    )
    crash.add_argument(
        "--variants", default="file,mmap,shard",
        help="comma-separated subset of file,mmap,shard",
    )
    crash.add_argument(
        "--stride", type=int, default=1,
        help="test every k-th write offset (1 = exhaustive)",
    )
    crash.add_argument("--seed", type=int, default=0, help="injector seed")
    return parser


def _kwargs_for(name: str, args: argparse.Namespace) -> dict:
    _, accepted, _ = EXPERIMENTS[name]
    kwargs: dict = {"seed": args.seed}
    for key in accepted:
        value = getattr(args, key, None)
        if value is not None:
            kwargs[key] = value
    if args.memory is not None and name in ("figure9", "figure10", "figure11"):
        fanout = args.fanout or 16
        kwargs["memory"] = MemoryModel(
            memory_records=args.memory, block_records=fanout
        )
    return kwargs


def _emit(table: Table, name: str, args: argparse.Namespace) -> None:
    text = table.to_markdown() if args.markdown else table.render()
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        suffix = "md" if args.markdown else "txt"
        path = args.out / f"{name}.{suffix}"
        path.write_text(text + "\n")
        print(f"wrote {path}")
    else:
        print(text)
        print()


def _check_trace_health(
    out: pathlib.Path, requests: int, sample_rate: float
) -> int:
    """Validate a just-captured trace; the ``repro trace`` exit code.

    Two machine-checkable invariants guard the capture: every (pid,
    tid) row's duration events must nest properly
    (:func:`~repro.obs.check_span_nesting` — partial overlap means
    broken timestamps), and at full head sampling every offered request
    must appear as a ``cat="request"`` summary event (fewer means
    requests were dropped from the trace — or rejected by admission
    control, which the default rate/bounds never hit).  A failing
    capture still leaves the file on disk for inspection; the non-zero
    exit makes ``repro trace`` usable as a CI smoke check.
    """
    events = load_trace_events(out)
    errors = check_span_nesting(events)
    for error in errors[:10]:
        print(f"trace check: {error}", file=sys.stderr)
    if errors:
        print(
            f"trace check: {len(errors)} span-nesting violation(s)",
            file=sys.stderr,
        )
        return 1
    if sample_rate >= 1.0:
        traced = sum(
            1 for event in events if event.get("cat") == "request"
        )
        if traced < requests:
            print(
                f"trace check: only {traced} of {requests} requests "
                "covered at sample-rate 1.0",
                file=sys.stderr,
            )
            return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (_, _, description) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        return 0

    if args.command == "pack":
        table = pack_index(
            args.out,
            variant=args.variant,
            dataset=args.dataset,
            n=args.n,
            fanout=args.fanout,
            block_size=args.block_size,
            seed=args.seed,
            shards=args.shards,
        )
        print(table.render())
        return 0

    if args.command == "serve-bench":
        table = serve_bench(
            index=args.index,
            requests=args.requests,
            batch_size=args.batch_size,
            cache_pages=args.cache_pages,
            workers=args.workers,
            variant=args.variant,
            dataset=args.dataset,
            n=args.n,
            block_size=args.block_size,
            seed=args.seed,
            shards=args.shards,
            mmap=args.mmap,
            trace=args.trace,
            metrics=args.metrics,
            sample_rate=args.sample_rate,
            slow_ms=args.slow_ms,
            profile=args.profile,
            cache_analytics=args.cache_analytics,
            batch_windows=args.batch_windows,
            explain=args.explain,
        )
        print(table.render())
        return 0

    if args.command == "serve-async":
        try:
            rates = tuple(
                float(rate) for rate in args.rates.split(",") if rate.strip()
            )
        except ValueError:
            print(f"invalid --rates {args.rates!r}", file=sys.stderr)
            return 2
        if not rates:
            print("--rates lists no rates", file=sys.stderr)
            return 2
        if any(rate <= 0 for rate in rates):
            print(
                f"--rates must be positive, got {args.rates!r}",
                file=sys.stderr,
            )
            return 2
        write_frac = args.write_frac
        if write_frac is None:
            # A temporary index is disposable; a user-supplied one must
            # not be mutated without an explicit --write-frac.
            write_frac = 0.1 if args.index is None else 0.0
        table = serve_async_bench(
            index=args.index,
            rates=rates,
            requests=args.requests,
            write_frac=write_frac,
            max_batch=args.max_batch,
            flush_ms=args.flush_ms,
            max_pending_reads=args.max_pending_reads,
            max_pending_writes=args.max_pending_writes,
            admission=args.admission,
            executor_workers=args.executor_workers,
            sync_every_n=args.sync_every_n,
            sync_interval_s=(
                args.sync_interval_ms / 1000.0
                if args.sync_interval_ms is not None
                else None
            ),
            cache_pages=args.cache_pages,
            variant=args.variant,
            dataset=args.dataset,
            n=args.n,
            block_size=args.block_size,
            seed=args.seed,
            shards=args.shards,
            mmap=args.mmap,
            trace=args.trace,
            metrics=args.metrics,
            sample_rate=args.sample_rate,
            slow_ms=args.slow_ms,
            profile=args.profile,
            cache_analytics=args.cache_analytics,
            metrics_port=args.metrics_port,
            batch_windows=args.batch_windows,
            explain=args.explain,
            health_interval=args.health_interval,
        )
        print(table.render())
        return 0

    if args.command == "trace":
        write_frac = args.write_frac
        if write_frac is None:
            write_frac = 0.1 if args.index is None else 0.0
        table = trace_capture(
            args.out,
            index=args.index,
            requests=args.requests,
            rate=args.rate,
            write_frac=write_frac,
            sample_rate=args.sample_rate,
            slow_ms=args.slow_ms,
            metrics=args.metrics,
            cache_pages=args.cache_pages,
            variant=args.variant,
            dataset=args.dataset,
            n=args.n,
            block_size=args.block_size,
            seed=args.seed,
            shards=args.shards,
            mmap=args.mmap,
        )
        print(table.render())
        print(f"wrote {args.out}")
        return _check_trace_health(
            args.out, args.requests, args.sample_rate
        )

    if args.command == "profile":
        write_frac = args.write_frac
        if write_frac is None:
            write_frac = 0.1 if args.index is None else 0.0
        table = profile_capture(
            args.out,
            index=args.index,
            requests=args.requests,
            rate=args.rate,
            write_frac=write_frac,
            trace=args.trace,
            cache_pages=args.cache_pages,
            variant=args.variant,
            dataset=args.dataset,
            n=args.n,
            block_size=args.block_size,
            seed=args.seed,
            shards=args.shards,
            mmap=args.mmap,
        )
        print(table.render())
        print(f"wrote {args.out}")
        return 0

    if args.command == "cache-report":
        table = cache_report(
            index=args.index,
            requests=args.requests,
            batch_size=args.batch_size,
            cache_pages=args.cache_pages,
            workers=args.workers,
            variant=args.variant,
            dataset=args.dataset,
            n=args.n,
            block_size=args.block_size,
            seed=args.seed,
            shards=args.shards,
            mmap=args.mmap,
        )
        print(table.render())
        return 0

    if args.command == "health":
        if args.score_only:
            score = health_score(
                args.index, cache_pages=args.cache_pages, mmap=args.mmap
            )
            print("none" if score is None else f"{score:.9f}")
            return 0
        table = health_report(
            args.index, cache_pages=args.cache_pages, mmap=args.mmap
        )
        print(table.render())
        return 0

    if args.command == "explain":
        table = explain_report(
            index=args.index,
            kind=args.kind,
            queries=args.queries,
            area_percent=args.area_percent,
            k=args.k,
            cache_pages=args.cache_pages,
            variant=args.variant,
            dataset=args.dataset,
            n=args.n,
            block_size=args.block_size,
            seed=args.seed,
            shards=args.shards,
            mmap=args.mmap,
            trace=args.trace,
        )
        print(table.render())
        if args.trace is not None:
            print(f"wrote {args.trace}")
            return _check_trace_health(args.trace, args.queries, 1.0)
        return 0

    if args.command == "update-bench":
        table = update_bench(
            updates=args.updates,
            queries=args.queries,
            batch_size=args.batch_size,
            cache_pages=args.cache_pages,
            variant=args.variant,
            dataset=args.dataset,
            n=args.n,
            block_size=args.block_size,
            seed=args.seed,
        )
        print(table.render())
        return 0

    if args.command == "crash-bench":
        from repro.experiments.crashbench import crash_matrix

        table = crash_matrix(
            n=args.n,
            updates=args.updates,
            fanout=args.fanout,
            block_size=args.block_size,
            shards=args.shards,
            sync_every=args.sync_every,
            modes=tuple(m for m in args.modes.split(",") if m),
            variants=tuple(v for v in args.variants.split(",") if v),
            stride=args.stride,
            seed=args.seed,
        )
        print(table.render())
        return 1 if sum(table.column("failures")) else 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner, _, _ = EXPERIMENTS[name]
        table = runner(**_kwargs_for(name, args))
        _emit(table, name, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
