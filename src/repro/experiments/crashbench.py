"""Crash-recovery matrix: kill the process at every write offset.

The shadow-header commit protocol (``docs/durability.md``) claims that
*any* crash — mid data block, mid map block, mid header slot, even a
torn header write — rolls the index back to its last committed state.
This module turns that claim into an exhaustive, deterministic check:

1. **Golden run** — replay a scripted update workload (interleaved
   inserts, deletes, ``sync()`` calls) against a freshly packed index
   with a counting :class:`~repro.storage.faults.FaultInjector`
   attached, recording the total number of physical writes ``W`` and
   the write indexes of every durable commit point (header-slot flips
   for a single file, manifest renames for a sharded family).
2. **Oracle** — replay the same workload without faults, snapshotting
   the full index contents right after every ``sync()``.  Snapshot
   ``j`` is the state a crash between commit ``j`` and commit ``j+1``
   must roll back to.
3. **Matrix** — for every crash mode and every write offset ``c`` in
   ``1..W`` (or a stride-sampled subset), copy the pristine index,
   replay the workload under an injector scripted to die at write
   ``c``, then *reopen* the files, run the full structural validator
   (:func:`~repro.rtree.validate.validate_rtree`) and compare the
   surviving contents against the oracle snapshot the commit protocol
   promises: for a ``clean`` crash the ``c``-th write reached the disk,
   so commits at index ``c`` count as durable (``j = #{ci <= c}``); for
   ``torn``/``omit`` the ``c``-th write was lost (``j = #{ci < c}``).

Every cell must recover — an unreadable file, a failed validation or
contents that match *no* committed state (a silently-wrong survivor) is
a failure, and :func:`crash_matrix` reports it per variant/mode.
``tools/crashtest.py`` and ``repro crash-bench`` drive this as a CI
gate.
"""

from __future__ import annotations

import pathlib
import shutil
import tempfile
from typing import Any, Callable

from repro.experiments.report import Table
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.rtree.validate import RTreeInvariantError, validate_rtree
from repro.storage import (
    FaultInjector,
    PagedTree,
    ShardedTree,
    SimulatedCrash,
    pack_tree,
    shard_pack,
)

__all__ = ["crash_matrix", "CRASH_VARIANTS"]

#: Index shapes the matrix can exercise.
CRASH_VARIANTS = ("file", "mmap", "shard")

_EVERYTHING = Rect((-1e12, -1e12), (1e12, 1e12))


def _dataset(n: int) -> list[tuple[Rect, int]]:
    """A deterministic diagonal strip of ``n`` unit squares."""
    return [
        (Rect((float(i), float(i)), (i + 1.0, i + 1.0)), i) for i in range(n)
    ]


def _contents(tree) -> list[tuple[tuple, tuple, Any]]:
    """The full stored contents, canonically ordered for comparison."""
    return sorted(
        (tuple(r.lo), tuple(r.hi), v) for r, v in tree.query(_EVERYTHING)
    )


def _workload(tree, n: int, updates: int, sync_every: int) -> None:
    """Interleaved inserts and deletes with periodic commits.

    Deterministic: insert ``updates`` rectangles far from the packed
    strip, delete every 7th original, sync every ``sync_every``
    updates and once at the end.
    """
    for i in range(updates):
        tree.insert(
            Rect((1000.0 + i, float(i)), (1001.0 + i, i + 1.0)), 10_000 + i
        )
        if i % 7 == 0 and i < n:
            tree.delete(Rect((float(i), float(i)), (i + 1.0, i + 1.0)), i)
        if i % sync_every == sync_every - 1:
            tree.sync()
    tree.sync()


def _copy_index(src_dir: pathlib.Path, dst_dir: pathlib.Path) -> None:
    if dst_dir.exists():
        shutil.rmtree(dst_dir)
    shutil.copytree(src_dir, dst_dir)


class _Variant:
    """One index shape: how to pack, open, validate and commit-tag it."""

    def __init__(
        self,
        name: str,
        work: pathlib.Path,
        data: list[tuple[Rect, int]],
        fanout: int,
        block_size: int,
        shards: int,
    ) -> None:
        self.name = name
        self.mmap = name == "mmap"
        self.sharded = name == "shard"
        self.commit_tag = "manifest" if self.sharded else "store"
        self.golden = work / f"golden-{name}"
        self.golden.mkdir()
        tree = build_prtree(BlockStore(), data, fanout=fanout)
        if self.sharded:
            self.index_name = "index.manifest"
            shard_pack(
                tree,
                self.golden / self.index_name,
                shards=shards,
                block_size=block_size,
            )
        else:
            self.index_name = "index.pack"
            pack_tree(tree, self.golden / self.index_name, block_size=block_size)

    def open(
        self,
        directory: pathlib.Path,
        values: dict[int, Any] | Callable[[int], Any],
        injector: FaultInjector | None = None,
        readonly: bool = False,
    ):
        path = directory / self.index_name
        if self.sharded:
            return ShardedTree.open(
                path, values=values, readonly=readonly, injector=injector
            )
        return PagedTree.open(
            path,
            values=values,
            readonly=readonly,
            mmap=self.mmap,
            injector=injector,
        )

    def validate(self, tree) -> None:
        if self.sharded:
            for shard in tree.shards:
                validate_rtree(shard)
            if sum(shard.size for shard in tree.shards) != tree.size:
                raise RTreeInvariantError(
                    "manifest size disagrees with the shard sizes"
                )
        else:
            validate_rtree(tree)


def crash_matrix(
    n: int = 250,
    updates: int = 30,
    fanout: int = 12,
    block_size: int = 512,
    shards: int = 4,
    sync_every: int = 10,
    modes: tuple[str, ...] = ("clean", "torn", "omit"),
    variants: tuple[str, ...] = CRASH_VARIANTS,
    stride: int = 1,
    seed: int = 0,
) -> Table:
    """Run the crash matrix; the returned table's ``failures`` column
    must be all zeros for the commit protocol to hold.

    Parameters
    ----------
    n, updates, fanout, block_size, shards, sync_every:
        Workload shape: a packed ``n``-rectangle index (fanout
        ``fanout``, ``block_size``-byte blocks; ``shards`` files for
        the sharded variant) receives ``updates`` interleaved
        inserts/deletes with a ``sync()`` every ``sync_every`` updates.
    modes:
        Crash modes per write offset (``clean``/``torn``/``omit``).
    variants:
        Index shapes from :data:`CRASH_VARIANTS` — plain file, mmap,
        sharded family.
    stride:
        Test every ``stride``-th write offset (1 = exhaustive).
    seed:
        Seeds each injector's torn-write cut points (offset by the
        crash index so every cell cuts differently but remains
        deterministic).
    """
    unknown = set(variants) - set(CRASH_VARIANTS)
    if unknown:
        raise ValueError(
            f"unknown crash variants {sorted(unknown)}; "
            f"choose from {CRASH_VARIANTS}"
        )
    if stride < 1:
        raise ValueError("stride must be >= 1")
    data = _dataset(n)
    base_values = {i: i for i in range(n)}
    # Inserted object ids continue from the descriptor's high-water
    # mark, so the full table is known up front for reopen validation.
    full_values = dict(base_values)
    full_values.update({n + i: 10_000 + i for i in range(updates)})

    table = Table(
        title="Crash-recovery matrix: recover + match the last commit",
        headers=[
            "variant",
            "mode",
            "writes",
            "commits",
            "points",
            "recovered",
            "matched",
            "failures",
        ],
    )
    total_failures = 0
    with tempfile.TemporaryDirectory(prefix="crashbench-") as tmp:
        work = pathlib.Path(tmp)
        for variant_name in variants:
            variant = _Variant(
                variant_name, work, data, fanout, block_size, shards
            )

            # Golden run: learn the write count and the commit points.
            run_dir = work / "run"
            _copy_index(variant.golden, run_dir)
            injector = FaultInjector(seed=seed)
            with variant.open(run_dir, dict(base_values), injector) as tree:
                _workload(tree, n, updates, sync_every)
            writes = injector.writes
            commits = injector.commit_points(variant.commit_tag)
            if not commits:
                raise RuntimeError(
                    f"golden run recorded no {variant.commit_tag!r} commits"
                )

            # Oracle: contents right after every sync, plus the packed
            # baseline a crash before the first commit rolls back to.
            oracle_dir = work / "oracle"
            _copy_index(variant.golden, oracle_dir)
            snapshots: list[list] = []
            tree = variant.open(oracle_dir, dict(base_values))
            try:
                plain_sync = tree.sync

                def snap_sync() -> int:
                    flushed = plain_sync()
                    snapshots.append(_contents(tree))
                    return flushed

                tree.sync = snap_sync  # type: ignore[method-assign]
                _workload(tree, n, updates, sync_every)
                tree.sync = plain_sync  # type: ignore[method-assign]
            finally:
                tree.close()
            with variant.open(
                variant.golden, dict(full_values), readonly=True
            ) as packed:
                baseline = _contents(packed)

            for mode in modes:
                points = recovered = matched = 0
                failures: list[str] = []
                for crash_at in range(1, writes + 1, stride):
                    points += 1
                    cell = f"{variant_name}/{mode}@{crash_at}"
                    crash_dir = work / "crash"
                    _copy_index(variant.golden, crash_dir)
                    injector = FaultInjector(
                        crash_after=crash_at, mode=mode, seed=seed + crash_at
                    )
                    tree = variant.open(crash_dir, dict(base_values), injector)
                    try:
                        _workload(tree, n, updates, sync_every)
                        tree.close()
                    except SimulatedCrash:
                        try:
                            tree.close()
                        except SimulatedCrash:
                            pass
                    else:
                        failures.append(f"{cell}: workload never crashed")
                        continue
                    # Which committed state must the survivor show?
                    if mode == "clean":
                        committed = sum(1 for ci in commits if ci <= crash_at)
                    else:
                        committed = sum(1 for ci in commits if ci < crash_at)
                    expected = (
                        snapshots[committed - 1] if committed else baseline
                    )
                    try:
                        with variant.open(
                            crash_dir, dict(full_values)
                        ) as survivor:
                            variant.validate(survivor)
                            got = _contents(survivor)
                    except Exception as exc:  # any failure to recover
                        failures.append(f"{cell}: reopen failed: {exc!r}")
                        continue
                    recovered += 1
                    if got == expected:
                        matched += 1
                    else:
                        failures.append(
                            f"{cell}: contents do not match commit "
                            f"#{committed} ({len(got)} vs {len(expected)} "
                            "entries)"
                        )
                table.add_row(
                    variant_name,
                    mode,
                    writes,
                    len(commits),
                    points,
                    recovered,
                    matched,
                    len(failures),
                )
                for failure in failures[:5]:
                    table.add_note(failure)
                total_failures += len(failures)
    table.add_note(
        f"workload: n={n} updates={updates} sync_every={sync_every} "
        f"fanout={fanout} block_size={block_size} shards={shards} "
        f"stride={stride} seed={seed}"
    )
    table.add_note(
        "clean: crash write is durable (j = #commits <= c); torn/omit: "
        "it is lost (j = #commits < c)"
    )
    table.add_note(f"total failures: {total_failures}")
    return table
