"""Table 1 and the Theorem 3 demonstration.

Table 1 (paper Section 3.3) is the headline robustness result: on the
CLUSTER dataset with thin horizontal queries through all clusters, a
query returning ~0.3 % of the points makes

* H visit 37 % of the R-tree's leaves,
* H4 visit 94 %,
* TGS visit 25 %,
* the PR-tree visit 1.2 % —

"the PR-tree outperforms the other indexes by well over an order of
magnitude."

The Theorem 3 demonstration measures the same phenomenon on the
adversarial bit-reversal dataset of Section 2.4, where the heuristics
provably visit Θ(N/B) leaves for a query with empty output while the
PR-tree stays within its O(√(N/B)) bound.
"""

from __future__ import annotations

from repro.datasets.synthetic import cluster_dataset
from repro.datasets.worstcase import worstcase_dataset, worstcase_query
from repro.experiments.harness import (
    VARIANT_ORDER,
    build_variant,
    measure_workload,
)
from repro.experiments.report import Table
from repro.prtree.prtree import prtree_query_bound
from repro.rtree.query import QueryEngine
from repro.workloads.queries import cluster_line_queries


def table1(
    n: int = 20_000,
    fanout: int = 16,
    queries: int = 100,
    seed: int = 0,
) -> Table:
    """Table 1: thin line queries through the CLUSTER dataset.

    Reports per-variant mean leaf I/Os and the fraction of all leaves a
    query visits, matching the paper's two rows.
    """
    clusters = max(10, n // 1000)
    data = cluster_dataset(n, clusters=clusters, seed=seed)
    workload = cluster_line_queries(clusters, count=queries, seed=seed)
    table = Table(
        title="Table 1: query performance on CLUSTER",
        headers=["variant", "avg_ios", "visited_%", "leaves", "avg_T"],
    )
    for variant in VARIANT_ORDER:
        tree = build_variant(variant, data, fanout)
        metrics = measure_workload(tree, workload)
        table.add_row(
            variant,
            metrics.avg_ios,
            100.0 * metrics.visited_fraction,
            metrics.leaf_count,
            metrics.avg_reported,
        )
    table.add_note(
        f"n={n}, clusters={clusters}, B={fanout} "
        "(paper: 10M points, 10000 clusters, B=113; "
        "paper visited-%: H 37, H4 94, PR 1.2, TGS 25)"
    )
    return table


def theorem3_demo(
    n: int = 16_384,
    fanout: int = 16,
    queries: int = 20,
    seed: int = 0,
) -> Table:
    """Theorem 3: the adversarial dataset with empty-output queries.

    Every heuristic variant should visit Θ(N/B) leaves; the PR-tree
    should stay under its ``prtree_query_bound`` with T = 0.
    """
    data = worstcase_dataset(n, fanout)
    actual_n = len(data)
    table = Table(
        title="Theorem 3: empty-output query on the worst-case dataset",
        headers=["variant", "avg_leaf_ios", "leaves", "visited_%", "bound"],
    )
    for variant in VARIANT_ORDER:
        tree = build_variant(variant, data, fanout)
        engine = QueryEngine(tree)
        total = 0
        for q in range(queries):
            window = worstcase_query(actual_n, fanout, seed=seed + q)
            matches, stats = engine.query(window)
            if matches:
                raise AssertionError(
                    "worst-case query unexpectedly reported output"
                )
            total += stats.leaf_reads
        bound = prtree_query_bound(actual_n, fanout, reported=0)
        leaves = tree.leaf_count()
        avg = total / queries
        table.add_row(variant, avg, leaves, 100.0 * avg / leaves, bound)
    table.add_note(
        f"n={actual_n}, B={fanout}; bound column = c*(sqrt(N/B)+1) with c=6"
    )
    return table
