"""Shared machinery for the evaluation experiments.

The paper compares four bulk-loaded indexes — H, H4, PR and TGS — under
identical physical assumptions; this module pins those assumptions down
once:

* :data:`QUERY_VARIANTS` / :data:`EXTERNAL_VARIANTS` — the loader
  registries keyed by the paper's names.
* :func:`build_variant` — build any variant on a fresh simulated disk.
* :func:`measure_workload` — run a query workload with internal-node
  caching and report the paper's metric: blocks read divided by the
  output lower bound T/B ("the performance is given as the number of
  blocks read divided by the output size T/B").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.bulk.hilbert import (
    build_hilbert,
    build_hilbert4,
    build_hilbert_external,
    build_hilbert4_external,
)
from repro.bulk.str_pack import build_str
from repro.bulk.tgs import build_tgs, build_tgs_external
from repro.external.memory import MemoryModel
from repro.external.stream import BlockStream
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.gridbuild import build_prtree_external
from repro.prtree.prtree import build_prtree
from repro.bulk.base import BuildStats
from repro.queries.join import SpatialJoinEngine
from repro.queries.knn import KNNEngine
from repro.queries.point import PointQueryEngine
from repro.rtree.query import QueryEngine
from repro.rtree.tree import RTree
from repro.workloads.knn import KNNWorkload
from repro.workloads.queries import QueryWorkload

Dataset = Sequence[tuple[Rect, Any]]

#: In-memory loaders for the query experiments, keyed by paper name.
QUERY_VARIANTS: dict[str, Callable[[BlockStore, Dataset, int], RTree]] = {
    "H": build_hilbert,
    "H4": build_hilbert4,
    "PR": build_prtree,
    "TGS": build_tgs,
}

#: Extra loaders available in ablations (not in the paper's comparison).
EXTRA_VARIANTS: dict[str, Callable[[BlockStore, Dataset, int], RTree]] = {
    "STR": build_str,
}

#: External (I/O-counted) loaders for the bulk-loading experiments.
EXTERNAL_VARIANTS: dict[str, Callable[..., tuple[RTree, BuildStats]]] = {
    "H": build_hilbert_external,
    "H4": build_hilbert4_external,
    "PR": build_prtree_external,
    "TGS": build_tgs_external,
}

#: The order variants appear in result tables, as in the paper's legends.
VARIANT_ORDER = ["H", "H4", "PR", "TGS"]


def build_variant(name: str, data: Dataset, fanout: int) -> RTree:
    """Bulk-load one named variant on a fresh block store."""
    try:
        builder = QUERY_VARIANTS.get(name) or EXTRA_VARIANTS[name]
    except KeyError:
        raise ValueError(
            f"unknown variant {name!r}; choose from "
            f"{sorted(QUERY_VARIANTS | EXTRA_VARIANTS)}"
        ) from None
    return builder(BlockStore(), data, fanout)


def build_variant_external(
    name: str, data: Dataset, fanout: int, memory: MemoryModel
) -> tuple[RTree, BuildStats]:
    """Bulk-load one variant externally, counting I/Os.

    The input is first written to a stream (the "input file on disk",
    excluded from the measured cost exactly as the paper excludes reading
    the TIGER distribution media).
    """
    try:
        builder = EXTERNAL_VARIANTS[name]
    except KeyError:
        raise ValueError(
            f"unknown external variant {name!r}; choose from "
            f"{sorted(EXTERNAL_VARIANTS)}"
        ) from None
    store = BlockStore()
    input_stream = BlockStream.from_records(store, list(data), memory.block_records)
    return builder(store, input_stream, fanout, memory)


@dataclass(frozen=True)
class WorkloadMetrics:
    """Aggregated query-workload measurements for one tree.

    ``cost_ratio`` is the paper's y-axis: total leaf blocks read divided
    by total ⌈T/B⌉-ish output lower bound (computed as T/B exactly, like
    the figures' "number of blocks read divided by the output size T/B").
    """

    queries: int
    leaf_ios: int
    reported: int
    leaf_count: int
    fanout: int

    @property
    def cost_ratio(self) -> float:
        """Leaf I/Os over the output bound T/B (1.0 = unbeatable)."""
        bound = self.reported / self.fanout
        return self.leaf_ios / bound if bound > 0 else float("inf")

    @property
    def avg_ios(self) -> float:
        """Mean leaf I/Os per query."""
        return self.leaf_ios / self.queries if self.queries else 0.0

    @property
    def avg_reported(self) -> float:
        """Mean output size per query."""
        return self.reported / self.queries if self.queries else 0.0

    @property
    def visited_fraction(self) -> float:
        """Mean fraction of all leaves visited per query (Table 1 row)."""
        if not self.queries or not self.leaf_count:
            return 0.0
        return self.leaf_ios / (self.queries * self.leaf_count)


def measure_workload(tree: RTree, workload: QueryWorkload) -> WorkloadMetrics:
    """Run every window in the workload and aggregate the paper metrics.

    A single engine is reused so internal nodes stay cached across
    queries (the paper's setup); reported cost is leaf reads only.
    """
    engine = QueryEngine(tree, cache_internal=True)
    for window in workload:
        engine.query(window)
    totals = engine.totals
    return WorkloadMetrics(
        queries=totals.queries,
        leaf_ios=totals.leaf_reads,
        reported=totals.reported,
        leaf_count=tree.leaf_count(),
        fanout=tree.fanout,
    )


# ----------------------------------------------------------------------
# Operator workloads (repro.queries): kNN, spatial join, point queries
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class OperatorMetrics:
    """Aggregated per-query measurements for one operator workload.

    Shared by the kNN and point-query measurement loops (``k`` is None
    for operators without a k parameter).
    """

    queries: int
    leaf_ios: int
    internal_reads: int
    reported: int
    leaf_count: int
    k: int | None = None

    @property
    def avg_ios(self) -> float:
        """Mean leaf I/Os per query."""
        return self.leaf_ios / self.queries if self.queries else 0.0

    @property
    def visited_fraction(self) -> float:
        """Mean fraction of all leaves read per query."""
        if not self.queries or not self.leaf_count:
            return 0.0
        return self.leaf_ios / (self.queries * self.leaf_count)


def _operator_metrics(engine, tree: RTree, k: int | None = None) -> OperatorMetrics:
    """Collect a warm-cache engine's totals into :class:`OperatorMetrics`."""
    totals = engine.totals
    return OperatorMetrics(
        queries=totals.queries,
        leaf_ios=totals.leaf_reads,
        internal_reads=totals.internal_reads,
        reported=totals.reported,
        leaf_count=tree.leaf_count(),
        k=k,
    )


def measure_knn_workload(tree: RTree, workload: KNNWorkload) -> OperatorMetrics:
    """Run every kNN query in the workload on a shared warm-cache engine."""
    engine = KNNEngine(tree, cache_internal=True)
    for point in workload:
        engine.knn(point, workload.k)
    return _operator_metrics(engine, tree, k=workload.k)


@dataclass(frozen=True)
class JoinMetrics:
    """Measurements for one spatial join between two trees."""

    pairs: int
    leaf_ios_left: int
    leaf_ios_right: int
    internal_reads: int
    node_pairs: int
    leaf_count_left: int
    leaf_count_right: int

    @property
    def leaf_ios(self) -> int:
        """Total leaf reads, both trees (the paper-convention cost)."""
        return self.leaf_ios_left + self.leaf_ios_right

    @property
    def ios_per_pair(self) -> float:
        """Leaf reads per reported pair (∞ for an empty join)."""
        return self.leaf_ios / self.pairs if self.pairs else float("inf")


def measure_join(left: RTree, right: RTree) -> JoinMetrics:
    """Run one synchronized-traversal join and collect its costs."""
    engine = SpatialJoinEngine(left, right, cache_internal=True)
    _, stats = engine.join()
    return JoinMetrics(
        pairs=stats.pairs,
        leaf_ios_left=stats.left.leaf_reads,
        leaf_ios_right=stats.right.leaf_reads,
        internal_reads=stats.left.internal_reads + stats.right.internal_reads,
        node_pairs=stats.node_pairs,
        leaf_count_left=left.leaf_count(),
        leaf_count_right=right.leaf_count(),
    )


def measure_point_workload(
    tree: RTree, points: Sequence[Sequence[float]]
) -> OperatorMetrics:
    """Run a batch of stabbing queries on a shared warm-cache engine."""
    engine = PointQueryEngine(tree, cache_internal=True)
    for point in points:
        engine.point_query(point)
    return _operator_metrics(engine, tree)
