"""Plain-text result tables.

Every experiment returns a :class:`Table`; benchmarks print it (visible
with ``pytest -s``) and the EXPERIMENTS.md generator embeds it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """A titled grid of results with aligned text rendering."""

    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the header count)."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        """Attach a free-text footnote."""
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All values of one named column."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        """Aligned monospace rendering with title and footnotes."""
        cells = [[_fmt(h) for h in self.headers]] + [
            [_fmt(v) for v in row] for row in self.rows
        ]
        widths = [
            max(len(row[col]) for row in cells) for col in range(len(self.headers))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable rendering with a stable schema.

        The schema is versioned (``repro-table/1``) and carries the
        exact cell values — no display rounding — so benchmark results
        written next to the ``.txt`` tables are diffable across PRs::

            {"schema": "repro-table/1", "title": ..., "headers": [...],
             "rows": [[...], ...], "notes": [...]}

        Cells that are not JSON-serializable fall back to ``str``.
        """
        return json.dumps(
            {
                "schema": "repro-table/1",
                "title": self.title,
                "headers": list(self.headers),
                "rows": [list(row) for row in self.rows],
                "notes": list(self.notes),
            },
            indent=2,
            default=str,
        )

    def to_markdown(self) -> str:
        """GitHub-flavored markdown rendering (for EXPERIMENTS.md)."""
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
