"""Experiments for the operators beyond the window query.

The paper's evaluation stops at window queries; these experiments run
the :mod:`repro.queries` operators — best-first kNN, synchronized-
traversal spatial join and stabbing queries — over the same four
bulk-loaded variants (H, H4, PR, TGS) and the same dataset families, so
the new workloads slot directly into the existing comparison story.

Expected shapes (not paper readings — these operators are not in the
paper):

* kNN cost is dominated by the root-to-neighborhood fringe, so all
  variants land within a small constant of ⌈k/B⌉ + height on uniform
  data; on SKEWED/CLUSTER data the heuristic trees' overlapping leaves
  force extra reads exactly as they do for window queries.
* Join cost tracks how well both trees localize the overlap region;
  variants with less leaf-MBR overlap read fewer node pairs.
* Point queries are the cheapest operator (often a single root-to-leaf
  path) and the clearest view of leaf-level overlap: every extra leaf
  read is a false positive of the tree, not of the query.
"""

from __future__ import annotations

import random

from repro.datasets.synthetic import (
    cluster_dataset,
    skewed_dataset,
    uniform_rects,
)
from repro.experiments.harness import (
    VARIANT_ORDER,
    build_variant,
    measure_join,
    measure_knn_workload,
    measure_point_workload,
)
from repro.experiments.report import Table
from repro.workloads.join import shifted_join, uniform_join
from repro.workloads.knn import (
    cluster_knn_queries,
    skewed_knn_queries,
    uniform_knn_queries,
)

__all__ = ["knn_experiment", "join_experiment", "point_experiment"]


def knn_experiment(
    n: int = 4_000,
    fanout: int = 16,
    k: int = 10,
    queries: int = 50,
    seed: int = 0,
) -> Table:
    """kNN cost per variant across uniform and skewed point workloads."""
    table = Table(
        title=f"kNN: avg leaf I/Os per query (k={k})",
        headers=["dataset", "variant", "avg_ios", "internal_reads", "reported"],
    )
    runs = [
        (
            "uniform",
            uniform_rects(n, max_side=0.01, seed=seed),
            uniform_knn_queries(count=queries, k=k, seed=seed + 1),
        ),
        (
            "skewed(c=5)",
            skewed_dataset(n, c=5, seed=seed),
            skewed_knn_queries(c=5, count=queries, k=k, seed=seed + 1),
        ),
        (
            "cluster",
            cluster_dataset(n, seed=seed),
            cluster_knn_queries(count=queries, k=k, seed=seed + 1),
        ),
    ]
    for ds_name, data, workload in runs:
        for variant in VARIANT_ORDER:
            tree = build_variant(variant, data, fanout)
            metrics = measure_knn_workload(tree, workload)
            table.add_row(
                ds_name,
                variant,
                metrics.avg_ios,
                metrics.internal_reads,
                metrics.reported,
            )
    table.add_note(f"n={n}, B={fanout}, k={k}, {queries} queries per point")
    return table


def join_experiment(
    n: int = 3_000,
    fanout: int = 16,
    seed: int = 0,
) -> Table:
    """Spatial-join cost per variant across selectivity regimes.

    Both join inputs are indexed with the same variant (the common
    benchmark setup); ``offset`` sweeps the shifted-copy workload from
    dense self-overlap to a nearly empty join.
    """
    table = Table(
        title="Spatial join: leaf I/Os by variant and selectivity",
        headers=["workload", "variant", "pairs", "leaf_ios", "ios_per_pair"],
    )
    workloads = [
        uniform_join(n, seed=seed),
        shifted_join(n, offset=0.002, seed=seed),
        shifted_join(n, offset=0.05, seed=seed),
    ]
    for workload in workloads:
        for variant in VARIANT_ORDER:
            left = build_variant(variant, workload.left, fanout)
            right = build_variant(variant, workload.right, fanout)
            metrics = measure_join(left, right)
            table.add_row(
                workload.name,
                variant,
                metrics.pairs,
                metrics.leaf_ios,
                metrics.ios_per_pair,
            )
    table.add_note(f"n={n} per side, B={fanout}")
    return table


def point_experiment(
    n: int = 5_000,
    fanout: int = 16,
    queries: int = 100,
    seed: int = 0,
) -> Table:
    """Stabbing-query cost per variant on uniform and skewed data."""
    table = Table(
        title="Point (stabbing) queries: avg leaf I/Os",
        headers=["dataset", "variant", "avg_ios", "reported", "leaf_count"],
    )
    rng = random.Random(seed + 1)
    runs = [
        (
            "uniform",
            uniform_rects(n, max_side=0.02, seed=seed),
            [(rng.random(), rng.random()) for _ in range(queries)],
        ),
        (
            "skewed(c=5)",
            skewed_dataset(n, c=5, seed=seed),
            [(rng.random(), rng.random() ** 5) for _ in range(queries)],
        ),
    ]
    for ds_name, data, points in runs:
        for variant in VARIANT_ORDER:
            tree = build_variant(variant, data, fanout)
            metrics = measure_point_workload(tree, points)
            table.add_row(
                ds_name,
                variant,
                metrics.avg_ios,
                metrics.reported,
                metrics.leaf_count,
            )
    table.add_note(f"n={n}, B={fanout}, {queries} stabbing queries")
    return table
