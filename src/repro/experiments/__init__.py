"""Experiment harness reproducing the paper's evaluation (Section 3).

* :mod:`repro.experiments.harness` — build-variant registry, query-
  workload measurement, the paper's reporting metrics.
* :mod:`repro.experiments.figures` — one function per paper figure
  (Figures 9–15), each returning a :class:`repro.experiments.report.Table`.
* :mod:`repro.experiments.tables` — Table 1 and the Theorem 3
  demonstration.
* :mod:`repro.experiments.report` — plain-text table rendering.

Every experiment takes explicit scale parameters (N, fan-out, memory)
with laptop-friendly defaults; DESIGN.md §3 records how the defaults map
onto the paper's multi-million-rectangle runs.
"""

from repro.experiments.harness import (
    QUERY_VARIANTS,
    EXTERNAL_VARIANTS,
    build_variant,
    measure_workload,
    WorkloadMetrics,
)
from repro.experiments.report import Table
from repro.experiments.figures import (
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
)
from repro.experiments.tables import table1, theorem3_demo

__all__ = [
    "QUERY_VARIANTS",
    "EXTERNAL_VARIANTS",
    "build_variant",
    "measure_workload",
    "WorkloadMetrics",
    "Table",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "table1",
    "theorem3_demo",
]
