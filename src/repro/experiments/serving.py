"""Storage-engine experiments: packing, batch serving, and updates.

Three entry points behind the ``repro pack``, ``repro serve-bench`` and
``repro update-bench`` CLI subcommands:

* :func:`pack_index` — bulk-load one variant on the chosen dataset and
  write it to an index file with :func:`repro.storage.paged.pack_tree`,
  reporting the pack's size and (almost entirely sequential) write I/O.
  With ``shards > 1`` the tree is instead split into K Hilbert-range
  shard files plus a manifest
  (:func:`repro.storage.shard.shard_pack`), one table row per shard.
* :func:`serve_bench` — open an index (single file or shard manifest,
  sniffed by :func:`repro.storage.shard.open_index`) as a lazily paged
  tree with a bounded page cache and drive a mixed
  window/point/count/containment/kNN workload through the batched
  :class:`~repro.server.QueryServer`, reporting per-batch latency,
  logical leaf I/O, physical page reads, and dedup savings; a sharded
  index additionally reports the per-shard I/O balance.  Later
  batches revisit earlier query regions, so physical reads fall as the
  page cache warms while the logical I/O per request stays flat — the
  storage-engine counterpart of the paper's cached-internal-nodes setup.
* :func:`update_bench` — pack an index, reopen it writable, and apply a
  mixed insert/delete stream through the server's write path,
  reporting per-batch logical write I/O versus physical pages flushed
  (the dirty-page write-back saving) and the post-update query
  degradation against a fresh bulk-load of the same final data — the
  paper's observation that O(log_B N) updates do not maintain query
  efficiency, measured.
"""

from __future__ import annotations

import asyncio
import pathlib
import random
import shutil
import tempfile
import time
from collections import Counter
from typing import Sequence

from repro.datasets.synthetic import uniform_rects
from repro.datasets.tiger import tiger_dataset
from repro.experiments.harness import build_variant
from repro.experiments.report import Table
from repro.geometry.rect import Rect
from repro.iomodel.codec import fanout_for_block
from repro.obs import (
    MetricsRegistry,
    MetricsServer,
    SamplingProfiler,
    SlowQueryLog,
    TraceWriter,
    Tracer,
)
from repro.obs import health
from repro.rtree.query import QueryEngine
from repro.rtree.validate import validate_rtree
from repro.server import (
    DEFAULT_INDEX,
    ContainmentRequest,
    CountRequest,
    DeleteRequest,
    InsertRequest,
    KNNRequest,
    PointRequest,
    QueryServer,
    Request,
    WindowRequest,
)
from repro.service import AsyncQueryService, LatencyHistogram, ServiceStats, open_loop
from repro.storage import (
    FileBlockStore,
    PagedTree,
    ShardedTree,
    open_index,
    pack_tree,
    shard_pack,
)
from repro.workloads.queries import square_queries

__all__ = [
    "pack_index",
    "serve_bench",
    "serve_async_bench",
    "trace_capture",
    "profile_capture",
    "cache_report",
    "health_report",
    "explain_report",
    "update_bench",
    "mixed_requests",
    "mixed_service_stream",
    "mixed_update_requests",
    "DATASETS",
]


def _make_tracer(
    trace: str | pathlib.Path | None,
    sample_rate: float,
    slow_ms: float | None,
) -> tuple[TraceWriter | None, Tracer | None]:
    """Build the (writer, tracer) pair for a ``--trace OUT.jsonl`` run."""
    if trace is None:
        return None, None
    writer = TraceWriter(trace)
    tracer = Tracer(
        writer,
        sample_rate=sample_rate,
        slow_threshold_s=slow_ms / 1000.0 if slow_ms is not None else None,
    )
    return writer, tracer


def _profile_notes(
    table: Table, profiler: SamplingProfiler, out: str | pathlib.Path
) -> None:
    """Write the collapsed stacks and digest the per-phase self time.

    The phase rows (``(other)`` included) sum to 100% of the sampled
    wall time by construction, so the notes are a complete account of
    where the profiled window's CPU/wall time went.
    """
    profiler.write_collapsed(out)
    table.add_note(
        f"profile: {out} (collapsed stacks, {profiler.total_samples} "
        f"samples over {profiler.elapsed_s:.1f}s at "
        f"{profiler.interval_s * 1000:g}ms — flamegraph.pl/speedscope)"
    )
    for row in profiler.phase_table():
        table.add_note(
            f"phase {row.phase}: {row.fraction:.1%} self "
            f"({row.samples} samples, ~{row.seconds:.2f}s)"
        )


def _index_page_stores(tree) -> list[tuple[str, object]]:
    """``(label, PagedNodeStore)`` per page layer behind one index."""
    if isinstance(tree, ShardedTree):
        return [
            (f"shard{i}", shard.page_store)
            for i, shard in enumerate(tree.shards)
        ]
    store = getattr(tree, "page_store", None)
    return [("index", store)] if store is not None else []


def _aggregate_cache(tree):
    """Family-wide cache view: summed stats plus merged tracker curve.

    Returns ``(stats_hits, stats_misses, curve, trackers)`` where
    ``curve`` is a list of ``(budget, hits, accesses)`` summed across
    every tracker sharing the first tracker's budget set (each shard
    has its own ``cache_pages``-page cache, so per-shard budgets add).
    ``curve`` is None when no store carries a tracker.
    """
    stores = _index_page_stores(tree)
    hits = sum(store.stats.hits for _, store in stores)
    misses = sum(store.stats.misses for _, store in stores)
    trackers = [
        store.tracker for _, store in stores if store.tracker is not None
    ]
    if not trackers:
        return hits, misses, None, []
    budgets = trackers[0].budgets
    trackers = [t for t in trackers if t.budgets == budgets]
    curve = []
    accesses = sum(t.accesses for t in trackers)
    for j, budget in enumerate(budgets):
        budget_hits = sum(t.miss_ratio_curve()[j].hits for t in trackers)
        curve.append((budget, budget_hits, accesses))
    return hits, misses, curve, trackers


def _cache_notes(table: Table, tree, cache_pages: int) -> None:
    """Footnote digest of the ghost-cache analytics for one index."""
    hits, misses, curve, trackers = _aggregate_cache(tree)
    lookups = hits + misses
    if curve is None or not lookups:
        return
    actual = hits / lookups
    predicted = next(
        (h / a for b, h, a in curve if b == cache_pages and a), None
    )
    note = (
        f"page cache: {hits}/{lookups} lookups hit "
        f"({actual:.1%} measured at the {cache_pages}-page budget"
    )
    if predicted is not None:
        note += f"; ghost-LRU predicts {predicted:.1%} at that budget"
    table.add_note(note + ")")
    table.add_note(
        "miss-ratio curve (budget: predicted hit ratio): "
        + ", ".join(
            f"{b}: {h / a:.1%}" if a else f"{b}: n/a" for b, h, a in curve
        )
    )
    wss: dict[int, int] = {}
    unique = cold = 0
    for tracker in trackers:
        for window, size in tracker.working_set_sizes().items():
            wss[window] = wss.get(window, 0) + size
        unique += tracker.unique_blocks
        cold += tracker.cold_misses
    table.add_note(
        f"working set: {unique} distinct blocks ever ({cold} cold "
        "misses); trailing-window sizes "
        + ", ".join(f"{w}: {s}" for w, s in sorted(wss.items()))
    )


#: Dataset generators accepted by ``repro pack`` / ``repro serve-bench``.
DATASETS = {
    "tiger-east": lambda n, seed: tiger_dataset(n, "eastern", seed=seed),
    "tiger-west": lambda n, seed: tiger_dataset(n, "western", seed=seed),
    "uniform": lambda n, seed: uniform_rects(n, max_side=0.01, seed=seed),
}


def pack_index(
    out: str | pathlib.Path,
    variant: str = "PR",
    dataset: str = "tiger-east",
    n: int = 50_000,
    fanout: int | None = None,
    block_size: int = 4096,
    seed: int = 0,
    shards: int = 1,
) -> Table:
    """Bulk-load one variant and pack it to an index file.

    With ``shards > 1`` the bulk-loaded tree is split by Hilbert rank
    into that many shard files plus a manifest at ``out`` (see
    :func:`repro.storage.shard.shard_pack`); the table then carries one
    row per shard.
    """
    if dataset not in DATASETS:
        raise ValueError(
            f"unknown dataset {dataset!r}; choose from {sorted(DATASETS)}"
        )
    if fanout is None:
        fanout = fanout_for_block(block_size, 2)
    data = DATASETS[dataset](n, seed)

    build_start = time.perf_counter()
    tree = build_variant(variant, data, fanout)
    build_s = time.perf_counter() - build_start

    table = Table(
        title=f"pack: {variant} over {dataset}"
        + (f", {shards} shards" if shards > 1 else ""),
        headers=[
            "variant", "n", "fanout", "height", "blocks",
            "file_MB", "write_ios", "seq_frac", "build_s", "pack_s",
        ],
    )
    if shards > 1:
        pack_start = time.perf_counter()
        family = shard_pack(tree, out, shards=shards, block_size=block_size)
        pack_s = time.perf_counter() - pack_start
        for i, stats in enumerate(family.per_shard):
            table.add_row(
                f"{variant}[{i}]",
                stats.size,
                fanout,
                stats.height,
                stats.n_blocks,
                stats.file_bytes / 2**20,
                stats.write_ios,
                stats.seq_writes / stats.write_ios if stats.write_ios else 0.0,
                build_s if i == 0 else 0.0,
                pack_s if i == 0 else 0.0,
            )
        table.add_note(
            f"shard manifest: {out} ({family.shards} shard files, "
            f"{block_size}-byte blocks)"
        )
        return table

    pack_start = time.perf_counter()
    stats = pack_tree(tree, out, block_size=block_size)
    pack_s = time.perf_counter() - pack_start
    table.add_row(
        variant,
        n,
        fanout,
        stats.height,
        stats.n_blocks,
        stats.file_bytes / 2**20,
        stats.write_ios,
        stats.seq_writes / stats.write_ios if stats.write_ios else 0.0,
        build_s,
        pack_s,
    )
    table.add_note(f"index file: {out} ({block_size}-byte blocks)")
    return table


def mixed_requests(
    bounds: Rect,
    count: int = 1000,
    area_percent: float = 0.25,
    k: int = 10,
    duplicate_frac: float = 0.1,
    seed: int = 0,
    index: str = DEFAULT_INDEX,
) -> list[Request]:
    """A reproducible mixed batch: ~40% window, 20% point, 20% kNN,
    10% count, 10% containment, plus ``duplicate_frac`` exact repeats
    (real query streams repeat hot requests; the server dedups them).
    """
    rng = random.Random(seed)
    windows = square_queries(
        bounds, area_percent, count=max(count, 1), seed=seed
    ).windows

    def random_point() -> tuple[float, ...]:
        return tuple(
            lo + rng.random() * (hi - lo)
            for lo, hi in zip(bounds.lo, bounds.hi)
        )

    requests: list[Request] = []
    for i in range(count):
        roll = rng.random()
        window = windows[i % len(windows)]
        if roll < 0.40:
            requests.append(WindowRequest(window, index=index))
        elif roll < 0.60:
            requests.append(PointRequest(random_point(), index=index))
        elif roll < 0.80:
            requests.append(KNNRequest(random_point(), k=k, index=index))
        elif roll < 0.90:
            requests.append(CountRequest(window, index=index))
        else:
            requests.append(ContainmentRequest(window, index=index))
    n_dupes = int(len(requests) * duplicate_frac)
    for _ in range(n_dupes):
        requests.append(requests[rng.randrange(len(requests))])
    rng.shuffle(requests)
    return requests[:count]


def serve_bench(
    index: str | pathlib.Path | None = None,
    requests: int = 1000,
    batch_size: int = 250,
    cache_pages: int = 256,
    workers: int = 1,
    variant: str = "PR",
    dataset: str = "tiger-east",
    n: int = 20_000,
    fanout: int | None = None,
    block_size: int = 4096,
    seed: int = 0,
    shards: int = 1,
    mmap: bool = False,
    trace: str | pathlib.Path | None = None,
    metrics: str | pathlib.Path | None = None,
    sample_rate: float = 1.0,
    slow_ms: float | None = None,
    profile: str | pathlib.Path | None = None,
    cache_analytics: bool = False,
    batch_windows: bool = False,
    explain: bool = False,
) -> Table:
    """Drive a mixed batched workload through a paged index file.

    With ``index=None`` a temporary index is built and packed first
    (``variant``/``dataset``/``n``/``shards`` control it); otherwise
    the given ``repro pack`` output — a single index file or a shard
    manifest, auto-detected — is served as-is.  A sharded index adds a
    per-shard I/O-balance note to the table; ``mmap=True`` serves the
    file(s) from memory mappings.

    Each batch row carries the executed requests' p50/p95/p99 latency,
    and the footnotes digest the whole run per request kind — both via
    the same :class:`~repro.service.stats.ServiceStats` histograms the
    async path reports, so the sync and async tables share one metrics
    vocabulary (``docs/async-serving.md``).

    ``trace=OUT.jsonl`` writes a Chrome-trace-event file of every
    sampled request's spans (``docs/observability.md``); ``sample_rate``
    head-samples it and ``slow_ms`` always keeps over-threshold
    requests.  ``metrics=OUT.prom`` dumps the run's per-kind latency
    histograms and I/O totals in Prometheus text format at the end.

    ``profile=OUT.collapsed`` runs the phase-attributed sampling
    profiler over the batch loop and writes collapsed stacks (the
    per-phase self-time digest lands in the footnotes);
    ``cache_analytics=True`` attaches the ghost-LRU reuse-distance
    tracker to every page store and footnotes the miss-ratio curve
    (``repro cache-report`` gives the full table).

    ``batch_windows=True`` lets the server evaluate each batch's
    co-located window queries set-at-a-time against every decoded page
    (``docs/query-engine.md``) — results and per-request logical I/O
    stats are identical to solo execution.

    ``explain=True`` arms per-request plan capture
    (``repro.queries.explain``): every executed request carries a
    :class:`~repro.queries.explain.QueryPlan` and the footnotes digest
    the mean pruning efficiency per kind.  Explain disables window
    batching (a shared traversal has no per-query plan).
    """
    tmpdir: tempfile.TemporaryDirectory | None = None
    writer, tracer = _make_tracer(trace, sample_rate, slow_ms)
    if index is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-serve-")
        index = pathlib.Path(tmpdir.name) / (
            "index.manifest" if shards > 1 else "index.pack"
        )
        pack_index(
            index,
            variant=variant,
            dataset=dataset,
            n=n,
            fanout=fanout,
            block_size=block_size,
            seed=seed,
            shards=shards,
        )
    try:
        # The mixed workload is read-only; opening read-only both allows
        # serving an index the process cannot write (e.g. a read-only
        # mount) and guarantees the benchmark leaves the files untouched.
        with open_index(
            index,
            cache_pages=cache_pages,
            readonly=True,
            mmap=mmap,
            cache_analytics=cache_analytics,
        ) as tree:
            server = QueryServer(
                tree,
                workers=workers,
                batch_windows=batch_windows,
                explain=explain,
            )
            bounds = tree.root().mbr()
            stream = mixed_requests(bounds, count=requests, seed=seed + 1)

            sharded = isinstance(tree, ShardedTree)
            table = Table(
                title=(
                    f"serve-bench: {requests} mixed requests, "
                    f"batches of {batch_size}, {cache_pages}-page cache"
                    + (f", {tree.n_shards} shards" if sharded else "")
                    + (", mmap" if mmap else "")
                ),
                headers=[
                    "batch", "requests", "executed", "dedup",
                    "leaf_ios", "internal_reads", "physical_reads",
                    "latency_ms", "p50_ms", "p95_ms", "p99_ms", "req_per_s",
                ],
            )
            run_stats = ServiceStats()
            totals = {"leaf": 0, "phys": 0, "lat": 0.0, "reqs": 0}
            plan_totals: dict[str, list[float]] = {}
            profiler = (
                SamplingProfiler() if profile is not None else None
            )
            if profiler is not None:
                profiler.start()
            try:
                for b in range(0, len(stream), batch_size):
                    batch = stream[b : b + batch_size]
                    batch_traces = None
                    if tracer is not None:
                        batch_traces = [
                            tracer.begin(req.kind, req.kind) for req in batch
                        ]
                    report = server.submit(batch, traces=batch_traces)
                    if batch_traces is not None:
                        for pending_trace in batch_traces:
                            tracer.finish(pending_trace)
                    if explain:
                        for result in report.results:
                            plan = result.plan
                            if plan is None or result.deduped:
                                continue
                            acc = plan_totals.setdefault(
                                result.request.kind, [0, 0, 0.0]
                            )
                            acc[0] += 1
                            acc[1] += plan.nodes_visited
                            acc[2] += plan.pruning_efficiency
                    kind_latencies = report.kind_latencies()
                    batch_hist = LatencyHistogram()
                    for latencies in kind_latencies.values():
                        for latency in latencies:
                            batch_hist.observe(latency)
                    run_stats.observe_kind_latencies(kind_latencies)
                    run_stats.observe_cache(report.io)
                    table.add_row(
                        b // batch_size,
                        report.requests,
                        report.executed,
                        report.dedup_hits,
                        report.leaf_ios,
                        report.internal_reads,
                        report.physical_reads,
                        report.latency_s * 1000.0,
                        batch_hist.percentile(50) * 1000.0,
                        batch_hist.percentile(95) * 1000.0,
                        batch_hist.percentile(99) * 1000.0,
                        report.throughput_rps,
                    )
                    totals["leaf"] += report.leaf_ios
                    totals["phys"] += report.physical_reads
                    totals["lat"] += report.latency_s
                    totals["reqs"] += report.requests
            finally:
                if profiler is not None:
                    profiler.stop()
            table.add_note(
                f"index: {index} (size={tree.size}, height={tree.height}, "
                f"fanout={tree.fanout})"
            )
            for summary in run_stats.kind_summaries():
                table.add_note(
                    f"{summary.kind}: n={summary.count}, "
                    f"p50={summary.p50_ms:.3f}ms, "
                    f"p95={summary.p95_ms:.3f}ms, "
                    f"p99={summary.p99_ms:.3f}ms "
                    f"(executed-request latency)"
                )
            if totals["lat"] > 0:
                table.add_note(
                    f"overall: {totals['reqs'] / totals['lat']:,.0f} req/s, "
                    f"{totals['leaf']} leaf I/Os, "
                    f"{totals['phys']} physical page reads"
                )
            for kind, (plans, nodes, eff_sum) in sorted(plan_totals.items()):
                table.add_note(
                    f"explain {kind}: {plans} plans, "
                    f"{nodes / plans:.1f} nodes/query, "
                    f"mean pruning efficiency {eff_sum / plans:.3f}"
                )
            if sharded:
                loads = tree.shard_loads()
                table.add_note(
                    "per-shard balance (logical reads / physical reads / "
                    "busy ms): "
                    + ", ".join(
                        f"shard{i}: {load.reads}/{load.physical_reads}/"
                        f"{load.busy_s * 1000:.0f}"
                        for i, load in enumerate(loads)
                    )
                )
            if profiler is not None:
                _profile_notes(table, profiler, profile)
            if cache_analytics:
                _cache_notes(table, tree, cache_pages)
            if tracer is not None:
                table.add_note(
                    f"trace: {trace} ({tracer.emitted} of {tracer.started} "
                    f"requests emitted, {tracer.slow} slow)"
                )
            if metrics is not None:
                registry = MetricsRegistry()
                latency = registry.histogram(
                    "repro_request_latency_seconds",
                    "Executed-request latency by kind.",
                    ("kind",),
                )
                for kind, histogram in sorted(run_stats.by_kind.items()):
                    latency.labels(kind).set_from(histogram)
                registry.counter(
                    "repro_requests_total", "Requests served."
                ).labels().set_total(totals["reqs"])
                registry.counter(
                    "repro_leaf_ios_total", "Logical leaf reads."
                ).labels().set_total(totals["leaf"])
                registry.counter(
                    "repro_physical_reads_total",
                    "Page-cache misses (physical block reads).",
                ).labels().set_total(totals["phys"])
                registry.dump(metrics)
                table.add_note(f"metrics: {metrics} (Prometheus text)")
            return table
    finally:
        if writer is not None:
            writer.close()
        if tmpdir is not None:
            tmpdir.cleanup()


def mixed_service_stream(
    bounds: Rect,
    count: int = 1000,
    write_frac: float = 0.1,
    area_percent: float = 0.25,
    k: int = 10,
    seed: int = 0,
    index: str = DEFAULT_INDEX,
    value_prefix: str = "svc",
) -> list[Request]:
    """A reproducible open-loop stream: mixed reads plus interleaved writes.

    ``write_frac`` of the stream are writes — inserts of small fresh
    rectangles inside ``bounds``, and deletes of rectangles this same
    stream inserted earlier (values are namespaced by ``value_prefix``,
    so concurrent streams never delete each other's data).  The rest is
    the :func:`mixed_requests` read mix.
    """
    if not 0.0 <= write_frac <= 1.0:
        raise ValueError("write_frac must be in [0, 1]")
    rng = random.Random(seed)
    reads = mixed_requests(
        bounds,
        count=count,
        area_percent=area_percent,
        k=k,
        seed=seed,
        index=index,
    )
    if write_frac == 0.0:
        return reads

    def fresh_rect() -> Rect:
        lo = tuple(
            low + rng.random() * (high - low) * 0.99
            for low, high in zip(bounds.lo, bounds.hi)
        )
        side = tuple((high - low) * 0.002 for low, high in zip(bounds.lo, bounds.hi))
        return Rect(lo, tuple(c + s for c, s in zip(lo, side)))

    stream: list[Request] = []
    inserted: list[tuple[Rect, str]] = []
    serial = 0
    for request in reads:
        if rng.random() < write_frac:
            if inserted and rng.random() < 0.5:
                rect, value = inserted.pop(rng.randrange(len(inserted)))
                stream.append(DeleteRequest(rect, value, index=index))
            else:
                rect, value = fresh_rect(), f"{value_prefix}-{seed}-{serial}"
                serial += 1
                inserted.append((rect, value))
                stream.append(InsertRequest(rect, value, index=index))
        else:
            stream.append(request)
    return stream


def serve_async_bench(
    index: str | pathlib.Path | None = None,
    rates: Sequence[float] = (200.0, 500.0, 1000.0, 2000.0),
    requests: int = 500,
    write_frac: float = 0.1,
    max_batch: int = 64,
    flush_ms: float = 2.0,
    max_pending_reads: int = 256,
    max_pending_writes: int = 64,
    admission: str = "reject",
    executor_workers: int = 4,
    sync_every_n: int | None = None,
    sync_interval_s: float | None = None,
    cache_pages: int = 256,
    variant: str = "PR",
    dataset: str = "tiger-east",
    n: int = 20_000,
    fanout: int | None = None,
    block_size: int = 4096,
    seed: int = 0,
    shards: int = 1,
    mmap: bool = False,
    trace: str | pathlib.Path | None = None,
    metrics: str | pathlib.Path | None = None,
    sample_rate: float = 1.0,
    slow_ms: float | None = None,
    profile: str | pathlib.Path | None = None,
    cache_analytics: bool = False,
    metrics_port: int | None = None,
    batch_windows: bool = False,
    explain: bool = False,
    health_interval: float | None = None,
) -> Table:
    """Open-loop latency-vs-arrival-rate sweep through the async service.

    For each rate, a fresh :class:`~repro.service.AsyncQueryService`
    fronts the index and an open-loop generator
    (:func:`~repro.service.open_loop`) offers ``requests`` mixed
    read/write requests at that Poisson arrival rate; the row records
    what came back — completions, admission rejections, achieved
    throughput, and the streaming p50/p95/p99 (end-to-end: queue wait
    plus batch execution).  The page cache persists across rates (a
    warm service is the steady state being measured); queue depth and
    the tail percentiles are where saturation shows first.

    ``trace=OUT.jsonl`` turns on end-to-end tracing — every sampled
    request's admission/queue/coalesce/execute spans plus per-shard and
    engine spans land in one Chrome-trace-event file covering all rates
    (``docs/observability.md``).  ``metrics=OUT.prom`` registers a
    shared :class:`~repro.obs.MetricsRegistry` with every service and
    dumps the final Prometheus text at the end; ``slow_ms`` arms the
    slow-query log (worst offenders become table notes) and forces
    over-threshold requests into the trace even when ``sample_rate``
    would drop them.

    ``metrics_port`` (0 picks a free port) serves the live registry
    over HTTP at ``/metrics`` for the duration of the sweep — scrape it
    mid-run with Prometheus or ``curl``.  ``profile=OUT.collapsed``
    runs the phase-attributed sampling profiler across every rate and
    writes collapsed stacks; ``cache_analytics=True`` attaches the
    ghost-LRU tracker to each page store (curves in the footnotes and,
    with metrics on, the ``repro_cache_*`` families).

    ``batch_windows=True`` turns on set-at-a-time window evaluation in
    the service's read servers (``docs/query-engine.md``) — coalesced
    window queries share each decoded page's kernel pass instead of
    re-traversing per request.

    ``explain=True`` arms per-request plan capture in every engine —
    the ``repro_explain_*`` families land in the metrics dump and slow
    entries carry a plan summary.  ``health_interval`` (seconds) adds
    the ``repro_health_*`` tree-quality families to each metrics
    snapshot, re-walking at most that often (``docs/observability.md``).
    """
    tmpdir: tempfile.TemporaryDirectory | None = None
    writer, tracer = _make_tracer(trace, sample_rate, slow_ms)
    registry = (
        MetricsRegistry()
        if metrics is not None or metrics_port is not None
        else None
    )
    metrics_server = (
        MetricsServer(registry, port=metrics_port).start()
        if metrics_port is not None
        else None
    )
    slow_log = (
        SlowQueryLog(slow_ms / 1000.0) if slow_ms is not None else None
    )
    if index is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-serve-async-")
        index = pathlib.Path(tmpdir.name) / (
            "index.manifest" if shards > 1 else "index.pack"
        )
        pack_index(
            index,
            variant=variant,
            dataset=dataset,
            n=n,
            fanout=fanout,
            block_size=block_size,
            seed=seed,
            shards=shards,
        )
    try:
        writable = write_frac > 0.0
        with open_index(
            index,
            cache_pages=cache_pages,
            readonly=not writable,
            mmap=mmap,
            cache_analytics=cache_analytics,
        ) as tree:
            sharded = isinstance(tree, ShardedTree)
            bounds = tree.root().mbr()
            table = Table(
                title=(
                    f"serve-async: open-loop sweep, {requests} requests/rate "
                    f"({write_frac:.0%} writes), max_batch={max_batch}, "
                    f"flush={flush_ms:g}ms, admission={admission}"
                    + (f", {tree.n_shards} shards" if sharded else "")
                    + (", mmap" if mmap else "")
                ),
                headers=[
                    "rate_rps", "offered", "completed", "rejected",
                    "achieved_rps", "p50_ms", "p95_ms", "p99_ms",
                    "max_queue", "batches",
                ],
            )

            async def run_rate(rate: float, rate_seed: int):
                service = AsyncQueryService(
                    tree,
                    max_batch=max_batch,
                    flush_interval=flush_ms / 1000.0,
                    max_pending_reads=max_pending_reads,
                    max_pending_writes=max_pending_writes,
                    admission=admission,
                    executor_workers=executor_workers,
                    sync_every_n=sync_every_n,
                    sync_interval_s=sync_interval_s,
                    tracer=tracer,
                    metrics=registry,
                    slow_log=slow_log,
                    batch_windows=batch_windows,
                    explain=explain,
                    health_interval=health_interval,
                )
                stream = mixed_service_stream(
                    bounds,
                    count=requests,
                    write_frac=write_frac,
                    seed=rate_seed,
                    value_prefix=f"bench{rate_seed}",
                )
                async with service:
                    report = await open_loop(
                        service, stream, rate, seed=rate_seed
                    )
                return report, service.stats

            profiler = (
                SamplingProfiler() if profile is not None else None
            )
            if profiler is not None:
                profiler.start()
            try:
                commits = committed = 0
                for i, rate in enumerate(rates):
                    report, stats = asyncio.run(run_rate(rate, seed + i + 1))
                    commits += stats.commits
                    committed += stats.committed_batches
                    overall = stats.overall
                    table.add_row(
                        rate,
                        report.offered,
                        report.completed,
                        report.rejected,
                        report.achieved_rps,
                        overall.percentile(50) * 1000.0,
                        overall.percentile(95) * 1000.0,
                        overall.percentile(99) * 1000.0,
                        stats.max_queue_depth,
                        stats.batches,
                    )
                    if report.errors:
                        table.add_note(
                            f"rate {rate:g}: {report.errors} errors — "
                            + "; ".join(report.error_samples)
                        )
            finally:
                if profiler is not None:
                    profiler.stop()
            table.add_note(
                f"index: {index} (size={tree.size}, height={tree.height}, "
                f"fanout={tree.fanout})"
            )
            table.add_note(
                "latency is end-to-end (admission -> response): queue wait "
                "+ batch execution; percentiles are streaming histogram "
                "estimates (docs/async-serving.md)"
            )
            if writable:
                table.add_note(
                    "writes mutate the served index; each rate inserts "
                    "namespaced fresh rectangles and deletes only its own"
                )
            if sync_every_n is not None or sync_interval_s is not None:
                table.add_note(
                    f"group commit: {commits} commits covered "
                    f"{committed} write batches "
                    f"(sync_every_n={sync_every_n}, "
                    f"sync_interval_s={sync_interval_s}) — "
                    "docs/durability.md"
                )
            if profiler is not None:
                _profile_notes(table, profiler, profile)
            if cache_analytics:
                _cache_notes(table, tree, cache_pages)
            if tracer is not None:
                table.add_note(
                    f"trace: {trace} ({tracer.emitted} of {tracer.started} "
                    f"requests emitted, {tracer.slow} slow)"
                )
            if slow_log is not None and len(slow_log):
                worst = max(slow_log.records(), key=lambda r: r.latency_s)
                table.add_note(
                    f"slow-query log: {slow_log.total} over "
                    f"{slow_ms:g}ms; worst: {worst.kind} at "
                    f"{worst.latency_s * 1000:.2f}ms "
                    f"(queue {worst.queue_s * 1000:.2f}ms)"
                )
            if metrics_server is not None:
                table.add_note(
                    f"metrics served live at {metrics_server.url} "
                    "during the sweep"
                )
            if registry is not None and metrics is not None:
                registry.dump(metrics)
                table.add_note(f"metrics: {metrics} (Prometheus text)")
            return table
    finally:
        if metrics_server is not None:
            metrics_server.close()
        if writer is not None:
            writer.close()
        if tmpdir is not None:
            tmpdir.cleanup()


#: Durability modes ``durability_bench`` compares, in row order.
DURABILITY_MODES = ("none", "group", "interval", "sync-writes")


def durability_bench(
    modes: Sequence[str] = DURABILITY_MODES,
    sync_every_n: int = 8,
    sync_interval_ms: float = 50.0,
    rate: float = 2000.0,
    requests: int = 400,
    write_frac: float = 0.25,
    max_batch: int = 64,
    flush_ms: float = 2.0,
    executor_workers: int = 4,
    variant: str = "PR",
    dataset: str = "tiger-east",
    n: int = 20_000,
    block_size: int = 4096,
    cache_pages: int = 256,
    seed: int = 0,
) -> Table:
    """Group commit vs the all-or-nothing durability knobs.

    One fixed open-loop mixed workload (same stream, same arrival
    rate) runs against a fresh copy of the same packed index under each
    durability mode:

    * ``none`` — ``sync_writes=False``, no group commit: writes are
      never committed until ``aclose()``.  The write-latency baseline.
    * ``group`` — ``sync_every_n=N``: commit every N write batches,
      off the exclusive write window (``docs/durability.md``).
    * ``interval`` — ``sync_interval_s=T``: commit on a wall-clock
      cadence, even while idle.
    * ``sync-writes`` — ``sync_writes=True``: every write batch pays a
      full ``sync()`` inside the exclusive write window.

    The row records what each mode paid (write-request p50/p95 —
    end-to-end, so a commit stalling the write window shows up here —
    plus overall p95 and achieved throughput) and what it bought
    (commits that reached the disk *during* the run, batches they
    covered, the store's committed epoch after close).  The acceptance
    bar: group commit's write p95 must not exceed the ``none``
    baseline's beyond noise — its commits happen concurrently with
    reads, never inside the write window.
    """
    with tempfile.TemporaryDirectory(prefix="repro-durability-") as tmp:
        tmpdir = pathlib.Path(tmp)
        master = tmpdir / "master.pack"
        pack_index(
            master,
            variant=variant,
            dataset=dataset,
            n=n,
            block_size=block_size,
            seed=seed,
        )
        table = Table(
            title=(
                f"durability: group commit vs sync-per-batch, "
                f"{requests} requests at {rate:g} req/s "
                f"({write_frac:.0%} writes), max_batch={max_batch}"
            ),
            headers=[
                "mode", "completed", "batches", "commits", "committed",
                "write_p50_ms", "write_p95_ms", "p95_ms", "achieved_rps",
                "epoch",
            ],
        )

        async def run_mode(tree, knobs):
            service = AsyncQueryService(
                tree,
                max_batch=max_batch,
                flush_interval=flush_ms / 1000.0,
                admission="backpressure",
                executor_workers=executor_workers,
                **knobs,
            )
            bounds = tree.root().mbr()
            stream = mixed_service_stream(
                bounds,
                count=requests,
                write_frac=write_frac,
                seed=seed + 1,
                value_prefix="durability",
            )
            async with service:
                report = await open_loop(service, stream, rate, seed=1)
            return report, service.stats

        knobs_by_mode = {
            "none": {},
            "group": {"sync_every_n": sync_every_n},
            "interval": {"sync_interval_s": sync_interval_ms / 1000.0},
            "sync-writes": {"sync_writes": True},
        }
        for mode in modes:
            path = tmpdir / f"{mode}.pack"
            shutil.copy(master, path)
            with PagedTree.open(path, cache_pages=cache_pages) as tree:
                report, stats = asyncio.run(
                    run_mode(tree, knobs_by_mode[mode])
                )
            with FileBlockStore.open(path, readonly=True) as store:
                epoch = store.commit_epoch
            writes = LatencyHistogram()
            writes.merge(stats.histogram("insert"))
            writes.merge(stats.histogram("delete"))
            table.add_row(
                mode,
                report.completed,
                stats.batches,
                stats.commits,
                stats.committed_batches,
                writes.percentile(50) * 1000.0,
                writes.percentile(95) * 1000.0,
                stats.overall.percentile(95) * 1000.0,
                report.achieved_rps,
                epoch,
            )
            if report.errors:
                table.add_note(
                    f"{mode}: {report.errors} errors — "
                    + "; ".join(report.error_samples)
                )
        table.add_note(
            "write_p50/p95 are end-to-end write-request latencies: a "
            "commit inside the exclusive write window (sync-writes) "
            "stalls them, a group commit (docs/durability.md) does not"
        )
        table.add_note(
            f"group commits every {sync_every_n} write batches; interval "
            f"commits every {sync_interval_ms:g}ms; 'commits' counts the "
            "service's group commits (including its final one at close); "
            "'epoch' is the store's committed epoch after the owner's "
            "close — sync-writes commits per batch through the server, "
            "outside the service's commit counters"
        )
        return table


def trace_capture(
    out: str | pathlib.Path,
    index: str | pathlib.Path | None = None,
    requests: int = 200,
    rate: float = 500.0,
    write_frac: float = 0.1,
    sample_rate: float = 1.0,
    slow_ms: float | None = None,
    metrics: str | pathlib.Path | None = None,
    max_batch: int = 64,
    flush_ms: float = 2.0,
    executor_workers: int = 4,
    cache_pages: int = 256,
    variant: str = "PR",
    dataset: str = "tiger-east",
    n: int = 20_000,
    fanout: int | None = None,
    block_size: int = 4096,
    seed: int = 0,
    shards: int = 1,
    mmap: bool = False,
) -> Table:
    """Capture a Chrome-trace-event file from one live async workload.

    The ``repro trace`` subcommand: runs a single open-loop rate through
    the asyncio service with tracing on (100% head sampling by default)
    and writes the span stream to ``out`` — load it at
    https://ui.perfetto.dev or ``chrome://tracing``.  Everything else is
    :func:`serve_async_bench` with one rate; ``docs/observability.md``
    walks through reading the result.
    """
    return serve_async_bench(
        index=index,
        rates=(rate,),
        requests=requests,
        write_frac=write_frac,
        max_batch=max_batch,
        flush_ms=flush_ms,
        executor_workers=executor_workers,
        cache_pages=cache_pages,
        variant=variant,
        dataset=dataset,
        n=n,
        fanout=fanout,
        block_size=block_size,
        seed=seed,
        shards=shards,
        mmap=mmap,
        trace=out,
        metrics=metrics,
        sample_rate=sample_rate,
        slow_ms=slow_ms,
    )


def profile_capture(
    out: str | pathlib.Path,
    index: str | pathlib.Path | None = None,
    requests: int = 400,
    rate: float = 500.0,
    write_frac: float = 0.1,
    trace: str | pathlib.Path | None = None,
    max_batch: int = 64,
    flush_ms: float = 2.0,
    executor_workers: int = 4,
    cache_pages: int = 256,
    variant: str = "PR",
    dataset: str = "tiger-east",
    n: int = 20_000,
    fanout: int | None = None,
    block_size: int = 4096,
    seed: int = 0,
    shards: int = 1,
    mmap: bool = False,
) -> Table:
    """Capture a collapsed-stack CPU profile from one live async workload.

    The ``repro profile`` subcommand: runs a single open-loop rate
    through the asyncio service with the phase-attributed sampling
    profiler on and writes the collapsed stacks to ``out`` — feed it to
    ``flamegraph.pl`` or paste into https://speedscope.app.  The table
    footnotes carry the per-phase self-time digest (they sum to 100% of
    the sampled wall time); pass ``trace=`` to additionally capture the
    matching span trace, so flamegraph phases line up with trace spans.
    Everything else is :func:`serve_async_bench` with one rate.
    """
    return serve_async_bench(
        index=index,
        rates=(rate,),
        requests=requests,
        write_frac=write_frac,
        max_batch=max_batch,
        flush_ms=flush_ms,
        executor_workers=executor_workers,
        cache_pages=cache_pages,
        variant=variant,
        dataset=dataset,
        n=n,
        fanout=fanout,
        block_size=block_size,
        seed=seed,
        shards=shards,
        mmap=mmap,
        trace=trace,
        profile=out,
    )


def cache_report(
    index: str | pathlib.Path | None = None,
    requests: int = 2000,
    batch_size: int = 250,
    cache_pages: int = 256,
    workers: int = 1,
    variant: str = "PR",
    dataset: str = "tiger-east",
    n: int = 20_000,
    fanout: int | None = None,
    block_size: int = 4096,
    seed: int = 0,
    shards: int = 1,
    mmap: bool = False,
) -> Table:
    """What-if page-cache analytics for one index under a mixed workload.

    The ``repro cache-report`` subcommand: opens the index with the
    ghost-LRU :class:`~repro.obs.ReuseDistanceTracker` attached to every
    page store, drives the standard mixed batched workload through it,
    and tabulates the Mattson miss-ratio curve — predicted hits, misses
    and hit ratio at a ladder of alternative page budgets (the
    configured budget's row is marked ``*``).  Because the tracker
    observes the very same page-table lookups
    :class:`~repro.storage.paged.PageCacheStats` counts, the predicted
    ratio at the configured budget equals the measured hit ratio (the
    footnote states both); the other rows answer "what if the cache
    were K pages" without re-running anything.  Frequency-histogram and
    working-set footnotes size the hot set (``docs/observability.md``).

    For a sharded family the per-shard trackers are summed at equal
    budgets — each shard owns a ``cache_pages``-page cache, so budgets
    add across shards.
    """
    tmpdir: tempfile.TemporaryDirectory | None = None
    if index is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-cache-")
        index = pathlib.Path(tmpdir.name) / (
            "index.manifest" if shards > 1 else "index.pack"
        )
        pack_index(
            index,
            variant=variant,
            dataset=dataset,
            n=n,
            fanout=fanout,
            block_size=block_size,
            seed=seed,
            shards=shards,
        )
    try:
        with open_index(
            index,
            cache_pages=cache_pages,
            readonly=True,
            mmap=mmap,
            cache_analytics=True,
        ) as tree:
            server = QueryServer(tree, workers=workers)
            bounds = tree.root().mbr()
            stream = mixed_requests(bounds, count=requests, seed=seed + 1)
            for b in range(0, len(stream), batch_size):
                server.submit(stream[b : b + batch_size])

            hits, misses, curve, trackers = _aggregate_cache(tree)
            lookups = hits + misses
            measured = hits / lookups if lookups else 0.0
            sharded = isinstance(tree, ShardedTree)
            table = Table(
                title=(
                    f"cache-report: {requests} mixed requests against a "
                    f"{cache_pages}-page budget"
                    + (f", {tree.n_shards} shards" if sharded else "")
                ),
                headers=[
                    "budget_pages", "predicted_hits", "predicted_misses",
                    "predicted_hit_ratio",
                ],
            )
            for budget, budget_hits, accesses in curve or ():
                table.add_row(
                    f"{budget}*" if budget == cache_pages else str(budget),
                    budget_hits,
                    accesses - budget_hits,
                    budget_hits / accesses if accesses else 0.0,
                )
            table.add_note(
                f"index: {index} (size={tree.size}, height={tree.height}, "
                f"fanout={tree.fanout})"
            )
            table.add_note(
                f"measured: {hits}/{lookups} page-table lookups hit "
                f"({measured:.2%}) at the configured {cache_pages}-page "
                "budget — compare the * row (same access stream, so they "
                "agree; the other rows are the what-if)"
            )
            bands: dict[tuple[int, int], list[int]] = {}
            wss: dict[int, int] = {}
            unique = cold = 0
            for tracker in trackers:
                for band in tracker.frequency_histogram():
                    entry = bands.setdefault((band.lo, band.hi), [0, 0])
                    entry[0] += band.leaf_blocks
                    entry[1] += band.internal_blocks
                for window, size in tracker.working_set_sizes().items():
                    wss[window] = wss.get(window, 0) + size
                unique += tracker.unique_blocks
                cold += tracker.cold_misses
            if bands:
                table.add_note(
                    "access frequency (times-touched: leaf/internal "
                    "blocks): "
                    + ", ".join(
                        (f"{lo}" if lo == hi else f"{lo}-{hi}")
                        + f": {leaf}/{internal}"
                        for (lo, hi), (leaf, internal) in sorted(
                            bands.items()
                        )
                    )
                )
            table.add_note(
                f"working set: {unique} distinct blocks ever ({cold} cold "
                "misses); trailing-window sizes "
                + ", ".join(f"{w}: {s}" for w, s in sorted(wss.items()))
            )
            return table
    finally:
        if tmpdir is not None:
            tmpdir.cleanup()


def health_score(
    index: str | pathlib.Path,
    cache_pages: int = 64,
    mmap: bool = False,
) -> float | None:
    """The index's degradation score against its pack-time baseline.

    One quiet quality walk (:func:`repro.obs.health.index_quality`)
    folded through :func:`repro.obs.health.degradation_score`.  None
    when the index carries no baseline (packed before baselines existed
    or with ``baseline=False``).
    """
    with open_index(
        index, cache_pages=cache_pages, readonly=True, mmap=mmap
    ) as tree:
        quality, _ = health.index_quality(tree)
        return health.degradation_score(
            quality, getattr(tree, "health_baseline", None)
        )


def health_report(
    index: str | pathlib.Path,
    cache_pages: int = 64,
    mmap: bool = False,
) -> Table:
    """Tree-quality analytics for a packed index (``repro health``).

    Opens the index read-only and runs the cache-neutral quality walk
    (:func:`repro.obs.health.index_quality` — quiet peeks only, so
    neither :class:`~repro.storage.paged.PageCacheStats` nor the
    ghost-LRU tracker move), tabulating per level the node and entry
    counts, occupancy, sibling-MBR overlap, dead space and perimeter.
    The footnotes carry the aggregate quality ratios, store
    fragmentation, the per-shard balance of a sharded family, and —
    when the index was packed with a baseline — the baseline itself and
    the normalized degradation score that arms the self-maintenance
    trigger (``docs/observability.md``).
    """
    with open_index(
        index, cache_pages=cache_pages, readonly=True, mmap=mmap
    ) as tree:
        quality, per_shard = health.index_quality(tree)
        sharded = isinstance(tree, ShardedTree)
        table = Table(
            title=(
                f"index health: size={quality.size}, "
                f"height={quality.height}, fanout={quality.fanout}, "
                f"{quality.nodes} nodes"
                + (f", {len(per_shard)} shards" if per_shard else "")
            ),
            headers=[
                "level", "kind", "nodes", "entries", "occupancy",
                "overlap_area", "dead_area", "perimeter",
            ],
        )
        for lvl in quality.levels:
            table.add_row(
                lvl.level,
                "leaf" if lvl.leaf
                else ("root" if lvl.level == 0 else "internal"),
                lvl.nodes,
                lvl.entries,
                lvl.occupancy,
                lvl.overlap,
                lvl.dead,
                lvl.perimeter,
            )
        table.add_note(f"index: {index}")
        table.add_note(
            f"aggregate: leaf occupancy {quality.leaf_occupancy:.4f}, "
            f"directory overlap ratio {quality.overlap_ratio:.6f}, "
            f"dead-space ratio {quality.dead_ratio:.6f}, "
            f"mean directory margin {quality.mean_margin:.4f}"
        )
        table.add_note(
            f"store: {quality.free_blocks} freelist blocks, "
            f"{quality.pending_reclaim} pending reclaim, "
            f"fragmentation {quality.fragmentation:.4f}"
        )
        if sharded and per_shard:
            table.add_note(
                "per-shard size / leaf occupancy: "
                + ", ".join(
                    f"shard{i}: {q.size}/{q.leaf_occupancy:.3f}"
                    for i, q in enumerate(per_shard)
                )
                + f" (imbalance {quality.imbalance:.4f})"
            )
        baseline = getattr(tree, "health_baseline", None)
        score = health.degradation_score(quality, baseline)
        if score is None:
            table.add_note(
                "no pack-time baseline recorded: degradation score "
                "unavailable (re-pack to record one)"
            )
        else:
            table.add_note(f"baseline: {baseline}")
            table.add_note(
                f"degradation score: {score:.6f} "
                "(0 = freshly packed; weighted relative drift per "
                "repro.obs.health.DEGRADATION_WEIGHTS)"
            )
        return table


def explain_report(
    index: str | pathlib.Path | None = None,
    kind: str = "window",
    queries: int = 8,
    area_percent: float = 1.0,
    k: int = 10,
    cache_pages: int = 256,
    variant: str = "PR",
    dataset: str = "tiger-east",
    n: int = 20_000,
    fanout: int | None = None,
    block_size: int = 4096,
    seed: int = 0,
    shards: int = 1,
    mmap: bool = False,
    trace: str | pathlib.Path | None = None,
    sample_rate: float = 1.0,
) -> Table:
    """Per-query EXPLAIN plans for a workload (``repro explain``).

    Runs ``queries`` requests of ``kind`` (``window``, ``count``,
    ``containment``, ``point``, ``knn``, or ``mixed``) through a
    :class:`~repro.server.QueryServer` armed with plan capture
    (``explain=True``), one table row per executed request: nodes
    visited, entries examined/pruned, leaf I/O against the paper's
    ``ceil(T/B)`` lower bound, pruning efficiency, and attributed
    physical reads.  The footnotes render the *worst* plan (lowest
    pruning efficiency) as the full indented plan tree.

    With ``index=None`` a temporary index is packed first (the usual
    ``variant``/``dataset``/``n``/``shards`` knobs).  A sharded index
    carries no per-query plan (each shard's engine traverses
    independently) — the table then reports stats-only rows and says
    so.  ``trace=OUT.jsonl`` additionally traces the run so ``repro
    explain --trace`` can self-check span nesting.
    """
    tmpdir: tempfile.TemporaryDirectory | None = None
    writer, tracer = _make_tracer(trace, sample_rate, None)
    if index is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-explain-")
        index = pathlib.Path(tmpdir.name) / (
            "index.manifest" if shards > 1 else "index.pack"
        )
        pack_index(
            index,
            variant=variant,
            dataset=dataset,
            n=n,
            fanout=fanout,
            block_size=block_size,
            seed=seed,
            shards=shards,
        )
    try:
        with open_index(
            index, cache_pages=cache_pages, readonly=True, mmap=mmap
        ) as tree:
            server = QueryServer(tree, explain=True)
            bounds = tree.root().mbr()
            if kind == "mixed":
                requests_list = mixed_requests(
                    bounds, count=queries, seed=seed + 1
                )
            else:
                windows = square_queries(
                    bounds, area_percent, count=queries, seed=seed + 1
                ).windows
                if kind == "window":
                    requests_list = [WindowRequest(w) for w in windows]
                elif kind == "count":
                    requests_list = [CountRequest(w) for w in windows]
                elif kind == "containment":
                    requests_list = [ContainmentRequest(w) for w in windows]
                elif kind == "point":
                    requests_list = [
                        PointRequest(w.center()) for w in windows
                    ]
                elif kind == "knn":
                    requests_list = [
                        KNNRequest(w.center(), k) for w in windows
                    ]
                else:
                    raise ValueError(f"unknown explain kind: {kind!r}")
            batch_traces = None
            if tracer is not None:
                batch_traces = [
                    tracer.begin(req.kind, req.kind)
                    for req in requests_list
                ]
            report = server.submit(requests_list, traces=batch_traces)
            if batch_traces is not None:
                for pending_trace in batch_traces:
                    tracer.finish(pending_trace)

            table = Table(
                title=(
                    f"explain: {len(requests_list)} {kind} requests, "
                    f"{cache_pages}-page cache"
                ),
                headers=[
                    "query", "kind", "nodes", "entries", "pruned",
                    "leaf_ios", "lower_bound", "efficiency",
                    "physical_reads",
                ],
            )
            worst = None
            plans = 0
            for i, result in enumerate(report.results):
                plan = result.plan
                if plan is None:
                    continue
                plans += 1
                if isinstance(plan, tuple):
                    continue
                leaf_reads = getattr(plan, "leaf_reads", None)
                table.add_row(
                    i,
                    result.request.kind,
                    plan.nodes_visited,
                    getattr(plan, "entries_examined", 0),
                    getattr(plan, "entries_pruned", 0),
                    leaf_reads if leaf_reads is not None else 0,
                    getattr(plan, "leaf_lower_bound", 0),
                    plan.pruning_efficiency,
                    getattr(plan, "physical_reads", 0),
                )
                if (
                    worst is None
                    or plan.pruning_efficiency < worst.pruning_efficiency
                ):
                    worst = plan
            table.add_note(
                f"index: {index} (size={tree.size}, height={tree.height}, "
                f"fanout={tree.fanout})"
            )
            if plans == 0:
                table.add_note(
                    "no per-query plans: sharded indexes traverse each "
                    "shard's engine independently, so only aggregate "
                    "stats exist (serve with repro_explain_* metrics "
                    "instead)"
                )
            if worst is not None:
                table.add_note(
                    "worst plan (lowest pruning efficiency):\n"
                    + worst.render()
                )
            if tracer is not None:
                table.add_note(
                    f"trace: {trace} ({tracer.emitted} of "
                    f"{tracer.started} requests emitted)"
                )
            return table
    finally:
        if writer is not None:
            writer.close()
        if tmpdir is not None:
            tmpdir.cleanup()


def mixed_update_requests(
    data: list,
    fresh: list,
    delete_frac: float = 0.5,
    seed: int = 0,
    index: str = DEFAULT_INDEX,
) -> tuple[list[Request], list]:
    """A reproducible mixed write stream over an existing dataset.

    Draws deletes from ``data`` (each entry at most once) and inserts
    from ``fresh``, shuffled with ``delete_frac`` deletes.  Returns the
    request list plus the expected live ``(rect, value)`` set after
    applying it — the oracle for post-update query checks.
    """
    rng = random.Random(seed)
    deletable = list(data)
    rng.shuffle(deletable)
    insertable = list(fresh)
    requests: list[Request] = []
    removed: Counter = Counter()
    inserted: list = []
    while deletable or insertable:
        use_delete = deletable and (
            not insertable or rng.random() < delete_frac
        )
        if use_delete:
            rect, value = deletable.pop()
            removed[(rect, value)] += 1
            requests.append(DeleteRequest(rect, value, index=index))
        else:
            rect, value = insertable.pop()
            inserted.append((rect, value))
            requests.append(InsertRequest(rect, value, index=index))
    # One tree entry disappears per DeleteRequest, so a duplicated
    # (rect, value) pair leaves the live set only as often as it was
    # drawn — not wholesale.
    live = []
    for pair in data:
        if removed[pair] > 0:
            removed[pair] -= 1
            continue
        live.append(pair)
    return requests, live + inserted


def update_bench(
    updates: int = 1000,
    queries: int = 100,
    batch_size: int = 250,
    cache_pages: int = 256,
    variant: str = "PR",
    dataset: str = "tiger-east",
    n: int = 20_000,
    fanout: int | None = None,
    block_size: int = 4096,
    area_percent: float = 0.25,
    seed: int = 0,
) -> Table:
    """Measure dynamic updates on a packed index and their query cost.

    Packs a bulk-loaded ``variant`` to a temporary index file, reopens
    it as a writable paged tree, and drives ``updates`` mixed
    inserts/deletes through the batched :class:`QueryServer` — the
    write-back page layer turns every batch's logical write I/Os into
    one physical write per distinct dirty page (reported per batch).
    The same window workload is measured three times: on the freshly
    bulk-loaded index, after the updates (the paper's point that
    updates do not maintain query efficiency), and on a fresh bulk-load
    of the *final* dataset — the re-pack baseline the degradation is
    judged against.  The updated tree is validated and compared
    entry-for-entry against an in-memory oracle holding the same data.
    """
    if dataset not in DATASETS:
        raise ValueError(
            f"unknown dataset {dataset!r}; choose from {sorted(DATASETS)}"
        )
    if fanout is None:
        fanout = fanout_for_block(block_size, 2)
    data = DATASETS[dataset](n, seed)
    fresh = DATASETS[dataset](updates, seed + 7919)
    half = updates // 2
    stream_data, stream_fresh = data, fresh[: updates - half]

    table = Table(
        title=(
            f"update-bench: {updates} mixed inserts/deletes on a packed "
            f"{variant} index ({dataset}, n={n})"
        ),
        headers=[
            "phase", "ops", "write_ios", "pages_flushed",
            "leaf_ios", "ios_per_query", "latency_ms",
        ],
    )

    with tempfile.TemporaryDirectory(prefix="repro-update-") as tmpdir:
        path = pathlib.Path(tmpdir) / "index.pack"
        mem_tree = build_variant(variant, data, fanout)
        pack_tree(mem_tree, path, block_size=block_size)

        with PagedTree.open(
            path, values=dict(mem_tree.objects), cache_pages=cache_pages
        ) as tree:
            server = QueryServer(tree)
            bounds = tree.root().mbr()
            windows = square_queries(
                bounds, area_percent, count=queries, seed=seed + 1
            ).windows

            def query_phase(target, label: str) -> None:
                engine = QueryEngine(target)
                start = time.perf_counter()
                for window in windows:
                    engine.query(window)
                elapsed = time.perf_counter() - start
                table.add_row(
                    label,
                    len(windows),
                    0,
                    0,
                    engine.totals.leaf_reads,
                    engine.totals.leaf_reads / max(1, len(windows)),
                    elapsed * 1000.0,
                )

            query_phase(tree, "bulk-loaded query")

            # Draw deletes from only part of the dataset so the stream
            # has `half` deletes and the rest inserts.
            requests, live = mixed_update_requests(
                stream_data[:half] if half else [],
                stream_fresh,
                seed=seed + 2,
            )
            live = live + stream_data[half:]
            total_write_ios = 0
            total_flushed = 0
            for b in range(0, len(requests), batch_size):
                batch = requests[b : b + batch_size]
                report = server.submit(batch)
                total_write_ios += report.write_ios
                total_flushed += report.pages_flushed
                table.add_row(
                    f"update batch {b // batch_size}",
                    report.writes,
                    report.write_ios,
                    report.pages_flushed,
                    0,
                    0,
                    report.latency_s * 1000.0,
                )

            validate_rtree(tree, expect_size=len(live))
            query_phase(tree, "post-update query")

        fresh_tree = build_variant(variant, live, fanout)
        query_phase(fresh_tree, "fresh bulk-load query")

    table.add_note(
        f"write-back: {total_write_ios} logical write I/Os became "
        f"{total_flushed} physical page writes "
        f"({total_flushed / max(1, total_write_ios):.2%} of write-through)"
    )
    table.add_note(
        "post-update vs fresh bulk-load = query degradation left behind "
        "by the standard R-tree update algorithms (paper Section 1.2)"
    )
    return table
