"""One function per figure of the paper's evaluation section.

Every function returns a :class:`~repro.experiments.report.Table` whose
rows mirror the series of the corresponding figure.  Scale defaults are
laptop-sized (the paper runs 10–16.7 million rectangles on a 2003 server;
see DESIGN.md §3 for the regime argument); pass larger ``n`` for closer
absolute numbers.

The paper's reference readings, for side-by-side comparison (all from
Section 3.3):

* Figure 9 — Western: H/H4 1.2 M I/Os, PR 3.1 M, TGS 14.7 M; Eastern:
  1.7 M / 4.4 M / 21.1 M.  Times: 451 s / 1495 s / 4421 s (Western).
* Figure 10 — H/H4/PR "scale relatively linearly", TGS slightly
  superlinearly; at 16.7 M rects: 1.7 / 4.4 / 21.1 M I/Os.
* Figure 11 — TGS build time varies 3726–14034 s across SIZE/ASPECT
  parameters while H/H4 (381 s) and PR (1289 s) are distribution-blind.
* Figures 12/13 — all variants within ~10 % of each other and close to
  T/B; TGS ≤ PR ≤ H ≤ H4.
* Figure 14 — same ordering, stable across dataset sizes.
* Figure 15 — SIZE: PR ≈ H4 ≪ TGS < H as rectangles grow; ASPECT:
  PR ≈ H4 ≪ TGS ≪ H; SKEWED: PR flat, others degrade (H to 340 %).
"""

from __future__ import annotations

from repro.datasets.synthetic import aspect_dataset, size_dataset, skewed_dataset
from repro.datasets.tiger import eastern_scaling_series, tiger_dataset
from repro.experiments.harness import (
    EXTERNAL_VARIANTS,
    VARIANT_ORDER,
    build_variant,
    build_variant_external,
    measure_workload,
)
from repro.experiments.report import Table
from repro.external.memory import MemoryModel
from repro.iomodel.counters import TimeModel
from repro.workloads.queries import dataset_bounds, skewed_queries, square_queries

#: Query-area sweep of Figures 12/13 (percent of the data bounding box).
AREA_SWEEP = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0]

#: Parameter sweeps of Figures 11/15.  The paper's SIZE sweep stops at
#: max_side = 0.2; the reproduction adds one more point (0.4) because at
#: laptop-scale N the H-vs-H4 crossover the paper observes lands slightly
#: beyond 0.2 (the heuristics' degradation grows with N, PR/H4's fixed
#: overhead shrinks — see EXPERIMENTS.md).
SIZE_SWEEP = [0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4]
ASPECT_SWEEP = [10.0, 100.0, 1000.0, 10000.0, 100000.0]
SKEW_SWEEP = [1, 3, 5, 7, 9]


def _default_memory(fanout: int) -> MemoryModel:
    """A small (M, B) model keeping the paper's M ≫ B regime."""
    return MemoryModel(memory_records=64 * fanout, block_records=fanout)


# ----------------------------------------------------------------------
# Bulk-loading experiments (Figures 9-11)
# ----------------------------------------------------------------------


def figure9(
    n_eastern: int = 10_000,
    n_western: int = 7_200,
    fanout: int = 16,
    memory: MemoryModel | None = None,
    seed: int = 0,
) -> Table:
    """Figure 9: bulk-loading I/Os and time on the TIGER datasets.

    Paper shape: H = H4 ≈ 2.5× fewer I/Os than PR; TGS ≈ 4.5× more than
    PR.  In time, H/H4 are >3× faster than PR but TGS only ~3× slower —
    H/H4/PR are more CPU-intensive than TGS.
    """
    memory = memory or _default_memory(fanout)
    tm = TimeModel()
    table = Table(
        title="Figure 9: bulk-loading performance on TIGER-like data",
        headers=["dataset", "variant", "io_blocks", "seq_frac", "model_io_s", "cpu_s"],
    )
    datasets = [
        ("western", tiger_dataset(n_western, "western", seed=seed)),
        ("eastern", tiger_dataset(n_eastern, "eastern", seed=seed)),
    ]
    for ds_name, data in datasets:
        for variant in VARIANT_ORDER:
            _, stats = build_variant_external(variant, data, fanout, memory)
            table.add_row(
                ds_name,
                variant,
                stats.io.total,
                stats.io.sequential / stats.io.total if stats.io.total else 0.0,
                tm.seconds(stats.io),
                stats.cpu_seconds,
            )
    table.add_note(
        f"n_eastern={n_eastern}, n_western={n_western}, B={fanout}, "
        f"M={memory.memory_records} records (paper: 16.7M/12M rects, B=113)"
    )
    return table


def figure10(
    max_n: int = 10_000,
    fanout: int = 16,
    memory: MemoryModel | None = None,
    seed: int = 0,
) -> Table:
    """Figure 10: bulk-loading I/Os on the five Eastern subsets.

    Paper shape: H/H4/PR scale linearly in dataset size; TGS slightly
    superlinearly (its log2 N recursion depth grows).
    """
    memory = memory or _default_memory(fanout)
    table = Table(
        title="Figure 10: bulk-loading I/Os vs dataset size (Eastern subsets)",
        headers=["n", "variant", "io_blocks", "io_per_rect"],
    )
    for n, data in eastern_scaling_series(max_n, seed=seed):
        for variant in VARIANT_ORDER:
            _, stats = build_variant_external(variant, data, fanout, memory)
            table.add_row(n, variant, stats.io.total, stats.io.total / n)
    table.add_note(f"max_n={max_n}, B={fanout}, M={memory.memory_records} records")
    return table


def figure11(
    n: int = 6_000,
    fanout: int = 16,
    memory: MemoryModel | None = None,
    seed: int = 0,
) -> Table:
    """Figure 11: TGS bulk-loading cost across data distributions.

    Paper shape: TGS build time varies by up to ~3.8× across
    SIZE/ASPECT parameters (3726 s → 14 034 s) because its binary
    partitions depend on the data; H/H4/PR are flat.  The table includes
    the PR-tree on the same datasets as the flatness control.
    """
    memory = memory or _default_memory(fanout)
    tm = TimeModel()
    table = Table(
        title="Figure 11: TGS bulk-loading cost by distribution (PR control)",
        headers=["dataset", "variant", "io_blocks", "model_io_s", "cpu_s"],
    )
    workloads = [(f"size({s})", size_dataset(n, s, seed=seed)) for s in SIZE_SWEEP]
    workloads += [
        (f"aspect({int(a)})", aspect_dataset(n, a, seed=seed)) for a in ASPECT_SWEEP
    ]
    for ds_name, data in workloads:
        for variant in ("TGS", "PR"):
            _, stats = build_variant_external(variant, data, fanout, memory)
            table.add_row(
                ds_name, variant, stats.io.total, tm.seconds(stats.io), stats.cpu_seconds
            )
    table.add_note(f"n={n} per dataset, B={fanout} (paper: 10M rects per dataset)")
    return table


# ----------------------------------------------------------------------
# Query experiments (Figures 12-15)
# ----------------------------------------------------------------------


def _query_sweep_table(
    title: str,
    data,
    fanout: int,
    areas: list[float],
    queries: int,
    seed: int,
) -> Table:
    """Shared Figure 12/13 logic: area sweep on one dataset."""
    table = Table(
        title=title,
        headers=["area_%", "variant", "cost_ratio", "avg_ios", "avg_T"],
    )
    bounds = dataset_bounds(data)
    trees = {name: build_variant(name, data, fanout) for name in VARIANT_ORDER}
    for area in areas:
        workload = square_queries(bounds, area, count=queries, seed=seed)
        for variant in VARIANT_ORDER:
            metrics = measure_workload(trees[variant], workload)
            table.add_row(
                area, variant, metrics.cost_ratio, metrics.avg_ios, metrics.avg_reported
            )
    return table


def figure12(
    n: int = 10_000,
    fanout: int = 16,
    queries: int = 100,
    areas: list[float] | None = None,
    seed: int = 0,
) -> Table:
    """Figure 12: query cost vs window area, Western TIGER-like data.

    Paper shape: all four variants within ~10 % of each other and close
    to the T/B lower bound; TGS best, then PR, then H, then H4.
    """
    data = tiger_dataset(n, "western", seed=seed)
    table = _query_sweep_table(
        "Figure 12: query cost vs window area (Western)",
        data,
        fanout,
        areas or AREA_SWEEP,
        queries,
        seed,
    )
    table.add_note(f"n={n}, B={fanout}, {queries} queries per point")
    return table


def figure13(
    n: int = 10_000,
    fanout: int = 16,
    queries: int = 100,
    areas: list[float] | None = None,
    seed: int = 0,
) -> Table:
    """Figure 13: query cost vs window area, Eastern TIGER-like data."""
    data = tiger_dataset(n, "eastern", seed=seed)
    table = _query_sweep_table(
        "Figure 13: query cost vs window area (Eastern)",
        data,
        fanout,
        areas or AREA_SWEEP,
        queries,
        seed,
    )
    table.add_note(f"n={n}, B={fanout}, {queries} queries per point")
    return table


def figure14(
    max_n: int = 12_000,
    fanout: int = 16,
    queries: int = 100,
    area_percent: float = 1.0,
    seed: int = 0,
) -> Table:
    """Figure 14: query cost vs dataset size, 1 % windows, Eastern.

    Paper shape: the relative ordering (TGS ≤ PR ≤ H ≤ H4, all within
    ~10 %) is stable across the five dataset sizes.
    """
    table = Table(
        title="Figure 14: query cost vs dataset size (Eastern, 1% windows)",
        headers=["n", "variant", "cost_ratio", "avg_ios", "avg_T"],
    )
    for n, data in eastern_scaling_series(max_n, seed=seed):
        bounds = dataset_bounds(data)
        workload = square_queries(bounds, area_percent, count=queries, seed=seed)
        for variant in VARIANT_ORDER:
            tree = build_variant(variant, data, fanout)
            metrics = measure_workload(tree, workload)
            table.add_row(
                n, variant, metrics.cost_ratio, metrics.avg_ios, metrics.avg_reported
            )
    table.add_note(f"max_n={max_n}, B={fanout}, {queries} queries per point")
    return table


def figure15(
    n: int = 10_000,
    fanout: int = 16,
    queries: int = 100,
    panel: str = "all",
    seed: int = 0,
) -> Table:
    """Figure 15: query cost on the synthetic extreme datasets.

    Panels (select with ``panel``): ``size``, ``aspect``, ``skewed``.

    Paper shape — the headline result:

    * SIZE: for small rectangles everyone is near optimal; as max_side
      grows PR and H4 stay best, TGS worse, H worst (up to ~2×).
    * ASPECT: as aspect ratio grows PR ≈ H4 stay near optimal, TGS
      degrades, H degrades badly.
    * SKEWED: PR is *unaffected* (its construction only compares
      same-axis coordinates); H, H4 and TGS degrade (H to ~340 %).
    """
    table = Table(
        title=f"Figure 15 ({panel}): query cost on extreme synthetic data",
        headers=["dataset", "variant", "cost_ratio", "avg_ios", "avg_T"],
    )
    workloads: list[tuple[str, list, object]] = []
    if panel in ("all", "size"):
        for s in SIZE_SWEEP:
            workloads.append((f"size({s})", size_dataset(n, s, seed=seed), None))
    if panel in ("all", "aspect"):
        for a in ASPECT_SWEEP:
            workloads.append(
                (f"aspect({int(a)})", aspect_dataset(n, a, seed=seed), None)
            )
    if panel in ("all", "skewed"):
        for c in SKEW_SWEEP:
            workloads.append(
                (f"skewed({c})", skewed_dataset(n, c, seed=seed), c)
            )
    if not workloads:
        raise ValueError("panel must be one of: all, size, aspect, skewed")

    for ds_name, data, skew_c in workloads:
        bounds = dataset_bounds(data)
        if skew_c is None:
            workload = square_queries(bounds, 1.0, count=queries, seed=seed)
        else:
            workload = skewed_queries(skew_c, 1.0, count=queries, seed=seed)
        for variant in VARIANT_ORDER:
            tree = build_variant(variant, data, fanout)
            metrics = measure_workload(tree, workload)
            table.add_row(
                ds_name, variant, metrics.cost_ratio, metrics.avg_ios, metrics.avg_reported
            )
    table.add_note(f"n={n} per dataset, B={fanout}, {queries} queries per point")
    return table
