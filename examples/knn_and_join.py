#!/usr/bin/env python3
"""kNN and spatial join: the query operators beyond the window query.

Builds two PR-trees on a simulated disk, then:

1. answers batched k-nearest-neighbor queries with the best-first engine,
2. browses neighbors incrementally (stop whenever you have enough),
3. joins the two datasets with a synchronized dual-tree traversal,
4. runs point / containment / count queries,

printing the leaf-I/O cost of each operator — the same accounting the
paper uses for window queries.

Run with:  python examples/knn_and_join.py
"""

import random

from repro import (
    BlockStore,
    KNNEngine,
    PointQueryEngine,
    Rect,
    SpatialJoinEngine,
    build_prtree,
)


def make_rects(n: int, max_side: float, seed: int):
    rng = random.Random(seed)
    data = []
    for i in range(n):
        x, y = rng.random(), rng.random()
        w, h = rng.random() * max_side, rng.random() * max_side
        data.append((Rect((x, y), (min(1, x + w), min(1, y + h))), f"obj-{i}"))
    return data


def main() -> None:
    # Two datasets: "restaurants" and "hotels", say.
    restaurants = make_rects(5_000, 0.01, seed=1)
    hotels = make_rects(2_000, 0.01, seed=2)

    r_tree = build_prtree(BlockStore(), restaurants, fanout=32)
    h_tree = build_prtree(BlockStore(), hotels, fanout=32)
    print(f"built PR-trees: {len(r_tree)} restaurants, {len(h_tree)} hotels")

    # 1. Batched kNN: the 5 restaurants nearest to the city center.
    knn_engine = KNNEngine(r_tree)
    neighbors, stats = knn_engine.knn((0.5, 0.5), k=5)
    print(f"\n5 nearest restaurants to (0.5, 0.5) — {stats.leaf_reads} leaf I/Os:")
    for nb in neighbors:
        print(f"  {nb.value:>9} at distance {nb.distance:.4f}")

    # 2. Incremental browsing: walk outward until we pass distance 0.02.
    print("\nincremental browse until distance > 0.02:")
    found = 0
    for nb in knn_engine.nearest((0.5, 0.5)):
        if nb.distance > 0.02:
            break
        found += 1
    print(f"  {found} restaurants within distance 0.02")

    # 3. Spatial join: every (restaurant, hotel) pair whose boxes meet.
    join_engine = SpatialJoinEngine(r_tree, h_tree)
    pairs, jstats = join_engine.join()
    print(
        f"\nspatial join: {jstats.pairs} overlapping pairs, "
        f"{jstats.ios} leaf I/Os "
        f"({jstats.left.leaf_reads} left + {jstats.right.leaf_reads} right)"
    )

    # 4. Point, containment and count queries share one engine (and one
    #    warm internal-node cache).
    point_engine = PointQueryEngine(r_tree)
    stabbed, pstats = point_engine.point_query((0.25, 0.25))
    print(
        f"\nstabbing (0.25, 0.25): {len(stabbed)} restaurants cover it "
        f"({pstats.leaf_reads} leaf I/Os)"
    )
    downtown = Rect((0.4, 0.4), (0.6, 0.6))
    contained, _ = point_engine.containment_query(downtown)
    count, cstats = point_engine.count(downtown)
    print(
        f"downtown window: {count} intersecting, {len(contained)} fully "
        f"inside ({cstats.leaf_reads} leaf I/Os for the count)"
    )


if __name__ == "__main__":
    main()
