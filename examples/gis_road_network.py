#!/usr/bin/env python3
"""GIS scenario: index a road network and compare all R-tree variants.

Mirrors the paper's TIGER/Line experiments (Figures 12-13): bulk-load the
packed Hilbert, 4D-Hilbert, TGS and PR trees on simulated road-segment
bounding boxes, then run square window queries of growing size and report
the paper's metric — leaf blocks read divided by the output bound T/B.

Run with:  python examples/gis_road_network.py
"""

from repro.datasets.tiger import tiger_dataset
from repro.experiments.harness import VARIANT_ORDER, build_variant, measure_workload
from repro.experiments.report import Table
from repro.workloads.queries import dataset_bounds, square_queries


def main() -> None:
    n = 12_000
    fanout = 16
    print(f"generating {n} road-segment bounding boxes (Eastern preset)...")
    data = tiger_dataset(n, "eastern", seed=7)
    bounds = dataset_bounds(data)

    print("bulk-loading all four variants...")
    trees = {name: build_variant(name, data, fanout) for name in VARIANT_ORDER}

    table = Table(
        title="Window-query cost on road data (leaf I/Os / (T/B); 1.0 = optimal)",
        headers=["query area %"] + VARIANT_ORDER,
    )
    for area in (0.25, 0.5, 1.0, 2.0):
        workload = square_queries(bounds, area, count=50, seed=11)
        row = [area]
        for name in VARIANT_ORDER:
            metrics = measure_workload(trees[name], workload)
            row.append(round(metrics.cost_ratio, 3))
        table.add_row(*row)

    print()
    print(table)
    print(
        "\nPaper's reading (Fig 12/13): on nicely-distributed road data all\n"
        "four variants are close to each other and to the optimal T/B."
    )


if __name__ == "__main__":
    main()
