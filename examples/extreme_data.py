#!/usr/bin/env python3
"""Robustness scenario: where heuristic R-trees fall over and the PR-tree
does not.

Two workloads from the paper:

1. CLUSTER (Table 1): points in tight clusters along a line, queried with
   thin horizontal slits through every cluster.
2. The Theorem 3 adversarial dataset: a shifted grid engineered so that
   Hilbert- and TGS-built trees must visit *every* leaf to report nothing.

Run with:  python examples/extreme_data.py
"""

from repro.datasets.synthetic import cluster_dataset
from repro.datasets.worstcase import worstcase_dataset, worstcase_query
from repro.experiments.harness import VARIANT_ORDER, build_variant, measure_workload
from repro.experiments.report import Table
from repro.prtree.prtree import prtree_query_bound
from repro.rtree.query import QueryEngine
from repro.workloads.queries import cluster_line_queries


def cluster_demo() -> None:
    n, fanout, clusters = 20_000, 16, 20
    data = cluster_dataset(n, clusters=clusters, seed=1)
    workload = cluster_line_queries(clusters, count=30, seed=2)

    table = Table(
        title=f"CLUSTER: thin line queries through {clusters} clusters "
        f"({n} points)",
        headers=["variant", "avg leaf I/Os", "% of leaves visited"],
    )
    for name in VARIANT_ORDER:
        tree = build_variant(name, data, fanout)
        metrics = measure_workload(tree, workload)
        table.add_row(name, round(metrics.avg_ios, 1),
                      round(100 * metrics.visited_fraction, 2))
    print(table)
    print("paper (10M points): H 37%, H4 94%, PR 1.2%, TGS 25%\n")


def worstcase_demo() -> None:
    fanout = 16
    data = worstcase_dataset(16_384, fanout)
    n = len(data)

    table = Table(
        title=f"Theorem 3 dataset ({n} points): query reporting NOTHING",
        headers=["variant", "avg leaf I/Os", "% of leaves visited"],
    )
    for name in VARIANT_ORDER:
        tree = build_variant(name, data, fanout)
        engine = QueryEngine(tree)
        total = 0
        rounds = 10
        for seed in range(rounds):
            matches, stats = engine.query(worstcase_query(n, fanout, seed=seed))
            assert not matches
            total += stats.leaf_reads
        table.add_row(
            name,
            round(total / rounds, 1),
            round(100 * total / rounds / tree.leaf_count(), 2),
        )
    print(table)
    bound = prtree_query_bound(n, fanout, reported=0)
    print(f"PR-tree's worst-case bound c*(sqrt(N/B)+1) = {bound:.0f} leaf I/Os")
    print("paper: H/H4/TGS provably visit ALL leaves; PR is O(sqrt(N/B)).")


def main() -> None:
    cluster_demo()
    worstcase_demo()


if __name__ == "__main__":
    main()
