#!/usr/bin/env python3
"""Persistence: ship a bulk-loaded index as real bytes.

The simulator keeps nodes decoded for speed, but the paper's physical
layout (36-byte entries, 4 KB blocks, fan-out 113 — Section 3.1) is
fully specified.  `serialize_tree` flattens a tree into that exact
layout; `deserialize_tree` rebuilds an identical tree.

Run with:  python examples/persistence.py
"""

import tempfile
import pathlib
import random

from repro import (
    BlockStore,
    QueryEngine,
    Rect,
    build_prtree,
    deserialize_tree,
    fanout_for_block,
    serialize_tree,
    validate_rtree,
)


def main() -> None:
    rng = random.Random(1)
    n = 5_000
    data = []
    for i in range(n):
        x, y = rng.random(), rng.random()
        data.append((Rect((x, y), (x + 0.005, y + 0.005)), i))

    # The paper's physical parameters: 4 KB blocks hold 113 entries.
    fanout = fanout_for_block(4096, dim=2)
    print(f"fan-out derived from 4 KB blocks: {fanout}")

    tree = build_prtree(BlockStore(), data, fanout)
    image = serialize_tree(tree, block_size=4096)
    print(f"serialized {tree.node_count()} nodes "
          f"into {len(image):,} bytes ({len(image) / n:.0f} B/rect)")

    # Round-trip through an actual file.
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "roads.prtree"
        path.write_bytes(image)
        loaded = deserialize_tree(
            path.read_bytes(),
            BlockStore(),
            values=dict(tree.objects),
        )

    validate_rtree(loaded, expect_size=n)
    window = Rect((0.25, 0.25), (0.30, 0.30))
    original, _ = QueryEngine(tree).query(window)
    reloaded, _ = QueryEngine(loaded).query(window)
    assert sorted(v for _, v in original) == sorted(v for _, v in reloaded)
    print(f"reloaded tree answers identically: "
          f"{len(reloaded)} matches for {window}")


if __name__ == "__main__":
    main()
