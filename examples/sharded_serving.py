#!/usr/bin/env python3
"""Sharded serving: one logical index, K files, scatter/gather batches.

Builds a PR-tree, splits it into a 4-shard Hilbert-range family with
`shard_pack`, and serves a mixed read/write batch through the
`QueryServer` — which fans each request out to only the shards that can
contribute and reports a per-shard I/O breakdown.  A single-file pack
of the same tree answers identically, which is the whole point: the
partition changes where the bytes live, not what queries return.

Run with:  PYTHONPATH=src python examples/sharded_serving.py
"""

import pathlib
import tempfile

from repro import BlockStore, Rect, build_prtree
from repro.datasets.tiger import tiger_dataset
from repro.server import (
    CountRequest,
    DeleteRequest,
    InsertRequest,
    KNNRequest,
    QueryServer,
    WindowRequest,
)
from repro.storage import PagedTree, ShardedTree, pack_tree, shard_pack


def main() -> None:
    n = 6_000
    data = tiger_dataset(n, "eastern", seed=0)
    tree = build_prtree(BlockStore(), data, fanout=113)
    bounds = tree.root().mbr()

    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)

        # One logical index, two physical shapes.
        pack_tree(tree, tmp / "roads.pack")
        family_stats = shard_pack(tree, tmp / "roads.manifest", shards=4)
        print(
            f"packed {n} rects into {family_stats.shards} shards "
            f"({family_stats.file_bytes / 2**20:.2f} MB total, "
            f"{family_stats.write_ios} write I/Os)"
        )

        values = dict(tree.objects)
        with (
            PagedTree.open(tmp / "roads.pack", values=values) as single,
            ShardedTree.open(tmp / "roads.manifest", values=values) as family,
        ):
            for i, info in enumerate(family.infos):
                print(
                    f"  shard {i}: {info.size} rects, "
                    f"{info.n_blocks} blocks, hilbert "
                    f"[{info.hilbert_lo}..{info.hilbert_hi}]"
                )

            server = QueryServer(
                {"single": single, "family": family}, workers=4
            )

            side = bounds.side(0) * 0.08
            window = Rect(
                tuple(c - side for c in bounds.center()),
                tuple(c + side for c in bounds.center()),
            )
            fresh = tiger_dataset(10, "eastern", seed=9)

            def batch(index: str):
                requests = [
                    InsertRequest(rect, value, index=index)
                    for rect, value in fresh
                ]
                requests += [DeleteRequest(*data[3], index=index)]
                requests += [
                    WindowRequest(window, index=index),
                    CountRequest(window, index=index),
                    KNNRequest(bounds.center(), k=5, index=index),
                ]
                return requests

            report_single = server.submit(batch("single"))
            report_family = server.submit(batch("family"))

            # Identical answers from both shapes, write results included
            # (window matches are a set; each shape reports them in its
            # own traversal order).
            *writes_s, matches_s, count_s, knn_s = report_single.values()
            *writes_f, matches, count, neighbors = report_family.values()
            assert writes_s == writes_f
            assert sorted(v for _, v in matches_s) == sorted(
                v for _, v in matches
            )
            assert count_s == count
            assert [nb.distance for nb in knn_s] == [
                nb.distance for nb in neighbors
            ]
            print(
                f"window hit {count} rects; nearest 5 at distances "
                f"{[round(nb.distance, 4) for nb in neighbors]}"
            )

            loads = report_family.shard_loads["family"]
            print("per-shard batch load (logical reads / physical reads):")
            for i, load in enumerate(loads):
                print(
                    f"  shard {i}: {load.reads:4d} / {load.physical_reads:4d}"
                    f"  ({load.busy_s * 1000:.1f} ms busy)"
                )

            # The server already synced after the batch's writes
            # (sync_writes=True), so the batch reported the flushes...
            print(
                f"batch flushed {report_family.pages_flushed} dirty pages "
                f"for {report_family.write_ios} logical write I/Os"
            )
            # ...and an explicit sync is an idempotent consistency point.
            assert family.sync() == 0

        # The family reopens cold — readonly handles reject updates.
        with ShardedTree.open(
            tmp / "roads.manifest", values=values, readonly=True
        ) as cold:
            assert cold.size == n + len(fresh) - 1
            print(
                f"reopened cold: {cold.n_shards} shards, "
                f"{cold.size} rects, identical answers"
            )


if __name__ == "__main__":
    main()
