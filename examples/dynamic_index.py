#!/usr/bin/env python3
"""Dynamic indexing: Guttman updates versus the logarithmic-method PR-tree.

The paper's Section 1.2 / concluding remarks sketch two ways to make a
PR-tree dynamic:

* apply the *standard R-tree updating algorithms* — cheap per update, but
  the worst-case query guarantee is lost as updates accumulate;
* use the *external logarithmic method* — a forest of static PR-trees
  that are periodically rebuilt, keeping the optimal query bound at the
  price of amortized rebuild work.

This example runs the same mixed insert/delete/query workload through
both and reports query costs on the adversarial dataset, where the
difference matters.

Run with:  python examples/dynamic_index.py
"""

import random

from repro import (
    BlockStore,
    LogMethodPRTree,
    QueryEngine,
    Rect,
    RTree,
    build_prtree,
    delete,
    insert,
)
from repro.datasets.worstcase import worstcase_dataset, worstcase_query


def main() -> None:
    fanout = 16
    base = worstcase_dataset(8_192, fanout)
    n = len(base)
    rng = random.Random(5)

    # --- Strategy A: bulk-load a PR-tree, then mutate it with Guttman
    # updates (half the data deleted and reinserted, shuffled).
    store_a = BlockStore()
    guttman = build_prtree(store_a, base, fanout)
    churn = base[: n // 2]
    rng.shuffle(churn)
    for rect, value in churn:
        delete(guttman, rect, value)
    for rect, value in churn:
        insert(guttman, rect, value)

    # --- Strategy B: the logarithmic method, fed one record at a time.
    store_b = BlockStore()
    logtree = LogMethodPRTree(store_b, fanout=fanout)
    for rect, value in base:
        logtree.insert(rect, value)

    # --- Reference: a freshly bulk-loaded static PR-tree.
    static = build_prtree(BlockStore(), base, fanout)

    # --- Compare empty-output adversarial queries.
    rounds = 10
    engines = {
        "static PR-tree (reference)": QueryEngine(static),
        "PR-tree + Guttman churn": QueryEngine(guttman),
    }
    totals = {name: 0 for name in engines}
    log_total = 0
    for seed in range(rounds):
        window = worstcase_query(n, fanout, seed=seed)
        for name, engine in engines.items():
            _, stats = engine.query(window)
            totals[name] += stats.leaf_reads
        _, log_stats = logtree.query_with_stats(window)
        log_total += log_stats.leaf_reads

    print(f"adversarial empty-output queries over {n} points (B={fanout}):")
    for name, total in totals.items():
        print(f"  {name:27s}: {total / rounds:7.1f} leaf I/Os/query")
    print(f"  {'logarithmic-method tree':27s}: {log_total / rounds:7.1f} leaf I/Os/query")
    print(f"  (log-method components: {list(logtree.components())},")
    print(f"   {logtree.rebuilds} component rebuilds over {n} inserts)")
    print()
    print(
        "Both dynamic strategies stay in the static PR-tree's ballpark —\n"
        "far from the Θ(N/B) blowup of the heuristic trees on this data.\n"
        "The difference is the nature of the guarantee: Guttman updates\n"
        "keep no worst-case bound (this run's churn happened to be kind),\n"
        "while the logarithmic method provably preserves the query bound,\n"
        "paying a small per-component factor and amortized rebuild work."
    )


if __name__ == "__main__":
    main()
