#!/usr/bin/env python3
"""Quickstart: build a PR-tree, run window queries, inspect I/O costs.

Run with:  python examples/quickstart.py
"""

import random

from repro import (
    BlockStore,
    QueryEngine,
    Rect,
    build_prtree,
    utilization,
    validate_rtree,
)


def main() -> None:
    rng = random.Random(42)

    # 1. Some spatial data: 10,000 small rectangles in the unit square,
    #    each tagged with a caller value (here, a string id).
    data = []
    for i in range(10_000):
        x, y = rng.random(), rng.random()
        w, h = rng.random() * 0.01, rng.random() * 0.01
        data.append((Rect((x, y), (x + w, y + h)), f"object-{i}"))

    # 2. Bulk-load a PR-tree on a simulated disk.  fanout is the paper's
    #    B — how many 36-byte entries fit in one disk block (113 for the
    #    paper's 4 KB blocks; anything >= 2 works).
    store = BlockStore()
    tree = build_prtree(store, data, fanout=32)
    validate_rtree(tree, expect_size=len(data))

    info = utilization(tree)
    print(f"built PR-tree: height={tree.height}, leaves={info.leaf_nodes}, "
          f"leaf fill={info.leaf_fill:.1%}")

    # 3. Window queries through a reusable engine.  The engine caches
    #    internal nodes (as the paper's experiments do), so the reported
    #    cost of a query is the number of leaf blocks read.
    engine = QueryEngine(tree)
    window = Rect((0.40, 0.40), (0.45, 0.45))
    matches, stats = engine.query(window)

    print(f"\nquery {window}:")
    print(f"  matches: {len(matches)} rectangles")
    print(f"  cost: {stats.ios} leaf I/Os "
          f"(optimal would be ceil(T/B) = {-(-len(matches) // tree.fanout)})")
    print(f"  first three: {[value for _, value in matches[:3]]}")

    # 4. The same store's counters have tracked every simulated block
    #    access since construction.
    print(f"\nsimulated disk: {store.counters!r}")


if __name__ == "__main__":
    main()
