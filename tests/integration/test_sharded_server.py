"""End-to-end acceptance for sharded serving: a TIGER-scale PR-tree is
packed both as one index file and as a K=4 Hilbert-range shard family,
and a 1k mixed batch — window, point, count, containment, kNN, insert
and delete — produces identical results through the QueryServer on both,
with the sharded batch reporting a per-shard I/O/latency breakdown.
"""

import pytest

from repro.datasets.tiger import tiger_dataset
from repro.experiments.harness import build_variant
from repro.experiments.serving import mixed_requests
from repro.rtree.validate import validate_rtree
from repro.server import (
    ContainmentRequest,
    CountRequest,
    DeleteRequest,
    InsertRequest,
    KNNRequest,
    PointRequest,
    QueryServer,
    WindowRequest,
)
from repro.storage import PagedTree, ShardedTree, shard_pack, pack_tree

N = 30_000
SHARDS = 4
FANOUT = 113  # the paper's 4 KB-block fan-out
SEED = 0
BATCH = 1000
WRITES = 60  # inserts + deletes mixed into the batch


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    """Single-file and K=4 sharded packs of the same 30k PR-tree."""
    tmp = tmp_path_factory.mktemp("sharded-server")
    data = tiger_dataset(N, "eastern", seed=SEED)
    tree = build_variant("PR", data, FANOUT)

    single_path = tmp / "tiger.pack"
    pack_tree(tree, single_path)
    manifest_path = tmp / "tiger.manifest"
    family_stats = shard_pack(tree, manifest_path, shards=SHARDS)
    assert family_stats.shards == SHARDS

    single = PagedTree.open(
        single_path, values=dict(tree.objects), cache_pages=128
    )
    sharded = ShardedTree.open(
        manifest_path, values=dict(tree.objects), cache_pages=64
    )
    yield single, sharded, tree, data
    single.close()
    sharded.close()


def make_batch(bounds, data, index):
    """The 1k mixed batch: ~94% reads plus interleaved inserts/deletes."""
    requests = mixed_requests(
        bounds, count=BATCH - WRITES, seed=7, index=index
    )
    fresh = tiger_dataset(WRITES // 2, "eastern", seed=SEED + 101)
    for i in range(WRITES // 2):
        # Interleave writes through the read stream (the server applies
        # them first, in submission order, on both shapes).
        requests.insert(i * 17, InsertRequest(*fresh[i], index=index))
        rect, value = data[i * 31]
        requests.insert(i * 29, DeleteRequest(rect, value, index=index))
    assert len(requests) == BATCH
    return requests


def test_sharded_family_shape(stack):
    _, sharded, tree, _ = stack
    assert sharded.n_shards == SHARDS
    assert sharded.size == N == sum(s.size for s in sharded.shards)
    sizes = [s.size for s in sharded.shards]
    assert max(sizes) - min(sizes) <= 1
    for shard in sharded.shards:
        validate_rtree(shard)
    # The family's synthetic root covers the same bounds as the tree.
    assert sharded.root().mbr() == tree.root().mbr()


def test_mixed_batch_identical_to_single_file(stack):
    single, sharded, tree, data = stack
    server = QueryServer({"single": single, "sharded": sharded})
    bounds = tree.root().mbr()

    report_single = server.submit(make_batch(bounds, data, "single"))
    report_sharded = server.submit(make_batch(bounds, data, "sharded"))

    assert report_single.requests == report_sharded.requests == BATCH
    assert report_single.writes == report_sharded.writes == WRITES

    checked = {kind: 0 for kind in (
        "window", "containment", "count", "point", "knn", "insert", "delete"
    )}
    for a, b in zip(report_single.results, report_sharded.results):
        assert type(a.request) is type(b.request)
        checked[a.request.kind] += 1
        if isinstance(a.request, (CountRequest, InsertRequest, DeleteRequest)):
            # Counts, assigned object ids, and delete outcomes are scalars
            # and must agree exactly — the sharded family hands out the
            # same family-wide ids as the single-file write path.
            assert a.value == b.value
        elif isinstance(a.request, KNNRequest):
            assert [n.distance for n in a.value] == [
                n.distance for n in b.value
            ]
            assert sorted(
                n.value for n in a.value
            ) == sorted(n.value for n in b.value)
        elif isinstance(
            a.request, (WindowRequest, ContainmentRequest, PointRequest)
        ):
            key = lambda pair: (pair[0].lo, pair[0].hi, pair[1])
            assert sorted(a.value, key=key) == sorted(b.value, key=key)
        else:  # pragma: no cover - no other kinds in the batch
            raise AssertionError(a.request)
    # Every operator actually appeared in the batch.
    assert all(count > 0 for count in checked.values()), checked

    # The same logical work was measured on both shapes (the paper's
    # metric does not care how the blocks are spread across files).
    assert report_sharded.leaf_ios > 0
    assert report_sharded.write_ios > 0

    # Only the sharded index reports a per-shard breakdown.
    assert not report_single.shard_loads
    loads = report_sharded.shard_loads["sharded"]
    assert len(loads) == SHARDS
    assert sum(load.reads for load in loads) > 0
    assert sum(load.physical_reads for load in loads) > 0
    assert sum(load.busy_s for load in loads) > 0
    # Every shard of the uniform-ish TIGER batch saw some work.
    assert all(load.reads > 0 for load in loads)


def test_sharded_family_stays_consistent_after_batch(stack):
    _, sharded, _, _ = stack
    # The previous test's writes are already synced (sync_writes=True);
    # the family still validates shard by shard and sizes line up.
    assert sharded.size == sum(s.size for s in sharded.shards)
    for shard in sharded.shards:
        validate_rtree(shard)


def test_worker_fanout_matches_serial(stack):
    single, sharded, tree, _ = stack
    bounds = tree.root().mbr()
    requests = [
        r
        for r in mixed_requests(bounds, count=300, seed=23, index="sharded")
        if not isinstance(r, KNNRequest)
    ]
    serial = QueryServer({"sharded": sharded}, workers=1).submit(requests)
    threaded = QueryServer({"sharded": sharded}, workers=4).submit(requests)
    assert [r.value for r in serial.results] == [
        r.value for r in threaded.results
    ]
    assert serial.leaf_ios == threaded.leaf_ios


def test_page_caches_stay_bounded(stack):
    _, sharded, _, _ = stack
    for shard in sharded.shards:
        assert shard.page_store.cached_pages() <= 64
