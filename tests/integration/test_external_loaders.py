"""Integration tests for the external (I/O-counted) bulk loaders.

The external faces must produce valid trees of the same family as the
in-memory faces, answer queries identically to brute force, and exhibit
the paper's bulk-loading cost ordering H = H4 < PR < TGS (Figure 9).
"""

import pytest

from repro.bulk.hilbert import (
    build_hilbert4_external,
    build_hilbert_external,
)
from repro.bulk.tgs import build_tgs_external
from repro.external.memory import MemoryModel
from repro.external.stream import BlockStream
from repro.iomodel.blockstore import BlockStore
from repro.prtree.gridbuild import build_prtree_external
from repro.rtree.query import QueryEngine, brute_force_query
from repro.rtree.validate import utilization, validate_rtree

from tests.conftest import assert_same_matches, random_rects, random_windows

EXTERNAL_LOADERS = [
    build_hilbert_external,
    build_hilbert4_external,
    build_prtree_external,
    build_tgs_external,
]
LOADER_IDS = ["H", "H4", "PR", "TGS"]

MEM = MemoryModel(memory_records=256, block_records=16)


def load_external(loader, data, fanout=16, memory=MEM):
    store = BlockStore()
    stream = BlockStream.from_records(store, data, memory.block_records)
    tree, stats = loader(store, stream, fanout, memory)
    return tree, stats, store


@pytest.mark.parametrize("loader", EXTERNAL_LOADERS, ids=LOADER_IDS)
class TestExternalLoaderContract:
    def test_valid_structure_and_size(self, loader):
        data = random_rects(1500, seed=31)
        tree, _, _ = load_external(loader, data)
        validate_rtree(tree, expect_size=1500)

    def test_high_utilization(self, loader):
        data = random_rects(1500, seed=32)
        tree, _, _ = load_external(loader, data)
        assert utilization(tree).leaf_fill > 0.95

    def test_queries_match_oracle(self, loader):
        data = random_rects(1200, seed=33)
        tree, _, _ = load_external(loader, data)
        engine = QueryEngine(tree)
        for window in random_windows(10, seed=34):
            got, _ = engine.query(window)
            assert_same_matches(got, brute_force_query(data, window))

    def test_io_was_counted(self, loader):
        data = random_rects(1000, seed=35)
        _, stats, _ = load_external(loader, data)
        assert stats.io.reads > 0 and stats.io.writes > 0
        assert stats.cpu_seconds > 0

    def test_io_scales_with_input(self, loader):
        small = random_rects(600, seed=36)
        big = random_rects(2400, seed=36)
        _, small_stats, _ = load_external(loader, small)
        _, big_stats, _ = load_external(loader, big)
        assert big_stats.io.total > 2 * small_stats.io.total

    def test_empty_input(self, loader):
        tree, _, _ = load_external(loader, [])
        assert len(tree) == 0

    def test_temporaries_are_freed(self, loader):
        data = random_rects(800, seed=37)
        tree, _, store = load_external(loader, data)
        # Live blocks = input stream + the tree's nodes (no leaked
        # temporaries from sorting/distribution).
        input_blocks = -(-len(data) // MEM.block_records)
        assert len(store) == input_blocks + tree.node_count()


class TestPaperCostOrdering:
    def test_figure9_io_ordering(self):
        # Figure 9: H/H4 cheapest, PR in the middle, TGS most expensive.
        data = random_rects(3000, seed=38)
        costs = {}
        for loader, name in zip(EXTERNAL_LOADERS, LOADER_IDS):
            _, stats, _ = load_external(loader, data)
            costs[name] = stats.io.total
        assert costs["H"] < costs["PR"] < costs["TGS"]
        assert costs["H4"] < costs["PR"]
        assert costs["H"] == pytest.approx(costs["H4"], rel=0.15)

    def test_mostly_sequential_io(self):
        # Section 3.3: bulk loaders do almost exclusively sequential I/O
        # of large parts of the data.  Require a healthy sequential share
        # for the scan-and-sort loaders.
        data = random_rects(3000, seed=39)
        _, stats, _ = load_external(build_hilbert_external, data)
        assert stats.io.sequential / stats.io.total > 0.25


class TestInternalVsExternalEquivalence:
    def test_same_leaf_contents_family(self):
        # The two faces need not build byte-identical trees, but both
        # must contain exactly the same data set.
        from repro.bulk.hilbert import build_hilbert

        data = random_rects(900, seed=40)
        internal = build_hilbert(BlockStore(), data, 16)
        external, _, _ = load_external(build_hilbert_external, data)
        internal_data = sorted(v for _, v in internal.all_data())
        external_data = sorted(v for _, v in external.all_data())
        assert internal_data == external_data

    def test_hilbert_faces_identical_leaf_order(self):
        # H sorts by a deterministic key, so the leaf-level *order* of
        # the two faces must agree exactly.
        from repro.bulk.hilbert import build_hilbert

        data = random_rects(700, seed=41)
        internal = build_hilbert(BlockStore(), data, 16)
        external, _, _ = load_external(build_hilbert_external, data)

        def leaf_values(tree):
            leaves = sorted(tree.iter_leaves(), key=lambda kv: kv[0])
            return [
                tree.objects[oid]
                for _, leaf in leaves
                for _, oid in leaf.entries
            ]

        assert leaf_values(internal) == leaf_values(external)
