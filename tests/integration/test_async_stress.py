"""Concurrency stress: the async service versus a serial oracle.

Several asyncio clients hammer one K=4 sharded index with interleaved
reads, inserts and deletes.  Each client owns a vertical strip of the
unit square and confines its writes (and its oracle-checked reads) to
that strip, so every read's expected answer is computable from the
initial data plus that client's own serial history — regardless of how
the service interleaves clients.  After the storm, the family must
equal the union of the per-client oracles and validate from a cold
reopen.  A second test checks the admission-control failure mode at a
tiny queue bound: load is shed cleanly, everything admitted completes.
"""

import asyncio

import pytest

from repro import BlockStore, Rect, build_prtree
from repro.rtree.validate import validate_rtree
from repro.server import (
    ContainmentRequest,
    CountRequest,
    DeleteRequest,
    InsertRequest,
    WindowRequest,
)
from repro.service import AdmissionError, AsyncQueryService
from repro.storage import ShardedTree, shard_pack

from tests.conftest import random_rects

N_CLIENTS = 6
OPS_PER_CLIENT = 18


@pytest.fixture
def family(tmp_path):
    data = random_rects(4000, seed=91, max_side=0.01)
    tree = build_prtree(BlockStore(), data, fanout=16)
    manifest = tmp_path / "stress.manifest"
    shard_pack(tree, manifest, shards=4)
    with ShardedTree.open(manifest, values=dict(tree.objects)) as handle:
        yield handle, data, manifest


def _strip(client: int) -> tuple[float, float]:
    """Client ``client``'s owned x-range, with a margin so no client's
    rectangles straddle a neighbour's strip."""
    width = 1.0 / N_CLIENTS
    return client * width + 0.05 * width, (client + 1) * width - 0.05 * width


class _Oracle:
    """Brute-force serial model of one client's view of its strip."""

    def __init__(self, initial, lo_x, hi_x):
        self.initial = list(initial)  # static: nobody mutates others' data
        self.mine: list[tuple[Rect, str]] = []
        self.lo_x, self.hi_x = lo_x, hi_x

    def live(self):
        return self.initial + self.mine

    def window_matches(self, window):
        return sorted(
            (pair for pair in self.live() if window.intersects(pair[0])),
            key=repr,
        )

    def contained(self, window):
        return sorted(
            (pair for pair in self.live() if window.contains_rect(pair[0])),
            key=repr,
        )


async def _client(service, client_id, initial_data, failures):
    lo_x, hi_x = _strip(client_id)
    # Everything initially intersecting the strip, straddlers included:
    # the initial data is static (no client deletes another's entries),
    # so it answers strip-window reads deterministically.
    strip_window = Rect((lo_x, 0.0), (hi_x, 1.0))
    strip_initial = [
        (rect, value)
        for rect, value in initial_data
        if strip_window.intersects(rect)
    ]
    oracle = _Oracle(strip_initial, lo_x, hi_x)
    span = hi_x - lo_x

    def rect_at(i: int) -> Rect:
        x = lo_x + (0.1 + 0.8 * ((i * 37) % 100) / 100.0) * span
        y = 0.05 + 0.9 * ((i * 53) % 100) / 100.0
        return Rect((x, y), (min(x + 0.004, hi_x), y + 0.004))

    def check(label, got, want):
        if got != want:
            failures.append(
                f"client {client_id} {label}: got {got!r:.80}, "
                f"expected {want!r:.80}"
            )

    for i in range(OPS_PER_CLIENT):
        kind = i % 6
        if kind in (0, 3):
            rect = rect_at(i)
            value = f"c{client_id}-{i}"
            response = await service.submit(InsertRequest(rect, value))
            assert isinstance(response.value, int)
            oracle.mine.append((rect, value))
        elif kind == 1:
            window = Rect((lo_x, 0.0), (hi_x, 1.0))
            response = await service.submit(WindowRequest(window))
            got = sorted(
                ((r, v) for r, v in response.value), key=repr
            )
            check("window", got, oracle.window_matches(window))
        elif kind == 2:
            window = Rect((lo_x, 0.2), (hi_x, 0.8))
            response = await service.submit(CountRequest(window))
            check(
                "count",
                response.value,
                len(oracle.window_matches(window)),
            )
        elif kind == 4 and oracle.mine:
            rect, value = oracle.mine.pop(0)
            response = await service.submit(DeleteRequest(rect, value))
            if response.value is not True:
                failures.append(
                    f"client {client_id}: delete of own entry missed"
                )
        else:
            window = Rect((lo_x, 0.0), (hi_x, 1.0))
            response = await service.submit(ContainmentRequest(window))
            got = sorted(((r, v) for r, v in response.value), key=repr)
            check("containment", got, oracle.contained(window))
        if i % 5 == client_id % 5:
            await asyncio.sleep(0)  # shake up interleavings
    return oracle


class TestConcurrentClientsMatchSerialOracle:
    def test_interleaved_reads_and_writes(self, family, tmp_path):
        handle, data, manifest = family

        async def main():
            failures: list[str] = []
            async with AsyncQueryService(
                handle,
                max_batch=16,
                flush_interval=0.001,
                executor_workers=3,
            ) as service:
                oracles = await asyncio.gather(
                    *(
                        _client(service, c, data, failures)
                        for c in range(N_CLIENTS)
                    )
                )
                return failures, oracles, service.stats

        failures, oracles, stats = asyncio.run(main())
        assert not failures, failures[:5]
        assert stats.completed == N_CLIENTS * OPS_PER_CLIENT

        # Global final state: initial data plus every client's live
        # inserts (each client touched only its own strip).
        expected_mine = sorted(
            (pair for oracle in oracles for pair in oracle.mine), key=repr
        )
        got_mine = sorted(
            (
                (rect, value)
                for rect, value in handle.all_data()
                if isinstance(value, str) and value.startswith("c")
            ),
            key=repr,
        )
        assert got_mine == expected_mine
        assert handle.size == len(data) + len(expected_mine)

        # The family still validates after a sync + cold reopen.
        handle.sync()
        merged = {}
        for shard in handle.shards:
            merged.update(shard.objects)
        with ShardedTree.open(
            manifest, values=merged, readonly=True
        ) as cold:
            assert cold.size == handle.size
            for shard in cold.shards:
                validate_rtree(shard)


class TestAdmissionAtTinyBound:
    def test_flood_sheds_cleanly_and_admitted_complete(self, family):
        handle, data, _ = family
        window = Rect((0.2, 0.2), (0.4, 0.4))

        async def main():
            async with AsyncQueryService(
                handle,
                max_batch=4,
                flush_interval=0.05,
                max_pending_reads=5,
                max_pending_writes=2,
                admission="reject",
                executor_workers=2,
            ) as service:
                requests = [CountRequest(window) for _ in range(60)]
                requests += [
                    InsertRequest(
                        Rect((0.5 + i * 0.001, 0.5), (0.501 + i * 0.001, 0.501)),
                        f"flood{i}",
                    )
                    for i in range(20)
                ]
                tasks = [
                    asyncio.ensure_future(service.submit(request))
                    for request in requests
                ]
                results = await asyncio.gather(
                    *tasks, return_exceptions=True
                )
                return results, service.stats

        results, stats = asyncio.run(main())
        rejected = [r for r in results if isinstance(r, AdmissionError)]
        completed = [r for r in results if not isinstance(r, Exception)]
        unexpected = [
            r
            for r in results
            if isinstance(r, Exception) and not isinstance(r, AdmissionError)
        ]
        assert not unexpected, unexpected[:3]
        assert rejected, "a 5/2 queue bound must shed an 80-request flood"
        assert len(rejected) + len(completed) == 80
        assert stats.rejected == len(rejected)
        assert stats.max_queue_depth <= 5 + 2
        # Every admitted read answered with the true count at its
        # execution point: the index only grows under this flood, so
        # counts are between the initial and final state.
        initial = sum(1 for rect, _ in data if window.intersects(rect))
        for response in completed:
            if isinstance(response.request, CountRequest):
                assert response.value >= initial
