"""End-to-end acceptance for the mutable packed index.

``pack_tree`` → reopen → 1k mixed inserts/deletes through the batched
server → ``sync()`` → cold reopen: the paged tree's window/point/kNN
answers are identical to an in-memory oracle that applied the same
operations, the structural invariants hold, and the batch's physical
write traffic is bounded by the number of distinct dirty pages —
strictly below the write-through count (one physical write per logical
write I/O).
"""

import pytest

from repro.datasets.tiger import tiger_dataset
from repro.experiments.harness import build_variant
from repro.experiments.serving import mixed_update_requests
from repro.queries.knn import KNNEngine
from repro.queries.point import PointQueryEngine
from repro.rtree.query import QueryEngine
from repro.rtree.validate import validate_rtree
from repro.server import QueryServer
from repro.storage import PagedTree, pack_tree
from repro.workloads.queries import square_queries

N = 8_000
UPDATES = 1_000
FANOUT = 113  # the paper's 4 KB-block fan-out
SEED = 0


@pytest.fixture(scope="module")
def updated_stack(tmp_path_factory):
    """A packed index mutated through the server, plus the oracle."""
    tmp = tmp_path_factory.mktemp("update-writeback")
    path = tmp / "tiger.pack"

    data = tiger_dataset(N, "eastern", seed=SEED)
    oracle = build_variant("PR", data, FANOUT)
    pack_tree(oracle, path)

    fresh = tiger_dataset(UPDATES // 2, "eastern", seed=SEED + 1)
    requests, live = mixed_update_requests(
        data[: UPDATES // 2], fresh, seed=SEED + 2
    )
    live = live + data[UPDATES // 2 :]
    assert len(requests) == UPDATES

    paged = PagedTree.open(
        path, values=dict(oracle.objects), cache_pages=4096
    )
    server = QueryServer(paged)
    report = server.submit(requests)

    # Apply the same operations to the in-memory oracle.
    for result in report.results:
        request = result.request
        if request.kind == "insert":
            oracle.insert(request.rect, request.value)
        else:
            assert oracle.delete(request.rect, request.value) == result.value

    paged.sync()
    objects = dict(paged.objects)
    paged.close()

    reopened = PagedTree.open(path, values=objects, readonly=True)
    yield reopened, oracle, live, report
    reopened.close()


def test_batch_applied_every_update(updated_stack):
    reopened, oracle, live, report = updated_stack
    assert report.writes == UPDATES
    assert report.executed == UPDATES
    # Every delete found its target (the stream never repeats a pair).
    deletes = [
        r for r in report.results if r.request.kind == "delete"
    ]
    assert deletes and all(r.value is True for r in deletes)
    assert reopened.size == oracle.size == len(live)


def test_write_back_bounded_by_distinct_dirty_pages(updated_stack):
    _, _, _, report = updated_stack
    assert report.write_ios > 0
    assert 0 < report.pages_flushed < report.write_ios


def test_reopened_tree_is_valid(updated_stack):
    reopened, _, live, _ = updated_stack
    validate_rtree(reopened, expect_size=len(live))


def test_window_point_knn_match_oracle(updated_stack):
    reopened, oracle, _, _ = updated_stack
    bounds = oracle.root().mbr()
    windows = square_queries(bounds, 0.25, count=30, seed=SEED + 3).windows
    window_disk = QueryEngine(reopened)
    window_mem = QueryEngine(oracle)
    point_disk = PointQueryEngine(reopened)
    point_mem = PointQueryEngine(oracle)
    knn_disk = KNNEngine(reopened)
    knn_mem = KNNEngine(oracle)
    for window in windows:
        got, _ = window_disk.query(window)
        want, _ = window_mem.query(window)
        assert sorted(str(v) for _, v in got) == sorted(
            str(v) for _, v in want
        )
        center = tuple(window.center())
        got, _ = point_disk.point_query(center)
        want, _ = point_mem.point_query(center)
        assert sorted(str(v) for _, v in got) == sorted(
            str(v) for _, v in want
        )
        got, _ = knn_disk.knn(center, 10)
        want, _ = knn_mem.knn(center, 10)
        assert [n.distance for n in got] == [n.distance for n in want]
