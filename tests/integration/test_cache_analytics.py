"""End-to-end cache analytics and profiling through the serving stack.

The exactness contract under real concurrency: the ghost-LRU tracker
hangs off :class:`~repro.storage.paged.PagedNodeStore` and observes the
same page-table lookups :class:`~repro.storage.paged.PageCacheStats`
counts — so after any workload (sharded fan-out, worker threads,
overlapping batches) the tracker's observed hit ratio must equal the
store's measured ratio exactly, and the miss-ratio-curve point at the
configured budget must match it within the 2% the docs promise.  The
``keep_log`` replay closes the loop: a brute-force LRU oracle replayed
over the recorded stream must reproduce the predicted hit counts at
every boundary budget.
"""

import json
import pathlib
import tempfile
from collections import OrderedDict

import pytest

from repro.experiments.cli import _check_trace_health, main as cli_main
from repro.experiments.serving import (
    cache_report,
    mixed_requests,
    pack_index,
    serve_async_bench,
    serve_bench,
)
from repro.obs import ReuseDistanceTracker
from repro.server import QueryServer
from repro.storage import ShardedTree, open_index

CACHE_PAGES = 32


@pytest.fixture(scope="module")
def sharded_index():
    with tempfile.TemporaryDirectory(prefix="repro-cachean-") as tmp:
        index = pathlib.Path(tmp) / "index.manifest"
        pack_index(index, n=6000, shards=3, seed=0)
        yield index


def run_overlapping_batches(tree, workers: int, batches: int = 6) -> None:
    """Mixed batches whose query regions deliberately revisit earlier
    ones (consecutive seeds share windows), through a threaded server."""
    server = QueryServer(tree, workers=workers)
    bounds = tree.root().mbr()
    for i in range(batches):
        batch = mixed_requests(bounds, count=150, seed=10 + i // 2)
        server.submit(batch)


class TestTrackerMatchesRealCache:
    def test_sharded_fanout_observed_equals_measured(self, sharded_index):
        with open_index(
            sharded_index,
            cache_pages=CACHE_PAGES,
            readonly=True,
            cache_analytics=True,
        ) as tree:
            assert isinstance(tree, ShardedTree)
            run_overlapping_batches(tree, workers=2)
            for shard in tree.shards:
                store = shard.page_store
                tracker = store.tracker
                stats = store.stats
                lookups = stats.hits + stats.misses
                assert lookups > 0
                assert tracker.accesses == lookups
                # Same lock, same stream: exact agreement, not approx.
                assert tracker.observed_hits == stats.hits
                measured = stats.hits / lookups
                # The acceptance bar: the curve point at the configured
                # budget predicts the real cache within 2 points.
                predicted = tracker.predicted_hits(CACHE_PAGES) / lookups
                assert abs(predicted - measured) <= 0.02

    def test_keep_log_oracle_replay_at_every_budget(self, sharded_index):
        with open_index(
            sharded_index,
            cache_pages=CACHE_PAGES,
            readonly=True,
            cache_analytics=True,
        ) as tree:
            # Swap in logging trackers before any traffic.
            for shard in tree.shards:
                shard.page_store.tracker = ReuseDistanceTracker(
                    capacity=CACHE_PAGES, keep_log=True
                )
            run_overlapping_batches(tree, workers=2)
            for shard in tree.shards:
                tracker = shard.page_store.tracker
                assert tracker.log, "no accesses logged"
                for budget in tracker.budgets:
                    cache: OrderedDict[int, None] = OrderedDict()
                    hits = 0
                    for block_id, _ in tracker.log:
                        if block_id in cache:
                            hits += 1
                            cache.move_to_end(block_id)
                            continue
                        cache[block_id] = None
                        if len(cache) > budget:
                            cache.popitem(last=False)
                    assert tracker.predicted_hits(budget) == hits, (
                        f"budget {budget}"
                    )

    def test_leaf_internal_split_is_plausible(self, sharded_index):
        with open_index(
            sharded_index,
            cache_pages=CACHE_PAGES,
            readonly=True,
            cache_analytics=True,
        ) as tree:
            run_overlapping_batches(tree, workers=1, batches=2)
            leaf = internal = 0
            for shard in tree.shards:
                for band in shard.page_store.tracker.frequency_histogram():
                    leaf += band.leaf_blocks
                    internal += band.internal_blocks
            # A height-2 tree: many leaves, few internal nodes — but
            # both levels must be observed.
            assert leaf > internal > 0


class TestServingEntrypoints:
    def test_cache_report_table(self, sharded_index):
        table = cache_report(
            index=sharded_index,
            requests=400,
            cache_pages=CACHE_PAGES,
            workers=2,
        )
        starred = [
            row for row in table.rows if str(row[0]) == f"{CACHE_PAGES}*"
        ]
        assert len(starred) == 1
        notes = "\n".join(table.notes)
        assert "measured:" in notes
        assert "working set:" in notes
        # The starred prediction and the measured ratio agree within 2%.
        import re

        measured = float(re.search(r"\((\d+\.\d+)%\)", notes).group(1)) / 100
        assert starred[0][3] == pytest.approx(measured, abs=0.02)

    def test_serve_bench_profile_and_cache_notes(self, sharded_index, tmp_path):
        out = tmp_path / "p.collapsed"
        table = serve_bench(
            index=sharded_index,
            requests=300,
            batch_size=100,
            cache_pages=CACHE_PAGES,
            workers=2,
            profile=out,
            cache_analytics=True,
        )
        notes = "\n".join(table.notes)
        assert f"profile: {out}" in notes
        assert "page cache:" in notes
        assert "miss-ratio curve" in notes
        text = out.read_text()
        for line in text.splitlines():
            frames, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert ";" in frames

    def test_serve_async_profiled_sharded_phase_accounting(self, tmp_path):
        # The acceptance scenario: a profiled serve-async run over a
        # sharded index yields a collapsed-stack file whose per-phase
        # self time accounts for >= 90% of the sampled wall time.  The
        # phase table includes every sample by construction ((other)
        # catches unattributed ones), so the check is that the notes
        # parse back to ~100%.
        out = tmp_path / "async.collapsed"
        table = serve_async_bench(
            rates=(500.0,),
            requests=250,
            n=6000,
            shards=4,
            profile=out,
            cache_analytics=True,
            metrics=tmp_path / "m.prom",
        )
        notes = [n for n in table.notes if n.startswith("phase ")]
        total = sum(
            float(note.split(": ", 1)[1].split("%")[0]) for note in notes
        )
        if notes:  # a very fast run can be sample-free; phases then absent
            assert total >= 90.0
        prom = (tmp_path / "m.prom").read_text()
        assert "repro_cache_events_total" in prom
        assert "repro_cache_predicted_hit_ratio" in prom
        assert "repro_cache_working_set_blocks" in prom

    def test_metrics_port_note(self, tmp_path):
        table = serve_async_bench(
            rates=(800.0,), requests=100, n=4000, metrics_port=0
        )
        notes = "\n".join(table.notes)
        assert "metrics served live at http://127.0.0.1:" in notes


class TestCliGates:
    def test_cache_report_subcommand(self, sharded_index, capsys):
        code = cli_main(
            [
                "cache-report",
                "--index", str(sharded_index),
                "--requests", "200",
                "--cache-pages", str(CACHE_PAGES),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cache-report:" in out
        assert f"{CACHE_PAGES}*" in out

    def test_profile_subcommand(self, tmp_path, capsys):
        out = tmp_path / "cli.collapsed"
        code = cli_main(
            [
                "profile", str(out),
                "--requests", "120",
                "--rate", "600",
                "--n", "4000",
            ]
        )
        assert code == 0
        assert out.exists()
        assert "profile:" in capsys.readouterr().out

    def test_trace_health_gate_passes_on_good_capture(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        code = cli_main(
            [
                "trace", str(out),
                "--requests", "100",
                "--rate", "600",
                "--n", "4000",
            ]
        )
        assert code == 0
        capsys.readouterr()

    def test_trace_health_gate_rejects_low_coverage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps([
            {"ph": "X", "pid": 1, "tid": 1, "name": "request:knn",
             "cat": "request", "ts": 0, "dur": 10},
        ]))
        assert _check_trace_health(bad, requests=5, sample_rate=1.0) == 1
        assert "only 1 of 5" in capsys.readouterr().err
        # Sampled captures are exempt from the coverage bar.
        assert _check_trace_health(bad, requests=5, sample_rate=0.2) == 0

    def test_trace_health_gate_rejects_broken_nesting(self, tmp_path, capsys):
        bad = tmp_path / "overlap.jsonl"
        bad.write_text(json.dumps([
            {"ph": "X", "pid": 1, "tid": 1, "name": "a",
             "cat": "service", "ts": 0, "dur": 100},
            {"ph": "X", "pid": 1, "tid": 1, "name": "b",
             "cat": "service", "ts": 50, "dur": 100},
        ]))
        assert _check_trace_health(bad, requests=0, sample_rate=1.0) == 1
        assert "span-nesting" in capsys.readouterr().err
