"""Integration tests of the paper's theoretical claims.

* Lemma 2 / Theorem 1: PR-tree window queries cost
  O(sqrt(N/B) + T/B) leaf I/Os.
* Theorem 3: the adversarial dataset forces the packed Hilbert,
  4D-Hilbert, and TGS trees to visit Θ(N/B) leaves with empty output
  while the PR-tree stays within its bound.
"""

import math

import pytest

from repro.bulk.hilbert import build_hilbert, build_hilbert4
from repro.bulk.tgs import build_tgs
from repro.datasets.synthetic import cluster_dataset, skewed_dataset
from repro.datasets.worstcase import worstcase_dataset, worstcase_query
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree, prtree_query_bound
from repro.rtree.query import QueryEngine
from repro.workloads.queries import cluster_line_queries, square_queries

from tests.conftest import random_rects


class TestPRTreeQueryBound:
    @pytest.mark.parametrize("n", [512, 2048, 8192])
    def test_bound_on_uniform_data(self, n):
        fanout = 8
        data = random_rects(n, seed=50, max_side=0.02)
        tree = build_prtree(BlockStore(), data, fanout)
        engine = QueryEngine(tree)
        for window in square_queries(Rect((0, 0), (1, 1)), 1.0, count=20, seed=51):
            _, stats = engine.query(window)
            bound = prtree_query_bound(n, fanout, stats.reported)
            assert stats.leaf_reads <= bound

    def test_bound_on_skewed_data(self):
        n, fanout = 4096, 8
        data = skewed_dataset(n, 9, seed=52)
        tree = build_prtree(BlockStore(), data, fanout)
        engine = QueryEngine(tree)
        from repro.workloads.queries import skewed_queries

        for window in skewed_queries(9, count=20, seed=53):
            _, stats = engine.query(window)
            assert stats.leaf_reads <= prtree_query_bound(n, fanout, stats.reported)

    def test_bound_on_worstcase_data(self):
        fanout = 8
        data = worstcase_dataset(4096, fanout)
        n = len(data)
        tree = build_prtree(BlockStore(), data, fanout)
        engine = QueryEngine(tree)
        for seed in range(10):
            window = worstcase_query(n, fanout, seed=seed)
            matches, stats = engine.query(window)
            assert matches == []
            assert stats.leaf_reads <= prtree_query_bound(n, fanout, 0)

    def test_sublinear_scaling_in_n(self):
        # Doubling N must grow empty-query cost by ~sqrt(2), not 2:
        # measure the adversarial query cost at two sizes.
        fanout = 8
        costs = {}
        for n in (2048, 8192):
            data = worstcase_dataset(n, fanout)
            tree = build_prtree(BlockStore(), data, fanout)
            engine = QueryEngine(tree)
            total = 0
            for seed in range(10):
                _, stats = engine.query(worstcase_query(len(data), fanout, seed=seed))
                total += stats.leaf_reads
            costs[n] = total / 10
        growth = costs[8192] / costs[2048]
        assert growth < 3.0  # 4x data -> ~2x cost; linear would be 4x


class TestTheorem3:
    FANOUT = 16

    def _leaf_visits(self, builder, data, window):
        tree = builder(BlockStore(), data, self.FANOUT)
        engine = QueryEngine(tree)
        matches, stats = engine.query(window)
        assert matches == []
        return stats.leaf_reads, tree.leaf_count()

    @pytest.mark.parametrize(
        "builder", [build_hilbert, build_hilbert4, build_tgs], ids=["H", "H4", "TGS"]
    )
    def test_heuristics_visit_all_leaves(self, builder):
        data = worstcase_dataset(4096, self.FANOUT)
        window = worstcase_query(len(data), self.FANOUT, seed=1)
        visited, leaves = self._leaf_visits(builder, data, window)
        assert visited >= 0.9 * leaves  # Θ(N/B), paper: exactly all

    def test_prtree_visits_sublinear_fraction(self):
        data = worstcase_dataset(4096, self.FANOUT)
        window = worstcase_query(len(data), self.FANOUT, seed=1)
        visited, leaves = self._leaf_visits(build_prtree, data, window)
        assert visited <= prtree_query_bound(len(data), self.FANOUT, 0)
        assert visited < 0.25 * leaves

    def test_order_of_magnitude_gap(self):
        data = worstcase_dataset(8192, self.FANOUT)
        window = worstcase_query(len(data), self.FANOUT, seed=2)
        h_visits, _ = self._leaf_visits(build_hilbert, data, window)
        pr_visits, _ = self._leaf_visits(build_prtree, data, window)
        assert h_visits / max(pr_visits, 1) > 5.0


class TestClusterRobustness:
    def test_prtree_beats_heuristics_on_cluster(self):
        # The Table 1 phenomenon at test scale: PR visits a much smaller
        # leaf fraction than H/H4 on thin line queries through clusters.
        n, fanout = 10_000, 16
        clusters = 10
        data = cluster_dataset(n, clusters=clusters, seed=54)
        workload = cluster_line_queries(clusters, count=20, seed=55)
        visited = {}
        for name, builder in [
            ("H", build_hilbert),
            ("H4", build_hilbert4),
            ("PR", build_prtree),
            ("TGS", build_tgs),
        ]:
            tree = builder(BlockStore(), data, fanout)
            engine = QueryEngine(tree)
            for window in workload:
                engine.query(window)
            visited[name] = engine.totals.leaf_reads / (
                engine.totals.queries * tree.leaf_count()
            )
        assert visited["PR"] < visited["H"] / 3
        assert visited["PR"] < visited["H4"] / 3
        assert visited["PR"] < visited["TGS"]
