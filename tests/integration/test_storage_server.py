"""End-to-end acceptance: TIGER-scale PR-tree → `repro pack` index file
→ lazily paged tree with a bounded cache → 1k-request mixed batch
through the QueryServer, identical to the in-memory engines.
"""

import pytest

from repro.datasets.tiger import tiger_dataset
from repro.experiments.harness import build_variant
from repro.experiments.serving import mixed_requests, pack_index
from repro.queries.join import SpatialJoinEngine
from repro.queries.knn import KNNEngine
from repro.queries.point import PointQueryEngine
from repro.rtree.query import QueryEngine
from repro.server import (
    ContainmentRequest,
    CountRequest,
    JoinRequest,
    KNNRequest,
    PointRequest,
    QueryServer,
    WindowRequest,
)
from repro.storage import PagedTree

N = 30_000
MINOR_N = 800
FANOUT = 113  # the paper's 4 KB-block fan-out
SEED = 0


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    """The packed index files plus matching in-memory reference trees."""
    tmp = tmp_path_factory.mktemp("storage-server")

    # `repro pack` builds its dataset deterministically from (dataset,
    # n, seed); rebuilding with the same parameters gives the exact
    # in-memory tree the file was packed from.
    main_path = tmp / "tiger.pack"
    pack_index(
        main_path, variant="PR", dataset="tiger-east", n=N, seed=SEED
    )
    mem_main = build_variant(
        "PR", tiger_dataset(N, "eastern", seed=SEED), FANOUT
    )

    minor_path = tmp / "minor.pack"
    pack_index(
        minor_path, variant="H", dataset="tiger-east", n=MINOR_N, seed=SEED + 1
    )
    mem_minor = build_variant(
        "H", tiger_dataset(MINOR_N, "eastern", seed=SEED + 1), FANOUT
    )

    paged_main = PagedTree.open(
        main_path, values=dict(mem_main.objects), cache_pages=128
    )
    paged_minor = PagedTree.open(
        minor_path, values=dict(mem_minor.objects), cache_pages=32
    )
    yield paged_main, paged_minor, mem_main, mem_minor
    paged_main.close()
    paged_minor.close()


def test_paged_tree_is_bounded_and_lazy(stack):
    paged_main, _, mem_main, _ = stack
    assert paged_main.size == mem_main.size == N
    assert paged_main.height == mem_main.height
    # The file holds hundreds of nodes; the cache never exceeds its budget.
    assert mem_main.node_count() > 128
    assert paged_main.page_store.cached_pages() <= 128


def test_thousand_request_mixed_batch_matches_in_memory_engines(stack):
    paged_main, paged_minor, mem_main, mem_minor = stack
    server = QueryServer({"tiger": paged_main, "minor": paged_minor})

    bounds = mem_main.root().mbr()
    requests = mixed_requests(bounds, count=999, seed=7, index="tiger")
    requests.append(JoinRequest("tiger", "minor"))
    assert len(requests) == 1000

    report = server.submit(requests)

    # Per-batch accounting is reported.
    assert report.requests == 1000
    assert report.latency_s > 0
    assert report.leaf_ios > 0
    assert report.physical_reads > 0  # pages really came off the file
    assert report.executed + report.dedup_hits == 1000
    assert [r.request for r in report.results] == requests

    # Every result is identical to the matching in-memory engine's.
    window_engine = QueryEngine(mem_main)
    point_engine = PointQueryEngine(mem_main)
    knn_engine = KNNEngine(mem_main)
    for result in report.results:
        request = result.request
        if isinstance(request, WindowRequest):
            want, _ = window_engine.query(request.window)
            assert sorted(v for _, v in result.value) == sorted(
                v for _, v in want
            )
        elif isinstance(request, ContainmentRequest):
            want, _ = point_engine.containment_query(request.window)
            assert sorted(v for _, v in result.value) == sorted(
                v for _, v in want
            )
        elif isinstance(request, CountRequest):
            want_count, _ = point_engine.count(request.window)
            assert result.value == want_count
        elif isinstance(request, PointRequest):
            want, _ = point_engine.point_query(request.point)
            assert sorted(v for _, v in result.value) == sorted(
                v for _, v in want
            )
        elif isinstance(request, KNNRequest):
            want, _ = knn_engine.knn(request.target, request.k)
            assert [n.distance for n in result.value] == [
                n.distance for n in want
            ]
        elif isinstance(request, JoinRequest):
            want, _ = SpatialJoinEngine(mem_main, mem_minor).join()
            assert len(result.value) == len(want)


def test_second_batch_is_cheaper_physically_but_not_logically(stack):
    paged_main, _, mem_main, _ = stack
    # A fresh handle with a cache larger than the whole file, so the
    # second batch demonstrates pure warm-cache behaviour.
    path = paged_main.page_store.file_store.path
    with PagedTree.open(
        path, values=dict(mem_main.objects), cache_pages=4096
    ) as fresh:
        server = QueryServer({"tiger": fresh})
        bounds = mem_main.root().mbr()
        requests = [
            r
            for r in mixed_requests(bounds, count=200, seed=11, index="tiger")
            if isinstance(r, WindowRequest)
        ]
        cold = server.submit(requests)
        warm = server.submit(requests)
        # Logical I/O (the paper's metric) is identical batch over batch...
        assert warm.leaf_ios == cold.leaf_ios
        # ...while the warmed page cache and internal-node pools remove
        # the physical work entirely.
        assert cold.physical_reads > 0
        assert warm.physical_reads == 0
        assert warm.internal_reads == 0
