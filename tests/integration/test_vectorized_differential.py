"""Differential suite: vectorized kernels vs the pre-refactor scalar path.

The array-native read path (structure-of-arrays ``NodeFrame`` +
:mod:`repro.geometry.kernels`) must be a pure representation change:
**bit-identical results** (same matches, same order, same floats) and
**identical logical I/O** (same ``QueryStats``/``JoinStats``, same page
traffic) as the historical entry-at-a-time engines.

The oracles below are verbatim copies of the pre-refactor per-entry
traversal code — ``Rect`` method calls over ``node.entries`` — sharing
:class:`~repro.queries.base.TraversalEngine` so both sides count I/O
through the identical ``_read`` path.  Every engine (window, point,
containment, count, kNN, join, window batches) is compared across every
tree variant, plus a tight-cache :class:`~repro.storage.PagedTree` where
the comparison extends to the physical
:class:`~repro.storage.paged.PageCacheStats`.

The whole file runs under both kernel backends: the no-numpy CI leg
re-executes it with ``REPRO_NO_NUMPY=1``.
"""

import heapq
import math
import tempfile
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bulk.hilbert import build_hilbert, build_hilbert4
from repro.bulk.str_pack import build_str
from repro.bulk.tgs import build_tgs
from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.queries.join import JoinStats, SpatialJoinEngine, sweep_pairs, sweep_order
from repro.queries.knn import KNNEngine, Neighbor, _dist_sq
from repro.queries.point import PointQueryEngine
from repro.rtree.query import QueryEngine, QueryStats
from repro.queries.base import TraversalEngine
from repro.storage import PagedTree, pack_tree

from tests.conftest import random_rects, random_windows

ALL_BUILDERS = [build_hilbert, build_hilbert4, build_tgs, build_str, build_prtree]
BUILDER_IDS = ["H", "H4", "TGS", "STR", "PR"]

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def rect_datasets(draw, dim=2, max_size=60):
    n = draw(st.integers(min_value=0, max_value=max_size))
    data = []
    for i in range(n):
        lo = [draw(unit) for _ in range(dim)]
        hi = [min(1.0, c + draw(st.floats(min_value=0.0, max_value=0.3))) for c in lo]
        data.append((Rect(lo, hi), i))
    return data


@st.composite
def windows(draw, dim=2):
    lo = [draw(unit) for _ in range(dim)]
    hi = [min(1.0, c + draw(st.floats(min_value=0.0, max_value=0.6))) for c in lo]
    return Rect(lo, hi)


# ----------------------------------------------------------------------
# Scalar oracles: the pre-refactor per-entry engines, copied verbatim.
# ----------------------------------------------------------------------


class ScalarWindowEngine(TraversalEngine):
    """The historical entry-at-a-time window query."""

    def query(self, window):
        tree = self.tree
        stats = QueryStats(queries=1)
        matches = []
        stack = [tree.root_id]
        while stack:
            node = self._read(stack.pop(), stats)
            if node.is_leaf:
                for rect, pointer in node.entries:
                    if rect.intersects(window):
                        matches.append((rect, tree.objects.get(pointer)))
                        stats.reported += 1
            else:
                for rect, pointer in node.entries:
                    if rect.intersects(window):
                        stack.append(pointer)
        self.totals.merge(stats)
        return matches, stats


class ScalarPointEngine(TraversalEngine):
    """The historical per-entry point / containment / count queries."""

    def point_query(self, point):
        point = tuple(float(c) for c in point)
        return self._run(
            descend=lambda rect: rect.contains_point(point),
            report=lambda rect: rect.contains_point(point),
        )

    def containment_query(self, window):
        return self._run(
            descend=lambda rect: rect.intersects(window),
            report=lambda rect: window.contains_rect(rect),
        )

    def count(self, window):
        _, stats = self._run(
            descend=lambda rect: rect.intersects(window),
            report=lambda rect: rect.intersects(window),
            materialize=False,
        )
        return stats.reported, stats

    def _run(self, descend, report, materialize=True):
        tree = self.tree
        stats = QueryStats(queries=1)
        matches = []
        stack = [tree.root_id]
        while stack:
            node = self._read(stack.pop(), stats)
            if node.is_leaf:
                for rect, pointer in node.entries:
                    if report(rect):
                        stats.reported += 1
                        if materialize:
                            matches.append((rect, tree.objects.get(pointer)))
            else:
                for rect, pointer in node.entries:
                    if descend(rect):
                        stack.append(pointer)
        self.totals.merge(stats)
        return matches, stats


_NODE, _DATA = 0, 1


class ScalarKNNEngine(TraversalEngine):
    """The historical best-first kNN over entry tuples."""

    def knn(self, target, k):
        self.totals.queries += 1
        neighbors = []
        heap = [(0.0, 0, _NODE, self.tree.root_id)]
        counter = 0
        while heap and len(neighbors) < k:
            dist_sq, _, kind, payload = heapq.heappop(heap)
            if kind == _DATA:
                rect, pointer = payload
                self.totals.reported += 1
                neighbors.append(
                    Neighbor(
                        math.sqrt(dist_sq),
                        rect,
                        self.tree.objects.get(pointer),
                    )
                )
                continue
            node = self._read(payload, self.totals)
            kind = _DATA if node.is_leaf else _NODE
            for rect, pointer in node.entries:
                counter += 1
                payload = (rect, pointer) if node.is_leaf else pointer
                heapq.heappush(
                    heap, (_dist_sq(rect, target), counter, kind, payload)
                )
        return neighbors


class ScalarJoinEngine:
    """The historical entry-based synchronized join with plane sweep."""

    def __init__(self, left, right):
        self._left = TraversalEngine(left)
        self._right = TraversalEngine(right)
        self._orders_left = {}
        self._orders_right = {}
        self.totals = JoinStats()

    def join(self):
        out = []
        return out, self._run(out)

    def pair_count(self):
        stats = self._run(None)
        return stats.pairs, stats

    def _run(self, out):
        stats = JoinStats(joins=1)
        left_root_id = self._left.tree.root_id
        right_root_id = self._right.tree.root_id
        left_root = self._left._read(left_root_id, stats.left)
        right_root = self._right._read(right_root_id, stats.right)
        if left_root.entries and right_root.entries:
            if left_root.mbr().intersects(right_root.mbr()):
                self._join_pair(
                    left_root_id, left_root, right_root_id, right_root,
                    out, stats,
                )
        self.totals.merge(stats)
        return stats

    def _order(self, cache, block_id, node):
        order = cache.get(block_id)
        if order is None:
            order = cache[block_id] = sweep_order(node.entries)
        return order

    def _join_pair(self, id_a, node_a, id_b, node_b, out, stats):
        stats.node_pairs += 1
        if node_a.is_leaf and node_b.is_leaf:
            left_objects = self._left.tree.objects
            right_objects = self._right.tree.objects
            pairs = sweep_pairs(
                node_a.entries,
                node_b.entries,
                self._order(self._orders_left, id_a, node_a),
                self._order(self._orders_right, id_b, node_b),
            )
            for i, j in pairs:
                stats.pairs += 1
                if out is not None:
                    rect_a, ptr_a = node_a.entries[i]
                    rect_b, ptr_b = node_b.entries[j]
                    out.append(
                        (
                            (rect_a, left_objects.get(ptr_a)),
                            (rect_b, right_objects.get(ptr_b)),
                        )
                    )
        elif node_a.is_leaf:
            mbr_a = node_a.mbr()
            for rect, child_id in node_b.entries:
                if rect.intersects(mbr_a):
                    child = self._right._read(child_id, stats.right)
                    self._join_pair(id_a, node_a, child_id, child, out, stats)
        elif node_b.is_leaf:
            mbr_b = node_b.mbr()
            for rect, child_id in node_a.entries:
                if rect.intersects(mbr_b):
                    child = self._left._read(child_id, stats.left)
                    self._join_pair(child_id, child, id_b, node_b, out, stats)
        else:
            matches = {}
            pairs = sweep_pairs(
                node_a.entries,
                node_b.entries,
                self._order(self._orders_left, id_a, node_a),
                self._order(self._orders_right, id_b, node_b),
            )
            for i, j in pairs:
                matches.setdefault(i, []).append(j)
            for i in sorted(matches):
                child_a_id = node_a.entries[i][1]
                child_a = self._left._read(child_a_id, stats.left)
                for j in matches[i]:
                    child_b_id = node_b.entries[j][1]
                    child_b = self._right._read(child_b_id, stats.right)
                    self._join_pair(
                        child_a_id, child_a, child_b_id, child_b, out, stats
                    )


def build_all(data, fanout):
    return [
        (name, builder(BlockStore(), data, fanout))
        for builder, name in zip(ALL_BUILDERS, BUILDER_IDS)
    ]


# ----------------------------------------------------------------------
# The differential sweeps
# ----------------------------------------------------------------------


class TestWindowDifferential:
    @settings(max_examples=25, deadline=None)
    @given(rect_datasets(), windows(), st.integers(min_value=2, max_value=9))
    def test_window_query_identical(self, data, window, fanout):
        for name, tree in build_all(data, fanout):
            got_m, got_s = QueryEngine(tree).query(window)
            want_m, want_s = ScalarWindowEngine(tree).query(window)
            assert got_m == want_m, f"{name}: matches differ"
            assert got_s == want_s, f"{name}: logical I/O differs"

    @settings(max_examples=10, deadline=None)
    @given(rect_datasets(dim=3, max_size=40), windows(dim=3))
    def test_window_query_identical_3d(self, data, window):
        for name, tree in build_all(data, 4):
            got_m, got_s = QueryEngine(tree).query(window)
            want_m, want_s = ScalarWindowEngine(tree).query(window)
            assert (got_m, got_s) == (want_m, want_s), name

    @settings(max_examples=15, deadline=None)
    @given(
        rect_datasets(max_size=50),
        st.lists(windows(), min_size=0, max_size=6),
        st.integers(min_value=2, max_value=9),
    )
    def test_query_batch_identical_to_scalar_solo(self, data, batch, fanout):
        for name, tree in build_all(data, fanout):
            got_matches, got_stats = QueryEngine(tree).query_batch(batch)
            for window, got_m, got_s in zip(batch, got_matches, got_stats):
                want_m, want_s = ScalarWindowEngine(tree).query(window)
                assert got_m == want_m, f"{name}: batch matches differ"
                assert got_s.leaf_reads == want_s.leaf_reads, name
                assert got_s.internal_visits == want_s.internal_visits, name
                assert got_s.reported == want_s.reported, name


class TestPointDifferential:
    @settings(max_examples=20, deadline=None)
    @given(
        rect_datasets(),
        st.tuples(unit, unit),
        st.integers(min_value=2, max_value=9),
    )
    def test_point_query_identical(self, data, point, fanout):
        for name, tree in build_all(data, fanout):
            got = PointQueryEngine(tree).point_query(point)
            want = ScalarPointEngine(tree).point_query(point)
            assert got == want, name

    @settings(max_examples=20, deadline=None)
    @given(rect_datasets(), windows(), st.integers(min_value=2, max_value=9))
    def test_containment_and_count_identical(self, data, window, fanout):
        for name, tree in build_all(data, fanout):
            engine = PointQueryEngine(tree)
            oracle = ScalarPointEngine(tree)
            assert engine.containment_query(window) == oracle.containment_query(
                window
            ), name
            # Fresh engines: the shared internal pools must not leak
            # state between the two operators under comparison.
            got_n, got_s = PointQueryEngine(tree).count(window)
            want_n, want_s = ScalarPointEngine(tree).count(window)
            assert (got_n, got_s) == (want_n, want_s), name


class TestKNNDifferential:
    @settings(max_examples=20, deadline=None)
    @given(
        rect_datasets(max_size=50),
        st.tuples(unit, unit),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=2, max_value=9),
    )
    def test_knn_point_target_identical(self, data, point, k, fanout):
        for name, tree in build_all(data, fanout):
            engine = KNNEngine(tree)
            got, _ = engine.knn(point, k)
            oracle = ScalarKNNEngine(tree)
            want = oracle.knn(point, k)
            assert got == want, f"{name}: neighbors differ"
            assert engine.totals == oracle.totals, f"{name}: I/O differs"

    @settings(max_examples=15, deadline=None)
    @given(
        rect_datasets(max_size=40),
        windows(),
        st.integers(min_value=1, max_value=8),
    )
    def test_knn_rect_target_identical(self, data, target, k):
        for name, tree in build_all(data, 5):
            engine = KNNEngine(tree)
            got, _ = engine.knn(target, k)
            oracle = ScalarKNNEngine(tree)
            want = oracle.knn(target, k)
            assert got == want, name
            assert engine.totals == oracle.totals, name


class TestJoinDifferential:
    @settings(max_examples=15, deadline=None)
    @given(
        rect_datasets(max_size=40),
        rect_datasets(max_size=40),
        st.integers(min_value=2, max_value=7),
        st.integers(min_value=2, max_value=7),
    )
    def test_join_identical(self, left_data, right_data, fan_l, fan_r):
        left = build_prtree(BlockStore(), left_data, fan_l)
        right = build_hilbert(BlockStore(), right_data, fan_r)
        got_pairs, got_stats = SpatialJoinEngine(left, right).join()
        want_pairs, want_stats = ScalarJoinEngine(left, right).join()
        assert got_pairs == want_pairs
        assert got_stats == want_stats

    @settings(max_examples=15, deadline=None)
    @given(rect_datasets(max_size=40), rect_datasets(max_size=40))
    def test_pair_count_identical(self, left_data, right_data):
        left = build_tgs(BlockStore(), left_data, 4)
        right = build_str(BlockStore(), right_data, 6)
        got_n, got_stats = SpatialJoinEngine(left, right).pair_count()
        want_n, want_stats = ScalarJoinEngine(left, right).pair_count()
        assert got_n == want_n
        assert got_stats == want_stats

    @settings(max_examples=10, deadline=None)
    @given(rect_datasets(max_size=30))
    def test_self_join_identical(self, data):
        tree = build_prtree(BlockStore(), data, 4)
        got_pairs, got_stats = SpatialJoinEngine(tree, tree).join()
        want_pairs, want_stats = ScalarJoinEngine(tree, tree).join()
        assert got_pairs == want_pairs
        assert got_stats == want_stats


class TestStoreLevelIO:
    @settings(max_examples=10, deadline=None)
    @given(rect_datasets(max_size=50), windows())
    def test_logical_store_reads_identical(self, data, window):
        for name, tree in build_all(data, 5):
            counters = tree.store.counters
            before = counters.reads
            QueryEngine(tree).query(window)
            vector_reads = counters.reads - before
            before = counters.reads
            ScalarWindowEngine(tree).query(window)
            scalar_reads = counters.reads - before
            assert vector_reads == scalar_reads, name


class TestPagedTreeDifferential:
    """Tight-cache paged trees: logical stats AND physical page traffic."""

    @pytest.fixture(scope="class")
    def packed(self, tmp_path_factory):
        data = random_rects(700, seed=51)
        tree = build_prtree(BlockStore(), data, 16)
        path = tmp_path_factory.mktemp("diff") / "index.pack"
        pack_tree(tree, path, block_size=1024)
        return path, dict(tree.objects)

    def _compare_workload(self, packed, run_vector, run_scalar):
        path, values = packed
        # Two independent handles: each side gets its own page cache so
        # the physical hit/miss/eviction sequences are comparable.
        with PagedTree.open(
            path, values=values, cache_pages=4, readonly=True
        ) as vec_tree, PagedTree.open(
            path, values=values, cache_pages=4, readonly=True
        ) as sca_tree:
            got = run_vector(vec_tree)
            want = run_scalar(sca_tree)
            assert got == want
            assert vec_tree.page_stats == sca_tree.page_stats

    def test_window_workload(self, packed):
        queries = random_windows(15, seed=52)

        def vector(tree):
            engine = QueryEngine(tree, cache_capacity=2)
            return [engine.query(w) for w in queries]

        def scalar(tree):
            engine = ScalarWindowEngine(tree, cache_capacity=2)
            return [engine.query(w) for w in queries]

        self._compare_workload(packed, vector, scalar)

    def test_mixed_operator_workload(self, packed):
        queries = random_windows(6, seed=53)
        points = [(w.lo[0], w.lo[1]) for w in queries]

        def vector(tree):
            engine = PointQueryEngine(tree, cache_capacity=2)
            out = [engine.point_query(p) for p in points]
            out += [engine.containment_query(w) for w in queries]
            out += [engine.count(w) for w in queries]
            knn_engine = KNNEngine(tree, cache_capacity=2)
            out += [knn_engine.knn(p, 5) for p in points]
            return out

        def scalar(tree):
            engine = ScalarPointEngine(tree, cache_capacity=2)
            out = [engine.point_query(p) for p in points]
            out += [engine.containment_query(w) for w in queries]
            out += [engine.count(w) for w in queries]
            knn_engine = ScalarKNNEngine(tree, cache_capacity=2)
            out += [(knn_engine.knn(p, 5), None) for p in points]
            return out

        # kNN return shapes differ between engine and oracle; compare
        # neighbor lists separately below instead of via _compare_workload.
        path, values = packed
        with PagedTree.open(
            path, values=values, cache_pages=4, readonly=True
        ) as vec_tree, PagedTree.open(
            path, values=values, cache_pages=4, readonly=True
        ) as sca_tree:
            engine = PointQueryEngine(vec_tree, cache_capacity=2)
            oracle = ScalarPointEngine(sca_tree, cache_capacity=2)
            for p in points:
                assert engine.point_query(p) == oracle.point_query(p)
            for w in queries:
                assert engine.containment_query(w) == oracle.containment_query(w)
                assert engine.count(w) == oracle.count(w)
            knn_engine = KNNEngine(vec_tree, cache_capacity=2)
            knn_oracle = ScalarKNNEngine(sca_tree, cache_capacity=2)
            for p in points:
                got, _ = knn_engine.knn(p, 5)
                assert got == knn_oracle.knn(p, 5)
            assert knn_engine.totals == knn_oracle.totals
            assert vec_tree.page_stats == sca_tree.page_stats

    def test_batch_workload(self, packed):
        queries = random_windows(10, seed=54)
        path, values = packed
        with PagedTree.open(
            path, values=values, cache_pages=4, readonly=True
        ) as vec_tree, PagedTree.open(
            path, values=values, cache_pages=4, readonly=True
        ) as sca_tree:
            got_matches, got_stats = QueryEngine(vec_tree).query_batch(queries)
            oracle = ScalarWindowEngine(sca_tree)
            for window, got_m, got_s in zip(queries, got_matches, got_stats):
                want_m, want_s = oracle.query(window)
                assert got_m == want_m
                assert got_s.leaf_reads == want_s.leaf_reads
                assert got_s.reported == want_s.reported
            # The batch traversal deduplicates page visits: its physical
            # misses can only be lower than per-query execution.
            assert (
                vec_tree.page_stats.misses <= sca_tree.page_stats.misses
            )
