"""d-dimensional behaviour (paper Section 2.3, Theorem 2).

The PR-tree generalizes to d dimensions with 2d priority leaves and a
query bound of O((N/B)^(1-1/d) + T/B).  These tests exercise the whole
stack at d = 1 and d = 3 and check the Theorem 2 exponent at d = 3.
"""

import math
import random

import pytest

from repro.bulk.hilbert import build_hilbert, build_hilbert4
from repro.bulk.tgs import build_tgs
from repro.geometry.rect import Rect, point_rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree, prtree_query_bound
from repro.rtree.query import QueryEngine, brute_force_query
from repro.rtree.validate import utilization, validate_rtree

from tests.conftest import assert_same_matches, random_rects, random_windows

ALL_BUILDERS = {
    "H": build_hilbert,
    "H4": build_hilbert4,
    "TGS": build_tgs,
    "PR": build_prtree,
}


class TestOneDimensional:
    def test_all_variants_correct_in_1d(self):
        data = random_rects(400, seed=61, dim=1)
        for name, builder in ALL_BUILDERS.items():
            tree = builder(BlockStore(), data, 8)
            validate_rtree(tree, expect_size=400)
            for window in random_windows(10, seed=62, dim=1):
                got, _ = QueryEngine(tree).query(window)
                assert_same_matches(
                    got, brute_force_query(data, window), context=name
                )

    def test_1d_interval_stabbing(self):
        # 1D window queries are interval-stabbing queries.
        data = [(Rect((i,), (i + 0.5,)), i) for i in range(100)]
        tree = build_prtree(BlockStore(), data, 8)
        got = tree.query(point_rect((10.25,)))
        assert [v for _, v in got] == [10]


class TestThreeDimensional:
    def test_all_variants_correct_in_3d(self):
        data = random_rects(500, seed=63, dim=3)
        for name, builder in ALL_BUILDERS.items():
            tree = builder(BlockStore(), data, 8)
            validate_rtree(tree, expect_size=500)
            for window in random_windows(8, seed=64, dim=3):
                got, _ = QueryEngine(tree).query(window)
                assert_same_matches(
                    got, brute_force_query(data, window), context=name
                )

    def test_utilization_in_3d(self):
        data = random_rects(1000, seed=65, dim=3)
        for builder in ALL_BUILDERS.values():
            tree = builder(BlockStore(), data, 8)
            assert utilization(tree).leaf_fill > 0.99

    def test_theorem2_bound_in_3d(self):
        # O((N/B)^(2/3) + T/B) leaf I/Os for d = 3.
        n, fanout = 4096, 8
        data = random_rects(n, seed=66, dim=3, max_side=0.05)
        tree = build_prtree(BlockStore(), data, fanout)
        engine = QueryEngine(tree)
        for window in random_windows(15, seed=67, dim=3, side=0.3):
            _, stats = engine.query(window)
            bound = prtree_query_bound(n, fanout, stats.reported, dim=3, constant=10.0)
            assert stats.leaf_reads <= bound

    def test_theorem2_exponent_scaling(self):
        # Empty-ish queries: quadrupling N should scale cost by about
        # 4^(2/3) ≈ 2.5, not 4.  Use thin slab queries that cut the cube.
        fanout = 8
        costs = {}
        for n in (2048, 8192):
            rng = random.Random(68)
            data = [
                (point_rect((rng.random(), rng.random(), rng.random())), i)
                for i in range(n)
            ]
            tree = build_prtree(BlockStore(), data, fanout)
            engine = QueryEngine(tree)
            total = 0
            rounds = 10
            for k in range(rounds):
                x = (k + 0.5) / rounds
                window = Rect((x, 0.0, 0.0), (x + 1e-9, 1.0, 1.0))
                _, stats = engine.query(window)
                total += stats.leaf_reads
            costs[n] = total / rounds
        growth = costs[8192] / max(costs[2048], 1)
        assert growth < 3.5, costs  # linear scaling would be ~4


class TestPseudoPRTreeDimensions:
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_priority_leaf_directions_match_dim(self, dim):
        from repro.prtree.pseudo import PseudoPRTree

        data = random_rects(300, seed=69, dim=dim)
        tree = PseudoPRTree([(r, v) for r, v in data], capacity=8)
        for node in tree.nodes():
            assert len(node.priority_leaves) <= 2 * dim
            assert 0 <= node.split_axis < 2 * dim
