"""Integration tests for the experiment harness (tiny-scale runs).

Each figure/table function must run end-to-end and produce rows of the
right shape; the cheap ones also get sanity assertions on their content.
"""

import pytest

from repro.datasets.synthetic import size_dataset
from repro.experiments.figures import (
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
)
from repro.experiments.harness import (
    WorkloadMetrics,
    build_variant,
    build_variant_external,
    measure_workload,
)
from repro.experiments.tables import table1, theorem3_demo
from repro.external.memory import MemoryModel
from repro.workloads.queries import dataset_bounds, square_queries

TINY_MEM = MemoryModel(memory_records=128, block_records=8)


class TestHarness:
    def test_build_variant_names(self):
        data = size_dataset(200, 0.01, seed=1)
        for name in ("H", "H4", "PR", "TGS", "STR"):
            tree = build_variant(name, data, 8)
            assert len(tree) == 200

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            build_variant("R*", [], 8)
        with pytest.raises(ValueError):
            build_variant_external("STR", [], 8, TINY_MEM)

    def test_measure_workload_metrics(self):
        data = size_dataset(500, 0.01, seed=2)
        tree = build_variant("PR", data, 8)
        workload = square_queries(dataset_bounds(data), 1.0, count=10, seed=3)
        metrics = measure_workload(tree, workload)
        assert metrics.queries == 10
        assert metrics.leaf_ios > 0
        assert metrics.cost_ratio >= 1.0
        assert 0 < metrics.visited_fraction <= 1

    def test_metrics_zero_output(self):
        m = WorkloadMetrics(queries=5, leaf_ios=10, reported=0, leaf_count=100, fanout=8)
        assert m.cost_ratio == float("inf")
        assert m.avg_reported == 0


class TestFigureRunners:
    def test_figure9_rows(self):
        table = figure9(n_eastern=700, n_western=500, fanout=8, memory=TINY_MEM)
        assert len(table.rows) == 8  # 2 datasets x 4 variants
        assert all(io > 0 for io in table.column("io_blocks"))

    def test_figure10_rows(self):
        table = figure10(max_n=800, fanout=8, memory=TINY_MEM)
        assert len(table.rows) == 20  # 5 subsets x 4 variants
        # I/O grows with n for each variant.
        by_variant = {}
        for n, variant, io, _ in table.rows:
            by_variant.setdefault(variant, []).append((n, io))
        for series in by_variant.values():
            ordered = sorted(series)
            assert ordered[0][1] < ordered[-1][1]

    def test_figure11_rows(self):
        from repro.experiments.figures import ASPECT_SWEEP, SIZE_SWEEP

        table = figure11(n=600, fanout=8, memory=TINY_MEM)
        expected = 2 * (len(SIZE_SWEEP) + len(ASPECT_SWEEP))
        assert len(table.rows) == expected
        datasets = set(table.column("dataset"))
        assert any(d.startswith("size") for d in datasets)
        assert any(d.startswith("aspect") for d in datasets)

    def test_figure12_rows(self):
        table = figure12(n=800, fanout=8, queries=5, areas=[1.0, 2.0])
        assert len(table.rows) == 8  # 2 areas x 4 variants
        assert all(ratio >= 1.0 for ratio in table.column("cost_ratio"))

    def test_figure13_rows(self):
        table = figure13(n=800, fanout=8, queries=5, areas=[1.0])
        assert len(table.rows) == 4

    def test_figure14_rows(self):
        table = figure14(max_n=900, fanout=8, queries=5)
        assert len(table.rows) == 20

    def test_figure15_single_panel(self):
        table = figure15(n=600, fanout=8, queries=5, panel="skewed")
        assert len(table.rows) == 20  # 5 skew values x 4 variants

    def test_figure15_bad_panel(self):
        with pytest.raises(ValueError):
            figure15(panel="bogus")


class TestTableRunners:
    def test_table1_rows(self):
        table = table1(n=3000, fanout=8, queries=10)
        assert len(table.rows) == 4
        by_variant = {row[0]: row for row in table.rows}
        # PR visits a smaller fraction than H and H4.
        assert by_variant["PR"][2] < by_variant["H"][2]
        assert by_variant["PR"][2] < by_variant["H4"][2]

    def test_theorem3_rows(self):
        table = theorem3_demo(n=1024, fanout=8, queries=5)
        by_variant = {row[0]: row for row in table.rows}
        # Heuristics visit everything; PR stays within its bound.
        for name in ("H", "H4", "TGS"):
            assert by_variant[name][3] > 90.0  # visited_%
        assert by_variant["PR"][1] <= by_variant["PR"][4]  # ios <= bound
