"""End-to-end observability: attribution exactness, span coverage, export.

Three contracts from docs/observability.md, checked against a real
packed index:

* **Attribution is exact** — with 100% sampling, summing every trace's
  I/O ledger reproduces the shared ``IOCounters`` /
  ``PageCacheStats`` deltas for the run byte-for-byte (attribute, don't
  re-count).
* **No bleed between overlapping batches** — two batches in flight on
  one shared paged handle each report exactly the I/O they caused
  (the regression the per-batch tap fixed: boundary deltas on shared
  counters credited other batches' traffic).
* **Spans tell the whole story** — every traced request's service
  spans (admission/queue/coalesce-or-quiesce/execute) sum to at least
  95% of its end-to-end latency, and the exported Chrome-trace file
  parses with clean nesting.
"""

import asyncio
import threading

import pytest

from repro.experiments.serving import (
    mixed_requests,
    mixed_service_stream,
    pack_index,
)
from repro.obs import (
    MetricsRegistry,
    SlowQueryLog,
    TraceWriter,
    Tracer,
    activate_trace,
    check_span_nesting,
    load_trace_events,
)
from repro.server import QueryServer
from repro.service import AsyncQueryService, open_loop
from repro.storage import PagedTree

N = 6_000
SEED = 0

#: The service spans that partition a request's end-to-end window.
SERVICE_SPANS = {"admission", "queue", "coalesce", "write-quiesce", "execute"}


@pytest.fixture(scope="module")
def index_path(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("observability")
    path = tmp / "index.pack"
    pack_index(path, variant="PR", dataset="tiger-east", n=N, seed=SEED)
    return path


class TestOverlappingBatchAttribution:
    def test_concurrent_batches_do_not_bleed(self, index_path):
        bounds_probe = PagedTree.open(index_path, cache_pages=64)
        bounds = bounds_probe.root().mbr()
        bounds_probe.close()

        batch_a = mixed_requests(bounds, count=150, seed=SEED + 1)
        batch_b = mixed_requests(bounds, count=150, seed=SEED + 2)

        # Solo baseline: batch A's logical I/O is a property of the
        # tree and the requests, independent of cache state or what
        # else is in flight.
        with PagedTree.open(index_path, cache_pages=64) as tree:
            solo = QueryServer(tree).submit(batch_a)

        # Now A and B overlap on one shared paged handle (two servers,
        # shared page cache and counters — the bleed scenario).
        with PagedTree.open(index_path, cache_pages=64) as tree:
            store = tree.page_store
            counters_before = store.counters.snapshot()
            stats_before = store.stats.snapshot()
            servers = [QueryServer(tree), QueryServer(tree)]
            reports = [None, None]
            barrier = threading.Barrier(2)

            def run(i, batch):
                barrier.wait()
                reports[i] = servers[i].submit(batch)

            threads = [
                threading.Thread(target=run, args=(0, batch_a)),
                threading.Thread(target=run, args=(1, batch_b)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            counters_delta = store.counters.snapshot() - counters_before
            stats_after = store.stats.snapshot()

        report_a, report_b = reports
        # A's attributed I/O is what A alone would cost — B's traffic
        # never bleeds in, even though both ran on shared counters.
        assert report_a.io["reads"] == solo.io["reads"]
        assert report_a.leaf_ios == solo.leaf_ios

        # And the two batches' attributed slices partition the shared
        # deltas exactly: nothing lost, nothing double-counted.
        assert (
            report_a.io["reads"] + report_b.io["reads"]
            == counters_delta.reads
        )
        assert (
            report_a.physical_reads + report_b.physical_reads
            == stats_after.misses - stats_before.misses
        )
        assert (
            report_a.io["misses"] + report_b.io["misses"]
            == stats_after.misses - stats_before.misses
        )


class TestEndToEndTracing:
    @pytest.fixture(scope="class")
    def run(self, index_path, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("e2e-trace")
        trace_path = tmp / "trace.jsonl"
        writer = TraceWriter(trace_path)
        tracer = Tracer(writer, sample_rate=1.0, keep_finished=True)
        registry = MetricsRegistry()
        slow_log = SlowQueryLog(threshold_s=0.0)

        async def drive(tree, bounds):
            service = AsyncQueryService(
                tree,
                max_batch=32,
                flush_interval=0.002,
                admission="backpressure",
                executor_workers=4,
                tracer=tracer,
                metrics=registry,
                slow_log=slow_log,
            )
            stream = mixed_service_stream(
                bounds, count=150, write_frac=0.15, seed=SEED + 3
            )
            async with service:
                report = await open_loop(service, stream, 2000.0, seed=1)
            return report

        with PagedTree.open(index_path, cache_pages=64) as tree:
            store = tree.page_store
            # The bounds probe peeks the root block; keep it out of the
            # measured window so every miss in the delta belongs to a
            # request.
            bounds = tree.root().mbr()
            counters_before = store.counters.snapshot()
            stats_before = store.stats.snapshot()
            report = asyncio.run(drive(tree, bounds))
            counters_delta = store.counters.snapshot() - counters_before
            misses_delta = store.stats.misses - stats_before.misses
        writer.close()
        return report, tracer, registry, slow_log, trace_path, (
            counters_delta,
            misses_delta,
        )

    def test_every_completed_request_is_traced(self, run):
        report, tracer, *_ = run
        assert report.errors == 0
        assert report.completed == 150
        assert tracer.emitted == 150
        assert len(tracer.finished) == 150

    def test_attributed_io_matches_shared_counters_exactly(self, run):
        report, tracer, _, _, _, (counters_delta, misses_delta) = run
        traced_reads = sum(t.io.reads for t in tracer.finished)
        traced_writes = sum(t.io.writes for t in tracer.finished)
        traced_misses = sum(t.io.misses for t in tracer.finished)
        assert traced_reads == counters_delta.reads
        assert traced_writes == counters_delta.writes
        assert traced_misses == misses_delta
        assert traced_reads > 0  # the run actually did I/O

    def test_service_spans_cover_the_request_window(self, run):
        _, tracer, *_ = run
        for trace in tracer.finished:
            covered = sum(
                span.duration_s
                for span in trace.spans
                if span.name in SERVICE_SPANS
            )
            assert covered >= 0.95 * trace.duration_s, (
                trace,
                [s.name for s in trace.spans],
            )

    def test_exported_file_parses_and_nests(self, run):
        *_, trace_path, _ = run
        events = load_trace_events(trace_path)
        assert check_span_nesting(events) == []
        names = {e["name"] for e in events if e.get("ph") == "X"}
        assert "execute" in names
        assert "queue" in names
        assert any(name.startswith("request:") for name in names)
        # Engine-level spans nest under execute for read kinds.
        assert any(name.startswith("engine:") for name in names)

    def test_metrics_registry_has_per_kind_series(self, run):
        _, _, registry, *_ = run
        text = registry.render_prometheus()
        assert 'repro_request_latency_seconds{kind="window"' in text
        assert "repro_requests_completed_total 150" in text
        assert "repro_index_logical_ios_total" in text

    def test_recovery_metrics_exported_per_index_file(self, run):
        # The durability layer's open-time facts (docs/durability.md)
        # ride along on every metrics snapshot: which epoch the file
        # recovered to, which header slot carried it, and how many
        # uncommitted shadow blocks rollback discarded.
        _, _, registry, *_ = run
        text = registry.render_prometheus()
        labels = '{index="default",shard="-"}'
        assert f"repro_recovery_epoch{labels}" in text
        assert f"repro_recovery_header_slot{labels}" in text
        assert f"repro_recovery_rolled_back_blocks{labels} 0" in text

    def test_slow_log_saw_every_completion(self, run):
        *_, slow_log, _, _ = run
        assert slow_log.total == 150
        record = slow_log.records()[-1]
        assert record.io is not None
        assert record.trace_id is not None


class TestRecoverySpan:
    def test_open_records_a_recovery_span(self, index_path):
        """A traced open reports its recovery verdict as a span."""
        tracer = Tracer(sample_rate=1.0, keep_finished=True)
        trace = tracer.begin("open", kind="admin")
        with activate_trace(trace):
            PagedTree.open(index_path, cache_pages=8).close()
        tracer.finish(trace)
        spans = [s for s in trace.spans if s.name == "recovery"]
        assert len(spans) == 1
        span = spans[0]
        assert span.cat == "storage"
        assert span.args["epoch"] >= 1  # pack_tree commits at least once
        assert span.args["header_slot"] in (0, 1)
        assert span.args["rolled_back_blocks"] == 0  # clean shutdown
        assert span.args["legacy"] is False
