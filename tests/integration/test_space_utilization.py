"""Space utilization across all loaders (paper Section 3.3).

"In all experiments and for all R-trees we achieved a space utilization
above 99%."  This suite asserts that for every in-memory loader on every
dataset family the paper uses, and ≥95% for the external faces (whose
in-memory tails may leave one partial leaf per subtree).
"""

import pytest

from repro.bulk.hilbert import build_hilbert, build_hilbert4
from repro.bulk.str_pack import build_str
from repro.bulk.tgs import build_tgs
from repro.datasets.synthetic import (
    aspect_dataset,
    cluster_dataset,
    size_dataset,
    skewed_dataset,
)
from repro.datasets.tiger import tiger_dataset
from repro.datasets.worstcase import worstcase_dataset
from repro.iomodel.blockstore import BlockStore
from repro.prtree.prtree import build_prtree
from repro.rtree.validate import utilization

LOADERS = {
    "H": build_hilbert,
    "H4": build_hilbert4,
    "TGS": build_tgs,
    "STR": build_str,
    "PR": build_prtree,
}

DATASETS = {
    "tiger": lambda n: tiger_dataset(n, "eastern", seed=1),
    "size": lambda n: size_dataset(n, 0.05, seed=1),
    "aspect": lambda n: aspect_dataset(n, 100.0, seed=1),
    "skewed": lambda n: skewed_dataset(n, 5, seed=1),
    "cluster": lambda n: cluster_dataset(n, clusters=10, seed=1),
    "worstcase": lambda n: worstcase_dataset(n, 16),
}


@pytest.mark.parametrize("loader_name", LOADERS, ids=str)
@pytest.mark.parametrize("dataset_name", DATASETS, ids=str)
def test_leaf_fill_above_99_percent(loader_name, dataset_name):
    data = DATASETS[dataset_name](3000)
    tree = LOADERS[loader_name](BlockStore(), data, 16)
    fill = utilization(tree).leaf_fill
    assert fill > 0.99, f"{loader_name} on {dataset_name}: {fill:.4f}"


@pytest.mark.parametrize("fanout", [8, 16, 32])
def test_fill_across_fanouts_prtree(fanout):
    data = size_dataset(4000, 0.02, seed=2)
    tree = build_prtree(BlockStore(), data, fanout)
    assert utilization(tree).leaf_fill > 0.99


def test_internal_fill_is_reasonable():
    # Internal levels are packed from pseudo-PR-tree leaves too; the
    # paper's >99% claim is about leaves, but internal fill should not
    # collapse either.
    data = tiger_dataset(6000, "eastern", seed=3)
    tree = build_prtree(BlockStore(), data, 16)
    u = utilization(tree)
    assert u.overall_fill > 0.9


def test_external_faces_fill():
    from repro.experiments.harness import EXTERNAL_VARIANTS, build_variant_external
    from repro.external.memory import MemoryModel

    data = size_dataset(2500, 0.02, seed=4)
    memory = MemoryModel(memory_records=256, block_records=16)
    for name in EXTERNAL_VARIANTS:
        tree, _ = build_variant_external(name, data, 16, memory)
        fill = utilization(tree).leaf_fill
        assert fill > 0.95, f"external {name}: {fill:.4f}"
