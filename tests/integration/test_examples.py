"""Smoke tests for the runnable examples.

Only the fast examples are executed directly (the comparison demos
build many trees and belong to the benchmark tier); for the rest we
check they at least compile.
"""

import pathlib
import py_compile
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


class TestFastExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "built PR-tree" in out
        assert "leaf I/Os" in out

    def test_persistence(self, capsys):
        out = run_example("persistence.py", capsys)
        assert "fan-out derived from 4 KB blocks: 113" in out
        assert "answers identically" in out

    def test_knn_and_join(self, capsys):
        out = run_example("knn_and_join.py", capsys)
        assert "5 nearest restaurants" in out
        assert "spatial join:" in out
        assert "leaf I/Os" in out

    def test_sharded_serving(self, capsys):
        out = run_example("sharded_serving.py", capsys)
        assert "4 shards" in out
        assert "per-shard batch load" in out
        assert "reopened cold" in out


class TestAllExamplesCompile:
    @pytest.mark.parametrize(
        "name",
        sorted(p.name for p in EXAMPLES_DIR.glob("*.py")),
    )
    def test_compiles(self, name):
        py_compile.compile(str(EXAMPLES_DIR / name), doraise=True)

    def test_at_least_five_examples_exist(self):
        assert len(list(EXAMPLES_DIR.glob("*.py"))) >= 5
