"""Unit tests for dynamic insert/delete (Guttman updates)."""

import random

import pytest

from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.rtree.query import QueryEngine, brute_force_query
from repro.rtree.split import linear_split
from repro.rtree.tree import RTree
from repro.rtree.update import delete, insert
from repro.rtree.validate import validate_rtree

from tests.conftest import assert_same_matches, random_rects, random_windows


def grow_tree(store, data, fanout=8, splitter=None):
    tree = RTree.create_empty(store, dim=2, fanout=fanout)
    for rect, value in data:
        if splitter is None:
            insert(tree, rect, value)
        else:
            insert(tree, rect, value, splitter=splitter)
    return tree


class TestInsert:
    def test_single_insert(self, store):
        tree = RTree.create_empty(store, fanout=8)
        oid = insert(tree, Rect((0, 0), (1, 1)), "a")
        assert len(tree) == 1 and tree.objects[oid] == "a"

    def test_insert_returns_distinct_oids(self, store):
        tree = RTree.create_empty(store, fanout=8)
        oids = [insert(tree, Rect((i, i), (i + 1, i + 1)), i) for i in range(5)]
        assert len(set(oids)) == 5

    def test_root_split_grows_height(self, store):
        tree = RTree.create_empty(store, fanout=4)
        for i in range(5):
            insert(tree, Rect((i, 0), (i + 1, 1)), i)
        assert tree.height == 2

    def test_wrong_dim_raises(self, store):
        tree = RTree.create_empty(store, dim=2, fanout=8)
        with pytest.raises(ValueError):
            insert(tree, Rect((0,), (1,)), "x")

    def test_structure_valid_after_many_inserts(self, store):
        data = random_rects(400, seed=3)
        tree = grow_tree(store, data)
        validate_rtree(tree, expect_size=400, min_node_fill=tree.min_fill)

    def test_linear_splitter_variant(self, store):
        data = random_rects(300, seed=4)
        tree = grow_tree(store, data, splitter=linear_split)
        validate_rtree(tree, expect_size=300, min_node_fill=tree.min_fill)

    def test_queries_correct_after_inserts(self, store):
        data = random_rects(350, seed=5)
        tree = grow_tree(store, data)
        engine = QueryEngine(tree)
        for window in random_windows(20, seed=6):
            got, _ = engine.query(window)
            assert_same_matches(got, brute_force_query(data, window))

    def test_duplicate_rectangles_coexist(self, store):
        tree = RTree.create_empty(store, fanout=4)
        r = Rect((0, 0), (1, 1))
        for i in range(10):
            insert(tree, r, i)
        assert tree.count_query(r) == 10

    def test_insert_costs_ios(self, store):
        tree = RTree.create_empty(store, fanout=8)
        before = store.counters.total
        insert(tree, Rect((0, 0), (1, 1)), "a")
        assert store.counters.total > before


class TestDelete:
    def test_delete_existing(self, store):
        tree = RTree.create_empty(store, fanout=8)
        r = Rect((0, 0), (1, 1))
        insert(tree, r, "a")
        assert delete(tree, r, "a")
        assert len(tree) == 0
        assert tree.query(r) == []

    def test_delete_missing_returns_false(self, store):
        tree = RTree.create_empty(store, fanout=8)
        insert(tree, Rect((0, 0), (1, 1)), "a")
        assert not delete(tree, Rect((0, 0), (1, 1)), "b")
        assert not delete(tree, Rect((5, 5), (6, 6)), "a")
        assert len(tree) == 1

    def test_delete_from_empty_tree(self, store):
        tree = RTree.create_empty(store, fanout=8)
        assert not delete(tree, Rect((0, 0), (1, 1)), "a")

    def test_delete_only_one_of_duplicates(self, store):
        tree = RTree.create_empty(store, fanout=8)
        r = Rect((0, 0), (1, 1))
        insert(tree, r, "same")
        insert(tree, r, "same")
        assert delete(tree, r, "same")
        assert len(tree) == 1

    def test_root_collapses_after_mass_delete(self, store):
        data = random_rects(200, seed=8)
        tree = grow_tree(store, data, fanout=6)
        tall = tree.height
        for rect, value in data[:195]:
            assert delete(tree, rect, value)
        assert tree.height < tall
        validate_rtree(tree, expect_size=5)

    def test_delete_everything(self, store):
        data = random_rects(120, seed=9)
        tree = grow_tree(store, data, fanout=5)
        rng = random.Random(0)
        shuffled = data[:]
        rng.shuffle(shuffled)
        for rect, value in shuffled:
            assert delete(tree, rect, value)
        assert len(tree) == 0 and tree.height == 1

    def test_structure_valid_during_interleaved_ops(self, store):
        rng = random.Random(12)
        tree = RTree.create_empty(store, fanout=6)
        live = []
        for i in range(500):
            if live and rng.random() < 0.4:
                rect, value = live.pop(rng.randrange(len(live)))
                assert delete(tree, rect, value)
            else:
                x, y = rng.random(), rng.random()
                rect = Rect((x, y), (x + 0.02, y + 0.02))
                insert(tree, rect, i)
                live.append((rect, i))
            if i % 100 == 99:
                validate_rtree(tree, expect_size=len(live))
        engine = QueryEngine(tree)
        for window in random_windows(15, seed=13):
            got, _ = engine.query(window)
            assert_same_matches(got, brute_force_query(live, window))

    def test_delete_then_reinsert(self, store):
        data = random_rects(100, seed=14)
        tree = grow_tree(store, data, fanout=5)
        for rect, value in data[:50]:
            delete(tree, rect, value)
        for rect, value in data[:50]:
            insert(tree, rect, value)
        validate_rtree(tree, expect_size=100)
        window = Rect((0.0, 0.0), (1.0, 1.0))
        assert tree.count_query(window) == 100
