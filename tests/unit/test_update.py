"""Unit tests for dynamic insert/delete (Guttman updates)."""

import random

import pytest

from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.rtree.node import Node
from repro.rtree.query import QueryEngine, brute_force_query
from repro.rtree.split import linear_split
from repro.rtree.tree import RTree
from repro.rtree.update import delete, insert
from repro.rtree.validate import validate_rtree

from tests.conftest import assert_same_matches, random_rects, random_windows


def grow_tree(store, data, fanout=8, splitter=None):
    tree = RTree.create_empty(store, dim=2, fanout=fanout)
    for rect, value in data:
        if splitter is None:
            insert(tree, rect, value)
        else:
            insert(tree, rect, value, splitter=splitter)
    return tree


class TestInsert:
    def test_single_insert(self, store):
        tree = RTree.create_empty(store, fanout=8)
        oid = insert(tree, Rect((0, 0), (1, 1)), "a")
        assert len(tree) == 1 and tree.objects[oid] == "a"

    def test_insert_returns_distinct_oids(self, store):
        tree = RTree.create_empty(store, fanout=8)
        oids = [insert(tree, Rect((i, i), (i + 1, i + 1)), i) for i in range(5)]
        assert len(set(oids)) == 5

    def test_root_split_grows_height(self, store):
        tree = RTree.create_empty(store, fanout=4)
        for i in range(5):
            insert(tree, Rect((i, 0), (i + 1, 1)), i)
        assert tree.height == 2

    def test_wrong_dim_raises(self, store):
        tree = RTree.create_empty(store, dim=2, fanout=8)
        with pytest.raises(ValueError):
            insert(tree, Rect((0,), (1,)), "x")

    def test_structure_valid_after_many_inserts(self, store):
        data = random_rects(400, seed=3)
        tree = grow_tree(store, data)
        validate_rtree(tree, expect_size=400, min_node_fill=tree.min_fill)

    def test_linear_splitter_variant(self, store):
        data = random_rects(300, seed=4)
        tree = grow_tree(store, data, splitter=linear_split)
        validate_rtree(tree, expect_size=300, min_node_fill=tree.min_fill)

    def test_queries_correct_after_inserts(self, store):
        data = random_rects(350, seed=5)
        tree = grow_tree(store, data)
        engine = QueryEngine(tree)
        for window in random_windows(20, seed=6):
            got, _ = engine.query(window)
            assert_same_matches(got, brute_force_query(data, window))

    def test_duplicate_rectangles_coexist(self, store):
        tree = RTree.create_empty(store, fanout=4)
        r = Rect((0, 0), (1, 1))
        for i in range(10):
            insert(tree, r, i)
        assert tree.count_query(r) == 10

    def test_insert_costs_ios(self, store):
        tree = RTree.create_empty(store, fanout=8)
        before = store.counters.total
        insert(tree, Rect((0, 0), (1, 1)), "a")
        assert store.counters.total > before


class TestDelete:
    def test_delete_existing(self, store):
        tree = RTree.create_empty(store, fanout=8)
        r = Rect((0, 0), (1, 1))
        insert(tree, r, "a")
        assert delete(tree, r, "a")
        assert len(tree) == 0
        assert tree.query(r) == []

    def test_delete_missing_returns_false(self, store):
        tree = RTree.create_empty(store, fanout=8)
        insert(tree, Rect((0, 0), (1, 1)), "a")
        assert not delete(tree, Rect((0, 0), (1, 1)), "b")
        assert not delete(tree, Rect((5, 5), (6, 6)), "a")
        assert len(tree) == 1

    def test_delete_from_empty_tree(self, store):
        tree = RTree.create_empty(store, fanout=8)
        assert not delete(tree, Rect((0, 0), (1, 1)), "a")

    def test_delete_only_one_of_duplicates(self, store):
        tree = RTree.create_empty(store, fanout=8)
        r = Rect((0, 0), (1, 1))
        insert(tree, r, "same")
        insert(tree, r, "same")
        assert delete(tree, r, "same")
        assert len(tree) == 1

    def test_root_collapses_after_mass_delete(self, store):
        data = random_rects(200, seed=8)
        tree = grow_tree(store, data, fanout=6)
        tall = tree.height
        for rect, value in data[:195]:
            assert delete(tree, rect, value)
        assert tree.height < tall
        validate_rtree(tree, expect_size=5)

    def test_delete_everything(self, store):
        data = random_rects(120, seed=9)
        tree = grow_tree(store, data, fanout=5)
        rng = random.Random(0)
        shuffled = data[:]
        rng.shuffle(shuffled)
        for rect, value in shuffled:
            assert delete(tree, rect, value)
        assert len(tree) == 0 and tree.height == 1

    def test_structure_valid_during_interleaved_ops(self, store):
        rng = random.Random(12)
        tree = RTree.create_empty(store, fanout=6)
        live = []
        for i in range(500):
            if live and rng.random() < 0.4:
                rect, value = live.pop(rng.randrange(len(live)))
                assert delete(tree, rect, value)
            else:
                x, y = rng.random(), rng.random()
                rect = Rect((x, y), (x + 0.02, y + 0.02))
                insert(tree, rect, i)
                live.append((rect, i))
            if i % 100 == 99:
                validate_rtree(tree, expect_size=len(live))
        engine = QueryEngine(tree)
        for window in random_windows(15, seed=13):
            got, _ = engine.query(window)
            assert_same_matches(got, brute_force_query(live, window))

    def test_delete_then_reinsert(self, store):
        data = random_rects(100, seed=14)
        tree = grow_tree(store, data, fanout=5)
        for rect, value in data[:50]:
            delete(tree, rect, value)
        for rect, value in data[:50]:
            insert(tree, rect, value)
        validate_rtree(tree, expect_size=100)
        window = Rect((0.0, 0.0), (1.0, 1.0))
        assert tree.count_query(window) == 100


def _unit_rect(i):
    return Rect((float(i), float(i)), (i + 1.0, i + 1.0))


def _hand_built_tree(store, single_child_subtree=True):
    """A height-3 tree whose root has a minimum-fill subtree A and a
    subtree B with a single child — the shape packed (bulk-loaded)
    files legitimately produce for awkward sizes.  Deleting one entry
    under A dissolves its leaf and A itself, leaving the root with only
    B: the root then collapses *twice*, below the level of A's
    surviving subtree orphans.
    """
    values = {}
    oid = 0

    def mk_leaf(base):
        nonlocal oid
        entries = []
        for j in range(3):
            entries.append((_unit_rect(base + j), oid))
            values[oid] = f"v{oid}"
            oid += 1
        return store.allocate(Node(True, entries)), entries

    a_entries = []
    for base in (0, 10, 20):
        leaf_id, entries = mk_leaf(base)
        a_entries.append((Node(True, entries).mbr(), leaf_id))
    a_id = store.allocate(Node(False, a_entries))

    b_children = [mk_leaf(30)] if single_child_subtree else [
        mk_leaf(30), mk_leaf(40), mk_leaf(50)
    ]
    b_entries = [
        (Node(True, entries).mbr(), leaf_id)
        for leaf_id, entries in b_children
    ]
    b_id = store.allocate(Node(False, b_entries))

    root_id = store.allocate(
        Node(
            False,
            [
                (store.peek(a_id).mbr(), a_id),
                (store.peek(b_id).mbr(), b_id),
            ],
        )
    )
    size = len(values)
    tree = RTree(store, root_id, dim=2, fanout=8, height=3, size=size)
    tree.objects.update(values)
    tree._next_oid = size
    return tree


class TestCondenseRootCollapse:
    """Regression: orphaned *subtree* entries must be reinserted at
    their recorded level before the root collapse can shrink the tree
    below it — the old clamp ``min(entry_level, height - 1)`` grafted
    internal pointers as data entries after a double collapse."""

    def test_double_collapse_with_surviving_subtree_orphans(self, store):
        tree = _hand_built_tree(store)
        validate_rtree(tree, expect_size=12)
        assert delete(tree, _unit_rect(0), "v0")
        validate_rtree(tree, expect_size=11)
        got, _ = QueryEngine(tree).query(Rect((0.0, 0.0), (60.0, 60.0)))
        assert sorted(v for _, v in got) == sorted(
            f"v{i}" for i in range(1, 12)
        )

    def test_single_collapse_still_works(self, store):
        tree = _hand_built_tree(store, single_child_subtree=False)
        validate_rtree(tree, expect_size=18)
        assert delete(tree, _unit_rect(0), "v0")
        validate_rtree(tree, expect_size=17)

    def test_drain_hand_built_tree_completely(self, store):
        tree = _hand_built_tree(store)
        while tree.size:
            rect, value = next(tree.all_data())
            assert delete(tree, rect, value)
            validate_rtree(tree, expect_size=tree.size)
        assert tree.height == 1
        assert tree.root().is_leaf

    def test_delete_through_single_child_chain(self, store):
        # root -> internal -> leaf, every node single-entry: deleting
        # the only rectangle must leave a valid empty tree.
        leaf_id = store.allocate(Node(True, [(_unit_rect(0), 0)]))
        mid_id = store.allocate(
            Node(False, [(_unit_rect(0), leaf_id)])
        )
        root_id = store.allocate(
            Node(False, [(_unit_rect(0), mid_id)])
        )
        tree = RTree(store, root_id, dim=2, fanout=8, height=3, size=1)
        tree.objects[0] = "only"
        tree._next_oid = 1
        assert delete(tree, _unit_rect(0), "only")
        assert tree.size == 0
        assert tree.height == 1
        validate_rtree(tree, expect_size=0)
        insert(tree, _unit_rect(5), "again")
        validate_rtree(tree, expect_size=1)


class TestDuplicateEntries:
    """Regression: N identical ``(rect, value)`` pairs are deleted one
    per call, deterministically, with the tree valid after every step."""

    @pytest.mark.parametrize("n", [5, 17, 40])
    def test_insert_n_identical_then_delete_n(self, store, n):
        tree = RTree.create_empty(store, fanout=8)
        rect = Rect((0.2, 0.2), (0.4, 0.4))
        for _ in range(n):
            insert(tree, rect, "dup")
        validate_rtree(tree, expect_size=n)
        for remaining in range(n, 0, -1):
            assert delete(tree, rect, "dup")
            assert tree.size == remaining - 1
            validate_rtree(tree, expect_size=remaining - 1)
        assert not delete(tree, rect, "dup")

    def test_duplicates_interleaved_with_data(self, store):
        rng = random.Random(99)
        tree = RTree.create_empty(store, fanout=6)
        rect = Rect((0.2, 0.2), (0.4, 0.4))
        data = random_rects(80, seed=98)
        for rc, value in data:
            insert(tree, rc, value)
        for _ in range(15):
            insert(tree, rect, "dup")
        plan = ["dup"] * 15 + ["data"] * 80
        rng.shuffle(plan)
        live = list(data)
        dup_left = 15
        for kind in plan:
            if kind == "dup":
                assert delete(tree, rect, "dup")
                dup_left -= 1
            else:
                rc, value = live.pop()
                assert delete(tree, rc, value)
            validate_rtree(tree, expect_size=len(live) + dup_left)

    def test_failed_delete_leaves_bookkeeping_intact(self, store):
        data = random_rects(60, seed=97)
        tree = grow_tree(store, data, fanout=6)
        size_before = tree.size
        objects_before = dict(tree.objects)
        assert not delete(tree, Rect((2, 2), (3, 3)), "missing")
        assert tree.size == size_before
        assert tree.objects == objects_before
