"""Unit tests for the PR-tree builder and the dynamic logarithmic method."""

import math
import random

import pytest

from repro.geometry.rect import Rect
from repro.iomodel.blockstore import BlockStore
from repro.prtree.logmethod import LogMethodPRTree
from repro.prtree.prtree import build_prtree, prtree_query_bound, stage_sets
from repro.rtree.query import QueryEngine, brute_force_query
from repro.rtree.validate import utilization, validate_rtree

from tests.conftest import assert_same_matches, random_rects, random_windows


class TestBuildPRTree:
    def test_valid_structure(self, store, medium_data):
        tree = build_prtree(store, medium_data, 16)
        validate_rtree(tree, expect_size=len(medium_data))

    def test_space_utilization(self, store, medium_data):
        tree = build_prtree(store, medium_data, 16)
        assert utilization(tree).leaf_fill > 0.99

    def test_queries_match_brute_force(self, store, medium_data):
        tree = build_prtree(store, medium_data, 16)
        engine = QueryEngine(tree)
        for window in random_windows(20, seed=23):
            got, _ = engine.query(window)
            assert_same_matches(got, brute_force_query(medium_data, window))

    def test_empty_and_tiny(self, store):
        assert len(build_prtree(store, [], 8)) == 0
        tree = build_prtree(BlockStore(), random_rects(3, seed=1), 8)
        assert tree.height == 1
        validate_rtree(tree, expect_size=3)

    def test_all_leaves_one_level(self, store, medium_data):
        tree = build_prtree(store, medium_data, 8)
        depths = {d for _, node, d in tree.iter_nodes() if node.is_leaf}
        assert len(depths) == 1

    def test_no_snap_variant(self, store, medium_data):
        tree = build_prtree(store, medium_data, 16, snap_splits=False)
        validate_rtree(tree, expect_size=len(medium_data))

    def test_priority_size_override(self, store, medium_data):
        tree = build_prtree(store, medium_data, 16, priority_size=4)
        validate_rtree(tree, expect_size=len(medium_data))

    def test_3d_build(self, store):
        data = random_rects(600, seed=3, dim=3)
        tree = build_prtree(store, data, 8)
        validate_rtree(tree, expect_size=600)
        engine = QueryEngine(tree)
        for window in random_windows(10, seed=4, dim=3):
            got, _ = engine.query(window)
            assert_same_matches(got, brute_force_query(data, window))

    def test_1d_build(self, store):
        data = random_rects(200, seed=5, dim=1)
        tree = build_prtree(store, data, 8)
        validate_rtree(tree, expect_size=200)
        window = Rect((0.25,), (0.5,))
        assert_same_matches(tree.query(window), brute_force_query(data, window))

    def test_stage_sets_shrink_geometrically(self):
        sizes = stage_sets([None] * 10_000, fanout=10)
        assert sizes[0] == 10_000
        for a, b in zip(sizes, sizes[1:]):
            assert b <= math.ceil(a / 10) + 1
        assert sizes[-1] <= 10

    def test_query_bound_helper(self):
        assert prtree_query_bound(0, 8, 0) >= 0
        small = prtree_query_bound(64, 8, 0)
        large = prtree_query_bound(6400, 8, 0)
        assert large > small


class TestLogMethod:
    def test_insert_query_roundtrip(self, store):
        index = LogMethodPRTree(store, fanout=8)
        index.insert(Rect((0, 0), (1, 1)), "a")
        index.insert(Rect((2, 2), (3, 3)), "b")
        got = index.query(Rect((0.5, 0.5), (2.5, 2.5)))
        assert sorted(v for _, v in got) == ["a", "b"]

    def test_component_size_discipline(self, store):
        index = LogMethodPRTree(store, fanout=8)
        for i, (rect, value) in enumerate(random_rects(200, seed=6)):
            index.insert(rect, value)
            if i % 37 == 0:
                index.check_invariants()
        index.check_invariants()
        levels = [level for level, _ in index.components()]
        assert len(levels) == len(set(levels))

    def test_component_count_is_logarithmic(self, store):
        index = LogMethodPRTree(store, fanout=8)
        for rect, value in random_rects(500, seed=7):
            index.insert(rect, value)
        assert len(list(index.components())) <= math.log2(500) + 2

    def test_delete_hides_immediately(self, store):
        index = LogMethodPRTree(store, fanout=8)
        r = Rect((0, 0), (1, 1))
        index.insert(r, "x")
        assert index.delete(r, "x")
        assert index.query(Rect((0, 0), (2, 2))) == []
        assert len(index) == 0

    def test_delete_missing_returns_false(self, store):
        index = LogMethodPRTree(store, fanout=8)
        assert not index.delete(Rect((0, 0), (1, 1)), "ghost")

    def test_tombstone_rebuild_triggers(self, store):
        index = LogMethodPRTree(store, fanout=8)
        data = random_rects(128, seed=8)
        for rect, value in data:
            index.insert(rect, value)
        # Delete most records: stored count must shrink via global rebuild.
        for rect, value in data[:100]:
            index.delete(rect, value)
        assert index.stored_count <= 2 * index.live_count + 1
        index.check_invariants()

    def test_mixed_workload_correctness(self, store):
        rng = random.Random(9)
        index = LogMethodPRTree(store, fanout=8)
        live = []
        for i in range(400):
            if live and rng.random() < 0.35:
                rect, value = live.pop(rng.randrange(len(live)))
                assert index.delete(rect, value)
            else:
                x, y = rng.random(), rng.random()
                rect = Rect((x, y), (x + 0.03, y + 0.03))
                index.insert(rect, i)
                live.append((rect, i))
        for window in random_windows(15, seed=10):
            got = index.query(window)
            assert_same_matches(got, brute_force_query(live, window))

    def test_query_stats_aggregate_components(self, store):
        index = LogMethodPRTree(store, fanout=8)
        for rect, value in random_rects(300, seed=11):
            index.insert(rect, value)
        _, stats = index.query_with_stats(Rect((0, 0), (1, 1)))
        assert stats.reported == 300
        assert stats.leaf_reads > 0

    def test_wrong_dim_raises(self, store):
        index = LogMethodPRTree(store, fanout=8, dim=2)
        with pytest.raises(ValueError):
            index.insert(Rect((0,), (1,)), "x")

    def test_bad_base_raises(self, store):
        with pytest.raises(ValueError):
            LogMethodPRTree(store, fanout=8, base=1)

    def test_larger_base(self, store):
        index = LogMethodPRTree(store, fanout=8, base=4)
        for rect, value in random_rects(150, seed=12):
            index.insert(rect, value)
        index.check_invariants()
        got = index.query(Rect((0, 0), (1, 1)))
        assert len(got) == 150
