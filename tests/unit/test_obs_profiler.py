"""Unit tests for the span-attributed sampling profiler."""

import io
import threading
import time

import pytest

from repro.obs import SamplingProfiler, current_phase, phase, profiling_active
from repro.obs.profiler import OTHER, force_phases


def spin(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(200))


class TestPhaseRegistry:
    def test_phase_is_noop_without_profiler(self):
        assert not profiling_active()
        with phase("execute"):
            # Nothing is recorded when no profiler runs: the stack
            # stays empty, so the hot path pays one int check only.
            assert current_phase() is None

    def test_phases_nest_innermost_wins(self):
        with force_phases():
            assert current_phase() is None
            with phase("execute"):
                assert current_phase() == "execute"
                with phase("shard:0"):
                    assert current_phase() == "shard:0"
                assert current_phase() == "execute"
            assert current_phase() is None

    def test_phase_stack_is_per_thread(self):
        seen = {}

        def worker():
            with phase("worker-phase"):
                seen["worker"] = current_phase()

        with force_phases(), phase("main-phase"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert current_phase() == "main-phase"
        assert seen["worker"] == "worker-phase"


class TestSamplingProfiler:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_depth=0)

    def test_attributes_samples_to_active_phase(self):
        profiler = SamplingProfiler(interval_s=0.001)
        stop = threading.Event()

        def worker():
            with phase("engine:window"):
                while not stop.is_set():
                    spin(0.005)

        thread = threading.Thread(target=worker)
        with profiler:
            assert profiling_active()
            thread.start()
            time.sleep(0.15)
            stop.set()
            thread.join()
        assert not profiling_active()

        table = profiler.phase_table()
        assert table, "no samples collected"
        phases = {row.phase for row in table}
        assert "engine:window" in phases
        # Self-time fractions partition the sampled time exactly.
        assert sum(row.fraction for row in table) == pytest.approx(1.0)
        assert sum(row.samples for row in table) == profiler.total_samples
        top = table[0]
        assert top.phase == "engine:window"
        assert top.seconds == pytest.approx(
            top.samples * profiler.seconds_per_sample
        )

    def test_idle_threads_excluded_by_default(self):
        profiler = SamplingProfiler(interval_s=0.001)
        release = threading.Event()
        # A live thread with no phase: invisible unless include_idle.
        idler = threading.Thread(target=release.wait)
        idler.start()
        with profiler:
            time.sleep(0.05)
        release.set()
        idler.join()
        assert all(p != OTHER for p, _ in profiler.samples)

    def test_include_idle_charges_other(self):
        profiler = SamplingProfiler(interval_s=0.001, include_idle=True)
        stop = threading.Event()
        worker = threading.Thread(target=lambda: stop.wait())
        worker.start()
        with profiler:
            time.sleep(0.08)
        stop.set()
        worker.join()
        assert any(p == OTHER for p, _ in profiler.samples)

    def test_collapsed_format_round_trips(self):
        profiler = SamplingProfiler(interval_s=0.001)
        stop = threading.Event()

        def worker():
            with phase("execute"):
                while not stop.is_set():
                    spin(0.005)

        thread = threading.Thread(target=worker)
        with profiler:
            thread.start()
            time.sleep(0.1)
            stop.set()
            thread.join()

        text = profiler.collapsed()
        assert text.endswith("\n")
        total = 0
        for line in text.splitlines():
            frames, count = line.rsplit(" ", 1)
            total += int(count)
            parts = frames.split(";")
            assert parts[0] == "execute"
            # Root-first convention: the thread bootstrap frames are at
            # the front, the spinning leaf at the back.
            assert any("threading.py" in p for p in parts[:4])
        assert total == profiler.total_samples

        buffer = io.StringIO()
        profiler.write_collapsed(buffer)
        assert buffer.getvalue() == text

    def test_write_collapsed_to_path(self, tmp_path):
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.samples[("execute", ("a.py:f", "b.py:g"))] = 3
        out = tmp_path / "profile.collapsed"
        profiler.write_collapsed(out)
        assert out.read_text() == "execute;a.py:f;b.py:g 3\n"

    def test_reset_and_reuse(self):
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.samples[("x", ("a.py:f",))] = 2
        profiler.ticks = 2
        profiler.elapsed_s = 1.0
        profiler.reset()
        assert profiler.total_samples == 0
        assert profiler.ticks == 0
        assert profiler.collapsed() == ""

    def test_stop_is_idempotent_and_active_count_balanced(self):
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.start()
        profiler.start()  # idempotent
        profiler.stop()
        profiler.stop()
        assert not profiling_active()
